//! Design-then-verify vs design-while-verify, side by side, on the
//! oscillator: train SVG and DDPG on the paper's reward, verify them
//! post-hoc, and compare against Algorithm 1.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```
//!
//! Expect the baselines to reach decent *empirical* rates while failing
//! formal verification (`Unsafe` / `Unknown`), and Algorithm 1 to deliver
//! a formally verified controller — the paper's central claim.

use design_while_verify::baselines::{Ddpg, DdpgConfig, Svg, SvgConfig};
use design_while_verify::core::{
    judge, AbstractionKind, Algorithm1, GradientEstimator, LearnConfig, MetricKind,
};
use design_while_verify::dynamics::{eval::rates, oscillator, NnController};
use design_while_verify::reach::{
    DependencyTracking, TaylorAbstraction, TaylorReach, TaylorReachConfig,
};

fn verify(problem: &design_while_verify::dynamics::ReachAvoidProblem, c: &NnController) {
    let attempt = TaylorReach::new(
        problem,
        TaylorAbstraction::default(),
        TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        },
    )
    .reach(c);
    let verdict = judge(problem, c, &attempt, 500, 1);
    let r = rates(problem, c, 500, 42);
    println!(
        "  post-hoc verification: {verdict}   (SC {:.1}%, GR {:.1}%)",
        r.safe_rate * 100.0,
        r.goal_rate * 100.0
    );
}

fn main() {
    let problem = oscillator::reach_avoid_problem();

    println!("— SVG (model-based, design-then-verify) —");
    let mut svg = Svg::new(&problem, SvgConfig::default(), 3);
    let out = svg.train(600);
    println!(
        "  converged after {:?} value-gradient iterations",
        out.convergence_episode
    );
    verify(&problem, &out.controller);

    println!("— DDPG (model-free, design-then-verify) —");
    let mut ddpg = Ddpg::new(&problem, DdpgConfig::default(), 3);
    let out = ddpg.train(400);
    println!("  converged after {:?} episodes", out.convergence_episode);
    verify(&problem, &out.controller);

    println!("— Ours (design-while-verify, geometric metric, POLAR) —");
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(300)
        .perturbation(0.02)
        .estimator(GradientEstimator::Spsa { samples: 2 })
        .seed(3)
        .nn_hidden(vec![8])
        .abstraction(AbstractionKind::Polar { order: 2 })
        .verifier(TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        })
        .build();
    let outcome = Algorithm1::new(problem.clone(), config).learn_nn();
    println!(
        "  converged after {} iterations, verdict: {}",
        outcome.iterations, outcome.verified
    );
    let r = rates(&problem, &outcome.controller, 500, 42);
    println!(
        "  simulated: SC {:.1}%, GR {:.1}%",
        r.safe_rate * 100.0,
        r.goal_rate * 100.0
    );
}
