//! Bring your own system: a double-integrator "docking" problem.
//!
//! ```sh
//! cargo run --release --example custom_system
//! ```
//!
//! Everything in this repository is driven by two small traits —
//! [`Dynamics`] for the plant and (optionally) `linear_parts` for affine
//! systems — so adding a new verification-in-the-loop benchmark is a page of
//! code. Here a vehicle docks from `x₁ ≈ 1` to the origin; an obstacle box
//! forbids *fast* passage through the corridor `x₁ ∈ [0.4, 0.5]`, so the
//! learned controller must brake before the corridor and creep through.

use design_while_verify::core::{Algorithm1, Algorithm2, LearnConfig, MetricKind};
use design_while_verify::dynamics::linalg::Matrix;
use design_while_verify::dynamics::{eval::rates, Dynamics, ReachAvoidProblem};
use design_while_verify::geom::Region;
use design_while_verify::interval::IntervalBox;
use design_while_verify::poly::Polynomial;
use design_while_verify::reach::LinearReach;
use design_while_verify::taylor::OdeRhs;
use std::sync::Arc;

/// A 1-D double integrator: position `x₁`, velocity `x₂`, thrust `u`.
#[derive(Debug, Clone, Copy, Default)]
struct Docking;

impl Dynamics for Docking {
    fn name(&self) -> &str {
        "docking"
    }

    fn n_state(&self) -> usize {
        2
    }

    fn n_input(&self) -> usize {
        1
    }

    fn deriv(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        vec![x[1], u[0]]
    }

    fn vector_field(&self) -> OdeRhs {
        let x2 = Polynomial::var(3, 1);
        let u = Polynomial::var(3, 2);
        OdeRhs::new(2, 1, vec![x2, u])
    }

    fn linear_parts(&self) -> Option<(Matrix, Matrix, Vec<f64>)> {
        Some((
            Matrix::from_rows(vec![vec![0.0, 1.0], vec![0.0, 0.0]]),
            Matrix::from_rows(vec![vec![0.0], vec![1.0]]),
            vec![0.0, 0.0],
        ))
    }
}

fn problem() -> ReachAvoidProblem {
    ReachAvoidProblem {
        dynamics: Arc::new(Docking),
        x0: IntervalBox::from_bounds(&[(0.95, 1.0), (-0.02, 0.02)]),
        // Obstacle: no fast (|x₂| ≥ 0.15) passage through x₁ ∈ [0.4, 0.5].
        unsafe_region: Region::from_box(IntervalBox::from_bounds(&[(0.4, 0.5), (-0.8, -0.15)])),
        goal_region: Region::from_box(IntervalBox::from_bounds(&[(-0.05, 0.05), (-0.1, 0.1)])),
        delta: 0.25,
        horizon_steps: 60,
        universe: IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = problem();
    println!("system: custom double-integrator docking");
    println!("  X0     = {}", problem.x0);
    println!("  unsafe = {}", problem.unsafe_region);
    println!("  goal   = {}", problem.goal_region);

    let outcome = Algorithm1::new(
        problem.clone(),
        LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(250)
            .seed(11)
            .build(),
    )
    .learn_linear()?;
    println!(
        "\nlearned linear controller: {} after {} iterations",
        outcome.verified, outcome.iterations
    );
    if !outcome.verified.is_reach_avoid() {
        println!("(did not converge with this seed — try another)");
        return Ok(());
    }

    let r = rates(&problem, &outcome.controller, 500, 1);
    println!(
        "simulated: SC {:.1}%  GR {:.1}%",
        r.safe_rate * 100.0,
        r.goal_rate * 100.0
    );

    let (a, b, c) = problem.dynamics.linear_parts().expect("affine");
    let controller = outcome.controller.clone();
    let search = Algorithm2::new(&problem).with_max_rounds(4).search(|cell| {
        LinearReach::new(
            &a,
            &b,
            &c,
            cell.clone(),
            problem.delta,
            problem.horizon_steps,
        )
        .reach(&controller)
    });
    println!("{search}");
    Ok(())
}
