//! Quickstart: learn a provably safe cruise-control gain in a few seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs Algorithm 1 (verification-in-the-loop gradient descent with the
//! exact linear verifier) on the paper's adaptive-cruise-control benchmark,
//! then prints the learned gain, the verified result and the empirical
//! safe-control / goal-reaching rates.

use design_while_verify::core::{Algorithm1, LearnConfig, MetricKind};
use design_while_verify::dynamics::{acc, eval::rates, Controller};
use design_while_verify::obs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracing = obs::init_from_env();
    let problem = acc::reach_avoid_problem();
    println!(
        "system: ACC  (X0 = {}, T = {}s)",
        problem.x0,
        problem.horizon()
    );

    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(200)
        .seed(7)
        .build();

    let outcome = Algorithm1::new(problem.clone(), config).learn_linear()?;

    println!("verified result : {}", outcome.verified);
    println!("convergence iter: {}", outcome.iterations);
    println!("learned gains   : {:?}", outcome.controller.params());

    let r = rates(&problem, &outcome.controller, 500, 42);
    println!(
        "simulated rates : SC = {:.1}%  GR = {:.1}%  ({} rollouts)",
        r.safe_rate * 100.0,
        r.goal_rate * 100.0,
        r.n_samples
    );
    if tracing {
        obs::emit_snapshot();
        obs::flush();
        println!("{}", obs::summary());
    }
    Ok(())
}
