//! Learning a verified neural-network controller for Van der Pol's
//! oscillator (paper §4, Fig. 7).
//!
//! ```sh
//! cargo run --release --example oscillator_nn
//! ```
//!
//! Uses the POLAR-style Taylor-model abstraction inside the verifier; the
//! learned ReLU/Tanh network is guaranteed to keep the (verified subset of
//! the) initial set out of the unsafe box while reaching the goal box.

use design_while_verify::core::{
    AbstractionKind, Algorithm1, Algorithm2, GradientEstimator, LearnConfig, MetricKind,
};
use design_while_verify::dynamics::{eval::rates, oscillator};
use design_while_verify::obs;
use design_while_verify::reach::{
    DependencyTracking, TaylorAbstraction, TaylorReach, TaylorReachConfig,
};

fn main() {
    let tracing = obs::init_from_env();
    let problem = oscillator::reach_avoid_problem();
    println!(
        "system: Van der Pol oscillator  (X0 = {}, unsafe = {}, goal = {})",
        problem.x0, problem.unsafe_region, problem.goal_region
    );

    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(300)
        .perturbation(0.02)
        .estimator(GradientEstimator::Spsa { samples: 2 })
        .seed(3)
        .nn_hidden(vec![8])
        .abstraction(AbstractionKind::Polar { order: 2 })
        .verifier(TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        })
        .build();

    let outcome = Algorithm1::new(problem.clone(), config).learn_nn();
    println!(
        "verdict {} after {} iterations",
        outcome.verified, outcome.iterations
    );
    if !outcome.verified.is_reach_avoid() {
        println!("learning did not converge with this seed; try another");
        finish(tracing);
        return;
    }

    let r = rates(&problem, &outcome.controller, 500, 42);
    println!(
        "simulated: SC {:.1}%  GR {:.1}%",
        r.safe_rate * 100.0,
        r.goal_rate * 100.0
    );

    // Algorithm 2: which initial states are *formally* guaranteed?
    let controller = outcome.controller.clone();
    let search = Algorithm2::new(&problem).with_max_rounds(4).search(|cell| {
        TaylorReach::new(
            &problem,
            TaylorAbstraction::with_order(2),
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        )
        .with_initial_set(cell.clone())
        .reach(&controller)
    });
    println!("{search}");
    if let Some(bb) = search.bounding_box() {
        println!("X_I bounding box: {bb}");
    }
    finish(tracing);
}

/// Closes the trace stream (if any) and prints the metrics summary.
fn finish(tracing: bool) {
    if tracing {
        obs::emit_snapshot();
        obs::flush();
        println!("{}", obs::summary());
    }
}
