//! The full ACC experiment: both metrics, the learning trace (Fig. 4's
//! series) and the Algorithm-2 initial-set search.
//!
//! ```sh
//! cargo run --release --example acc_linear
//! ```

use design_while_verify::core::{Algorithm1, Algorithm2, LearnConfig, MetricKind};
use design_while_verify::dynamics::{acc, eval::rates};
use design_while_verify::obs;
use design_while_verify::reach::LinearReach;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracing = obs::init_from_env();
    let problem = acc::reach_avoid_problem();
    for metric in [MetricKind::Geometric, MetricKind::Wasserstein] {
        println!("==== metric: {metric} ====");
        let config = LearnConfig::builder()
            .metric(metric)
            .max_updates(200)
            .seed(7)
            .build();
        let outcome = Algorithm1::new(problem.clone(), config).learn_linear()?;
        println!(
            "verdict {}  after {} iterations ({} verifier calls)",
            outcome.verified,
            outcome.iterations,
            outcome.trace.total_verifier_calls()
        );
        // The per-iteration metric series (what Fig. 4 plots).
        for r in outcome.trace.records().iter().take(5) {
            println!(
                "  it {:>3}: unsafe-metric {:+.3e}  goal-metric {:+.3e}",
                r.iteration, r.unsafe_metric, r.goal_metric
            );
        }
        if outcome.trace.len() > 5 {
            println!("  … ({} more iterations)", outcome.trace.len() - 5);
        }

        if outcome.verified.is_reach_avoid() {
            // Algorithm 2: the formally guaranteed initial set.
            let (a, b, c) = problem.dynamics.linear_parts().expect("ACC is affine");
            let controller = outcome.controller.clone();
            let search = Algorithm2::new(&problem).with_max_rounds(4).search(|cell| {
                LinearReach::new(
                    &a,
                    &b,
                    &c,
                    cell.clone(),
                    problem.delta,
                    problem.horizon_steps,
                )
                .reach(&controller)
            });
            println!("{search}");
            let r = rates(&problem, &outcome.controller, 500, 1);
            println!(
                "simulated: SC {:.1}%  GR {:.1}%",
                r.safe_rate * 100.0,
                r.goal_rate * 100.0
            );
        }
    }
    if tracing {
        obs::emit_snapshot();
        obs::flush();
        println!("{}", obs::summary());
    }
    Ok(())
}
