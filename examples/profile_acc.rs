//! Profiling a full design-while-verify run: learn an ACC controller with
//! the reach-result memo attached, assess it, and stream a JSONL trace.
//!
//! ```sh
//! DWV_TRACE=trace.jsonl cargo run --release --example profile_acc
//! ```
//!
//! With `DWV_TRACE` unset the run is identical (bit-for-bit — tracing is
//! pure observation) but emits no trace and pays no observability cost
//! beyond one relaxed atomic load per instrumentation point. Either way the
//! end-of-run metrics summary prints whatever was recorded.

use design_while_verify::core::{assess, Algorithm1, LearnConfig, MetricKind};
use design_while_verify::dynamics::acc;
use design_while_verify::interval::IntervalBox;
use design_while_verify::obs;
use design_while_verify::reach::{LinearReach, ReachCache};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracing = obs::init_from_env();
    if tracing {
        println!("tracing to {}", std::env::var("DWV_TRACE").unwrap());
    } else {
        println!("tracing off (set DWV_TRACE=path to stream a JSONL trace)");
    }

    let problem = acc::reach_avoid_problem();
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(200)
        .seed(7)
        .build();

    let cache = Arc::new(ReachCache::new());
    let outcome = Algorithm1::new(problem.clone(), config)
        .with_cache(Arc::clone(&cache))
        .learn_linear()?;
    println!(
        "learned: {} after {} iterations ({} verifier calls, {} cache hits)",
        outcome.verified,
        outcome.iterations,
        outcome.trace.total_verifier_calls(),
        cache.hits(),
    );

    // Per-iteration cache hits and enclosure widths ride in the trace CSV.
    let csv = outcome.trace.to_csv();
    println!(
        "trace CSV: {} rows, header: {}",
        csv.lines().count() - 1,
        csv.lines().next().unwrap_or("")
    );

    let (a, b, c) = problem.dynamics.linear_parts().expect("ACC is affine");
    let controller = outcome.controller.clone();
    let delta = problem.delta;
    let steps = problem.horizon_steps;
    let report = assess(&problem, &outcome.controller, move |cell: &IntervalBox| {
        LinearReach::new(&a, &b, &c, cell.clone(), delta, steps).reach(&controller)
    });
    println!("{report}");

    let s = cache.stats();
    println!(
        "reach cache    : {} hits / {} misses (hit rate {:.1}%), {} entries",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0,
        s.entries,
    );

    if tracing {
        // Close the stream with a full metrics snapshot line.
        obs::emit_snapshot();
        obs::flush();
    }
    println!("{}", obs::summary());
    Ok(())
}
