//! Profiling a full design-while-verify run: learn an ACC controller with
//! the tiered verifier portfolio answering the probe queries, certify it
//! with the decisive sweep, and stream a JSONL trace.
//!
//! ```sh
//! DWV_TRACE=trace.jsonl cargo run --release --example profile_acc
//! cargo run --release -p dwv-trace -- trace.jsonl --check-bill BENCH_core.json
//! ```
//!
//! The run is the exact configuration behind `BENCH_core.json`'s
//! `verifier_calls_by_tier` section (geometric metric, 200 updates,
//! seed 7, surrogate portfolio confirming every 5th iteration), so the
//! per-tier call counters in the trace reconcile against the recorded
//! baseline. With `DWV_TRACE` unset the run is identical (bit-for-bit —
//! tracing is pure observation) but emits no trace.
//!
//! `DWV_FLIGHT=dump.jsonl` additionally arms the flight recorder's
//! panic-hook dump, and `DWV_FORCE_PANIC=1` panics mid-run inside an open
//! span — together they exercise the post-mortem path end to end:
//!
//! ```sh
//! DWV_FLIGHT=dump.jsonl DWV_FORCE_PANIC=1 cargo run --release --example profile_acc
//! cargo run --release -p dwv-trace -- --check-flight dump.jsonl
//! ```

use design_while_verify::core::{
    design_while_verify_linear, LearnConfig, MetricKind, PortfolioMode,
};
use design_while_verify::dynamics::acc;
use design_while_verify::obs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracing = obs::init_from_env();
    if tracing {
        println!("tracing to {}", std::env::var("DWV_TRACE").unwrap());
    } else {
        println!("tracing off (set DWV_TRACE=path to stream a JSONL trace)");
    }

    // Mirrors bench_core's portfolio_bill() configuration exactly: the
    // trace's portfolio.tier*.calls counters must reconcile against the
    // learn + sweep calls recorded in BENCH_core.json.
    let problem = acc::reach_avoid_problem();
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .max_updates(200)
        .seed(7)
        .portfolio(PortfolioMode::Surrogate { confirm_every: 5 })
        .build();

    if std::env::var("DWV_FORCE_PANIC").is_ok_and(|v| v == "1") {
        let _doomed = obs::span("profile.doomed");
        panic!("DWV_FORCE_PANIC=1: exercising the flight-recorder dump path");
    }

    let outcome = design_while_verify_linear(problem, config)?;
    println!(
        "learned: {} after {} iterations ({} verifier calls)",
        outcome.learning.verified,
        outcome.learning.iterations,
        outcome.learning.trace.total_verifier_calls(),
    );
    if let Some(stats) = &outcome.learning.portfolio {
        println!("learn bill     : {:?} calls by tier", stats.calls_by_tier);
    }
    if let Some(stats) = &outcome.sweep_portfolio {
        println!("sweep bill     : {:?} calls by tier", stats.calls_by_tier);
    }

    // Per-iteration cache hits, enclosure widths and per-tier verifier
    // calls ride in the trace CSV.
    let csv = outcome.learning.trace.to_csv();
    println!(
        "trace CSV: {} rows, header: {}",
        csv.lines().count() - 1,
        csv.lines().next().unwrap_or("")
    );

    println!("{}", outcome.report);

    if tracing {
        // Close the stream with a full metrics snapshot line.
        obs::emit_snapshot();
        obs::flush();
    }
    println!("{}", obs::summary());
    Ok(())
}
