//! Robust reach-avoid under bounded disturbance — the zonotope verifier.
//!
//! ```sh
//! cargo run --release --example robust_acc
//! ```
//!
//! The paper's ACC model assumes the front vehicle drives at exactly
//! `v_f = 40`. Here we add a bounded per-step disturbance (front-vehicle
//! speed jitter entering the gap dynamics) and verify the learned controller
//! with the zonotope recursion `X_{t+1} = M X_t ⊕ {c_d} ⊕ W`: zonotopes are
//! closed under affine maps and Minkowski sums, so every step stays sound.
//! The experiment sweeps the disturbance magnitude and reports when the
//! robust reach-avoid guarantee breaks.

use design_while_verify::core::{Algorithm1, LearnConfig, MetricKind};
use design_while_verify::dynamics::acc;
use design_while_verify::interval::IntervalBox;
use design_while_verify::metrics::GeometricMetric;
use design_while_verify::reach::ZonotopeReach;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = acc::reach_avoid_problem();

    // Learn a nominal controller first (verification in the loop as usual).
    let outcome = Algorithm1::new(
        problem.clone(),
        LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(200)
            .seed(7)
            .build(),
    )
    .learn_linear()?;
    println!(
        "nominal controller: {} after {} iterations",
        outcome.verified, outcome.iterations
    );
    let controller = outcome.controller;

    let metric = GeometricMetric::for_problem(&problem);
    println!("\n  w-magnitude   d^u        d^g        robust verdict");
    for mag in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let w = IntervalBox::from_bounds(&[(-mag, mag), (-mag, mag)]);
        let verifier = ZonotopeReach::for_problem(&problem)?
            .with_disturbance(w)
            .with_max_order(10.0);
        match verifier.reach(&controller) {
            Ok(fp) => {
                let d = metric.evaluate(&fp);
                println!(
                    "  ±{mag:<10.2} {:>9.3} {:>10.3}   {}",
                    d.d_unsafe,
                    d.d_goal,
                    if d.is_reach_avoid() {
                        "reach-avoid (robust)"
                    } else if d.d_unsafe > 0.0 {
                        "safe, goal not certain"
                    } else {
                        "NOT safe"
                    }
                );
            }
            Err(e) => println!("  ±{mag:<10.2} verification failed: {e}"),
        }
    }
    Ok(())
}
