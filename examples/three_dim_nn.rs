//! The 3-D numerical benchmark with both neural-network abstractions
//! (ReachNN-style Bernstein fit vs POLAR-style Taylor models).
//!
//! ```sh
//! cargo run --release --example three_dim_nn
//! ```

use design_while_verify::core::{
    AbstractionKind, Algorithm1, GradientEstimator, LearnConfig, MetricKind,
};
use design_while_verify::dynamics::{eval::rates, three_dim};
use design_while_verify::reach::{DependencyTracking, TaylorReachConfig};
use std::time::Instant;

fn main() {
    let problem = three_dim::reach_avoid_problem();
    println!("system: 3-D numerical (ẋ₁ = x₃³ − x₂, ẋ₂ = x₃, ẋ₃ = u)");

    for abstraction in [
        AbstractionKind::Polar { order: 2 },
        AbstractionKind::Bernstein { degree: 2 },
    ] {
        let config = LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(300)
            .perturbation(0.02)
            .estimator(GradientEstimator::Spsa { samples: 2 })
            .seed(3)
            .nn_hidden(vec![8])
            .nn_output_scale(2.0)
            .abstraction(abstraction)
            .verifier(TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            })
            .build();
        let t0 = Instant::now();
        let outcome = Algorithm1::new(problem.clone(), config).learn_nn();
        let elapsed = t0.elapsed();
        let r = rates(&problem, &outcome.controller, 500, 42);
        println!(
            "{abstraction:<8} verdict {:<12} CI {:>3}  SC {:>5.1}%  GR {:>5.1}%  ({:.2?}, {:.0} ms/iter)",
            outcome.verified.to_string(),
            outcome.iterations,
            r.safe_rate * 100.0,
            r.goal_rate * 100.0,
            elapsed,
            outcome.trace.mean_iteration_time().as_secs_f64() * 1000.0
        );
    }
}
