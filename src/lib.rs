//! # Design-while-Verify
//!
//! A from-scratch Rust reproduction of *Design-while-Verify: Correct-by-
//! Construction Control Learning with Verification in the Loop* (DAC 2022).
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users (and the `examples/` directory) can depend on a single
//! package:
//!
//! * [`interval`] — conservative interval arithmetic and boxes
//! * [`geom`] — convex polygons/polytopes and set distances
//! * [`poly`] — sparse multivariate polynomials and Bernstein forms
//! * [`taylor`] — Taylor models and validated ODE flowpipes
//! * [`nn`] — feed-forward networks with manual backprop
//! * [`dynamics`] — benchmark systems (ACC, Van der Pol, 3D) and simulation
//! * [`reach`] — reachability verifiers (linear exact, Taylor-model,
//!   Bernstein/Taylor NN abstractions)
//! * [`metrics`] — geometric and Wasserstein distance metrics over reach sets
//! * [`core`] — the paper's contribution: Algorithm 1 (verification-in-the-
//!   loop learning) and Algorithm 2 (initial-set search)
//! * [`baselines`] — design-then-verify baselines (DDPG, SVG)
//! * [`obs`] — zero-dependency tracing/metrics (spans, counters,
//!   histograms, `DWV_TRACE=path` JSONL streams)
//! * [`check`] — deterministic soundness-falsification harness
//!   (generative cases vs. brute-force oracles, shrinking, replay tokens)
//! * [`trace`] — trace analytics over `DWV_TRACE` streams (span trees,
//!   cost attribution, critical paths, folded stacks, verifier tier bills)
//!
//! # Quickstart
//!
//! ```
//! use design_while_verify::core::{Algorithm1, LearnConfig, MetricKind};
//! use design_while_verify::dynamics::acc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = acc::reach_avoid_problem();
//! let config = LearnConfig::builder()
//!     .metric(MetricKind::Geometric)
//!     .max_updates(200)
//!     .seed(7)
//!     .build();
//! let outcome = Algorithm1::new(problem, config).learn_linear()?;
//! println!("{} after {} iterations", outcome.verified, outcome.iterations);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

/// The most commonly used types, for glob import:
/// `use design_while_verify::prelude::*;`.
pub mod prelude {
    pub use dwv_core::{
        AbstractionKind, Algorithm1, Algorithm2, GradientEstimator, LearnConfig, MetricKind,
        Verdict,
    };
    pub use dwv_dynamics::{
        acc, oscillator, three_dim, Controller, Dynamics, LinearController, NnController,
        ReachAvoidProblem,
    };
    pub use dwv_geom::Region;
    pub use dwv_interval::{Interval, IntervalBox};
    pub use dwv_metrics::{GeometricMetric, WassersteinMetric};
    pub use dwv_reach::{
        BernsteinAbstraction, Flowpipe, LinearReach, TaylorAbstraction, TaylorReach,
        TaylorReachConfig, ZonotopeReach,
    };
}

pub use dwv_baselines as baselines;
pub use dwv_check as check;
pub use dwv_core as core;
pub use dwv_dynamics as dynamics;
pub use dwv_geom as geom;
pub use dwv_interval as interval;
pub use dwv_metrics as metrics;
pub use dwv_nn as nn;
pub use dwv_obs as obs;
pub use dwv_poly as poly;
pub use dwv_reach as reach;
pub use dwv_taylor as taylor;
pub use dwv_trace as trace;
