#!/usr/bin/env bash
# Offline-first CI for the design-while-verify reproduction.
#
# The build environment has NO network access to crates.io: every external
# dependency is vendored as a local stand-in under third_party/ and resolved
# by path in the workspace manifest. `--offline` makes cargo fail fast (with
# a clear error) instead of hanging on a registry it can never reach, and
# also guards against accidentally introducing a registry dependency.
#
# Usage: scripts/ci.sh            # fmt + clippy + release build + tier-1 tests
#        scripts/ci.sh --all     # additionally run the full workspace tests
#                                # and the bench-regression guard

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
# Lint gate: warnings are errors across the whole workspace.
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --offline
# Soundness/determinism static analysis: zero-dependency token-level scanner
# over the verified crates (float hygiene, panic freedom, determinism,
# unsafe audit, doc coverage). Every exemption must be a reasoned
# `// dwv-lint: allow(...) -- <reason>` annotation; unannotated findings fail
# the build via a per-rule exit-code bitmask.
run cargo run --release --offline -p dwv-lint -- --workspace --deny all
# Engine determinism gate: the parallel phases must reproduce the serial
# report byte-for-byte at every pool width the engine ships with.
lint_serial="$(mktemp -t dwv_lint_serial.XXXXXX.json)"
lint_parallel="$(mktemp -t dwv_lint_parallel.XXXXXX.json)"
echo "==> dwv-lint serial vs parallel report diff (widths 2/4/8)"
cargo run --release --offline -q -p dwv-lint -- --workspace --json --serial > "$lint_serial"
for width in 2 4 8; do
  cargo run --release --offline -q -p dwv-lint -- --workspace --json --threads "$width" > "$lint_parallel"
  if ! cmp -s "$lint_serial" "$lint_parallel"; then
    echo "FAIL: dwv-lint report at --threads $width differs from --serial"
    diff "$lint_serial" "$lint_parallel" | head -20
    rm -f "$lint_serial" "$lint_parallel"
    exit 1
  fi
done
rm -f "$lint_serial" "$lint_parallel"
# Falsification gate: deterministic generative sweep pitting every enclosure
# layer (interval, Bernstein, Taylor-model, flowpipe, geometry, OT, NN range,
# safety verdict) against an independent brute-force oracle. The seed is
# pinned so the run is byte-reproducible; any violation prints a replay
# token (`dwv-check --replay 0x...`) and fails the build.
run cargo run --release --offline -p dwv-check -- --seed 0xD3C0DE --budget-cases 1200
# Tier-1 gate: the root package's test suite (see ROADMAP.md).
run cargo test -q --offline

if [[ "${1:-}" == "--all" ]]; then
  run cargo test -q --workspace --offline
  # Deep falsification sweep + regression corpus replay: a larger budget at
  # bigger case sizes, then every committed finding/regression seed.
  run cargo run --release --offline -p dwv-check -- --seed 0xD3C0DE --budget-cases 8000 --max-size 12 --threads 4
  run cargo run --release --offline -p dwv-check -- --corpus crates/check/corpus
  # SIMD gate: build and test the coefficient kernels with the opt-in AVX2
  # path compiled in. The vector dispatch must reproduce the scalar
  # reference bit-for-bit (in-module bitwise tests + the poly property
  # suite), and a `simd`-family falsification sweep re-checks the kernel
  # contracts against independent scalar oracles under whichever dispatch
  # the host CPU selects.
  run cargo build --release --offline -p dwv-poly --features simd
  run cargo test -q --release --offline -p dwv-poly --features simd
  run cargo run --release --offline -p dwv-check -- --family simd --seed 0xD3C0DE --budget-cases 5000
  # Bit-identity gate: the deterministic pool's parallel == serial promise,
  # replayed at explicit widths (2 and 4 worker threads) on top of the
  # thread-count matrix the unit tests already cover.
  run cargo test -q --release --offline -p dwv-core parallel
  run cargo run --release --offline -p dwv-check -- --family simd --seed 2 --budget-cases 2000 --threads 2
  run cargo run --release --offline -p dwv-check -- --family simd --seed 4 --budget-cases 2000 --threads 4
  # Lint-engine differential gate: random miniature workspaces through the
  # interprocedural engine against the generator's ground-truth spans, with
  # input-order and pool-width bit-identity oracles (see families/lintcheck).
  run cargo run --release --offline -p dwv-check -- --family lintcheck --seed 0xD3C0DE --budget-cases 400
  # Portfolio gate: the tiered-verifier contract (every tier's enclosure
  # contains sampled closed-loop trajectories; cheap unsafe-clearance and
  # goal-containment claims are never contradicted by the rigorous tier) plus
  # the differential: surrogate-mode Algorithm 1 acceptances must survive a
  # fresh rigorous-only re-verification. See DESIGN.md §4f.
  run cargo run --release --offline -p dwv-check -- --family portfolio --seed 0xD3C0DE --budget-cases 2500
  # Serving gate: the verification-as-a-service layer. Crate tests (frame
  # codec fuzz/property suite + server integration), the golden
  # serve-vs-batch parity suite over real TCP (ACC/Van-der-Pol/3D repro
  # configs, byte-for-byte), then a deep differential sweep of the serve
  # check family (loopback server vs in-process run_job at a different
  # pool width, randomized interleavings; see DESIGN.md §4h).
  run cargo test -q --release --offline -p dwv-serve
  run cargo test -q --release --offline --test serve_batch_parity
  run cargo run --release --offline -p dwv-check -- --family serve --seed 0x5EED --budget-cases 1500 --threads 4
  # Binary lifecycle: start a real server on an ephemeral port, run the
  # smoke client against it, ask it to drain, and require a clean exit
  # that reports the drain (force-cancel path included in the contract).
  serve_addr_file="$(mktemp -t dwv_serve_addr.XXXXXX)"
  serve_log="$(mktemp -t dwv_serve_log.XXXXXX)"
  echo "==> dwv-serve lifecycle: start, smoke, drain, clean exit"
  cargo run --release --offline -q -p dwv-serve -- \
    --addr 127.0.0.1:0 --addr-file "$serve_addr_file" > "$serve_log" &
  serve_pid=$!
  for _ in $(seq 1 50); do
    [[ -s "$serve_addr_file" ]] && break
    sleep 0.1
  done
  if [[ ! -s "$serve_addr_file" ]]; then
    echo "FAIL: dwv-serve never wrote its address file"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  serve_addr="$(cat "$serve_addr_file")"
  run cargo run --release --offline -q -p dwv-serve -- --smoke "$serve_addr"
  run cargo run --release --offline -q -p dwv-serve -- --drain "$serve_addr"
  if ! wait "$serve_pid"; then
    echo "FAIL: dwv-serve did not exit cleanly after drain"
    cat "$serve_log"
    exit 1
  fi
  if ! grep -q '^drained' "$serve_log"; then
    echo "FAIL: dwv-serve exited without reporting the drain"
    cat "$serve_log"
    exit 1
  fi
  rm -f "$serve_addr_file" "$serve_log"
  # Overflow gate: the soundness-critical kernels must be free of silent
  # integer wraparound (exponent packing, tensor offsets, binomial tables).
  echo '==> RUSTFLAGS="-C overflow-checks=on" cargo test -q --offline -p dwv-interval -p dwv-taylor'
  RUSTFLAGS="-C overflow-checks=on" cargo test -q --offline -p dwv-interval -p dwv-taylor
  # Perf gate: fail if the headline Algorithm-1 iteration timer regressed
  # more than 10% against the committed BENCH_core.json. bench_core --check
  # runs tracing-off, so this also guards the disabled-path obs overhead.
  run cargo run --release --offline -p dwv-bench --bin bench_core -- --check
  # Observability smoke: a full ACC pipeline run streaming a JSONL trace,
  # validated line-by-line (reserved fields, span identity/nesting, span
  # timings for the train/verify/simulate phases, cache hit/miss +
  # remainder-width metrics).
  trace_file="$(mktemp -t dwv_trace.XXXXXX.jsonl)"
  folded_file="$(mktemp -t dwv_folded.XXXXXX.txt)"
  flight_file="$(mktemp -t dwv_flight.XXXXXX.jsonl)"
  trap 'rm -f "$trace_file" "$folded_file" "$flight_file"' EXIT
  echo "==> DWV_TRACE=$trace_file cargo run --release --offline --example profile_acc"
  DWV_TRACE="$trace_file" cargo run --release --offline --example profile_acc
  run cargo run --release --offline -p dwv-bench --bin trace_check -- "$trace_file"
  # Trace analytics gate: the analyzer must place the verifier backend on
  # the critical path, reconcile the trace's per-tier verifier bill exactly
  # against BENCH_core.json's verifier_calls_by_tier (learn + sweep), and
  # export flamegraph-compatible folded stacks.
  run cargo run --release --offline -p dwv-trace -- "$trace_file" \
    --require-critical reach.run --check-bill BENCH_core.json \
    --folded "$folded_file"
  # Flight-recorder gate: a forced mid-run panic must leave a parseable
  # dump whose last events cover the still-open panicking span.
  echo "==> DWV_FLIGHT=$flight_file DWV_FORCE_PANIC=1 profile_acc (panic expected)"
  if DWV_FLIGHT="$flight_file" DWV_FORCE_PANIC=1 \
    cargo run --release --offline --example profile_acc >/dev/null 2>&1; then
    echo "FAIL: DWV_FORCE_PANIC=1 run exited 0 (expected a panic)"
    exit 1
  fi
  run cargo run --release --offline -p dwv-trace -- --check-flight "$flight_file"
fi

echo "CI OK"
