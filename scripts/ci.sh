#!/usr/bin/env bash
# Offline-first CI for the design-while-verify reproduction.
#
# The build environment has NO network access to crates.io: every external
# dependency is vendored as a local stand-in under third_party/ and resolved
# by path in the workspace manifest. `--offline` makes cargo fail fast (with
# a clear error) instead of hanging on a registry it can never reach, and
# also guards against accidentally introducing a registry dependency.
#
# Usage: scripts/ci.sh            # fmt check + release build + tier-1 tests
#        scripts/ci.sh --all     # additionally run the full workspace tests

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
run cargo build --release --offline
# Tier-1 gate: the root package's test suite (see ROADMAP.md).
run cargo test -q --offline

if [[ "${1:-}" == "--all" ]]; then
  run cargo test -q --workspace --offline
fi

echo "CI OK"
