#!/usr/bin/env bash
# Offline-first CI for the design-while-verify reproduction.
#
# The build environment has NO network access to crates.io: every external
# dependency is vendored as a local stand-in under third_party/ and resolved
# by path in the workspace manifest. `--offline` makes cargo fail fast (with
# a clear error) instead of hanging on a registry it can never reach, and
# also guards against accidentally introducing a registry dependency.
#
# Usage: scripts/ci.sh            # fmt + clippy + release build + tier-1 tests
#        scripts/ci.sh --all     # additionally run the full workspace tests
#                                # and the bench-regression guard

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
# Lint gate: warnings are errors across the whole workspace.
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --offline
# Tier-1 gate: the root package's test suite (see ROADMAP.md).
run cargo test -q --offline

if [[ "${1:-}" == "--all" ]]; then
  run cargo test -q --workspace --offline
  # Perf gate: fail if the headline Algorithm-1 iteration timer regressed
  # more than 10% against the committed BENCH_core.json.
  run cargo run --release --offline -p dwv-bench --bin bench_core -- --check
fi

echo "CI OK"
