//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the real `rand` cannot be downloaded. This crate implements
//! the (small) API subset the workspace actually uses, with the same module
//! paths and trait names, so `use rand::{Rng, SeedableRng}` and
//! `rand::rngs::StdRng` work unchanged:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`). The *stream differs* from upstream
//!   `rand`'s ChaCha12-based `StdRng`, so seeds produce different (but still
//!   reproducible) draws.
//! * [`rngs::mock::StepRng`] — the deterministic stepping generator used in
//!   unit tests.
//! * [`Rng::gen`] for `f64`, `f32`, `bool`, `u32`, `u64`, and
//!   [`Rng::gen_range`] for half-open / inclusive ranges over the float and
//!   integer types the workspace samples.
//!
//! Everything is `std`-only; no unsafe, no dependencies.

#![forbid(unsafe_code)]

pub mod rngs;

/// Core random-source trait: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding from a `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is < span / 2^64 -- negligible for the spans
                // sampled in this workspace (all far below 2^32).
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value sampled uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let k = r.gen_range(0usize..7);
            assert!(k < 7);
            let v = r.gen_range(1.5..=2.5);
            assert!((1.5..=2.5).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
