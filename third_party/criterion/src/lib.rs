//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be downloaded. This crate implements the subset the workspace's
//! benches use — `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size` and `finish`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//!
//! Output is one line per benchmark: name, median per-iteration time, and
//! the sample count.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::Instant;

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints the median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.prefix, name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters_per_sample` calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(start.elapsed().as_secs_f64() / self.iters_per_sample as f64);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: find an iteration count that takes ≥ ~2 ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
        };
        f(&mut b);
        let t = b.samples.first().copied().unwrap_or(0.0) * iters as f64;
        if t >= 2e-3 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut s = b.samples;
    s.sort_by(f64::total_cmp);
    let median = if s.is_empty() { 0.0 } else { s[s.len() / 2] };
    println!(
        "bench {name:<40} {:>12}  ({} samples x {iters} iters)",
        format_time(median),
        s.len()
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("x", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(1.5).contains('s'));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(3e-6).contains("us"));
        assert!(format_time(4e-9).contains("ns"));
    }
}
