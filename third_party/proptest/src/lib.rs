//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be downloaded. This crate implements the subset this workspace's
//! property tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, range/tuple/`collection::vec` strategies and
//! `.prop_map` — with the same paths (`proptest::prelude::*`,
//! `proptest::collection::vec`).
//!
//! Differences from upstream:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   (Debug-formatted) but is not minimized;
//! * **fixed derivation of the RNG seed** from the test-function name, so
//!   runs are reproducible without `.proptest-regressions` files (those
//!   files are ignored).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (`with_cases` is the only knob used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling; panics after
    /// too many consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A half-open length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Outcome of one generated case: pass, fail (message), or rejected by
/// `prop_assume!`.
#[derive(Debug)]
pub enum CaseResult {
    /// Assertion failure with a rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// Drives one property: `cases` random draws of inputs through `run_case`.
///
/// Not user-facing — the [`proptest!`] macro expands to calls of this.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut run_case: impl FnMut(&mut StdRng) -> Result<(), CaseResult>,
) {
    // Deterministic seed from the test name (stable across runs; no
    // regression files needed).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(h);
    let mut rejected = 0u32;
    let mut ran = 0u32;
    while ran < config.cases {
        match run_case(&mut rng) {
            Ok(()) => ran += 1,
            Err(CaseResult::Reject) => {
                rejected += 1;
                assert!(
                    rejected < config.cases * 16 + 1024,
                    "property {name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(CaseResult::Fail(msg)) => {
                panic!("property {name} failed after {ran} passing cases\n{msg}");
            }
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::CaseResult::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (inputs re-drawn) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseResult::Reject);
        }
    };
}

/// Declares property tests. Mirrors upstream `proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in -1.0..1.0f64, v in proptest::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x.abs() <= 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), rng);
                    )+
                    let rendered = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+
                    );
                    let inner = || -> Result<(), $crate::CaseResult> {
                        $body
                        Ok(())
                    };
                    inner().map_err(|e| match e {
                        $crate::CaseResult::Fail(msg) => $crate::CaseResult::Fail(
                            format!("{msg}\ninputs:\n{rendered}"),
                        ),
                        other => other,
                    })
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64, 0.0..1.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -2.0..2.0f64, k in 0u32..5, n in 1usize..4) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(k < 5);
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_strategy_len(v in crate::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn map_and_tuple(p in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn assume_rejects(x in -1.0..1.0f64) {
            prop_assume!(x >= 0.0);
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failure_reports_inputs() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| Err(crate::CaseResult::Fail("boom".into())),
        );
    }
}
