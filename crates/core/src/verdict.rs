//! The verified-result column of Table 1.

use dwv_dynamics::{eval::rates, Controller, ReachAvoidProblem};
use dwv_metrics::GeometricMetric;
use dwv_reach::{Flowpipe, ReachError};
use std::fmt;

/// The outcome of formally verifying a controller (the "Verified result"
/// column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The over-approximated flowpipe provably satisfies reach-avoid.
    ReachAvoid,
    /// A concrete counterexample trajectory violates safety or misses the
    /// goal: the controller is genuinely not reach-avoid.
    Unsafe,
    /// Verification is inconclusive: the over-approximation intersects the
    /// unsafe set (or misses the goal, or the flowpipe diverged) but no
    /// concrete counterexample was found — the paper's "Unknown (due to
    /// over-approximation of the reachable set computation)".
    Unknown,
}

impl Verdict {
    /// Whether the verdict is the formally-guaranteed `reach-avoid`.
    #[must_use]
    pub fn is_reach_avoid(&self) -> bool {
        matches!(self, Verdict::ReachAvoid)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::ReachAvoid => write!(f, "reach-avoid"),
            Verdict::Unsafe => write!(f, "Unsafe"),
            Verdict::Unknown => write!(f, "Unknown"),
        }
    }
}

/// Judges a controller from its verification attempt, reproducing the
/// paper's three-way outcome:
///
/// 1. flowpipe verified reach-avoid → [`Verdict::ReachAvoid`];
/// 2. otherwise, simulate `counterexample_samples` random trajectories: a
///    concrete violation (unsafe entry, or goal never reached) →
///    [`Verdict::Unsafe`];
/// 3. otherwise → [`Verdict::Unknown`] (the over-approximation, not the
///    controller, is at fault).
#[must_use]
pub fn judge<C: Controller + ?Sized>(
    problem: &ReachAvoidProblem,
    controller: &C,
    attempt: &Result<Flowpipe, ReachError>,
    counterexample_samples: usize,
    seed: u64,
) -> Verdict {
    if let Ok(fp) = attempt {
        let metric = GeometricMetric::for_problem(problem);
        if metric.evaluate(fp).is_reach_avoid() {
            return Verdict::ReachAvoid;
        }
    }
    let r = rates(problem, controller, counterexample_samples, seed);
    if r.safe_rate < 1.0 || r.goal_rate < 1.0 {
        Verdict::Unsafe
    } else {
        Verdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::{acc, LinearController};
    use dwv_reach::LinearReach;

    #[test]
    fn good_linear_controller_is_reach_avoid() {
        let p = acc::reach_avoid_problem();
        let v = LinearReach::for_problem(&p).unwrap();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let attempt = v.reach(&k);
        assert_eq!(judge(&p, &k, &attempt, 50, 1), Verdict::ReachAvoid);
    }

    #[test]
    fn uncontrolled_is_unsafe() {
        let p = acc::reach_avoid_problem();
        let v = LinearReach::for_problem(&p).unwrap();
        let k = LinearController::zeros(2, 1);
        let attempt = v.reach(&k);
        assert_eq!(judge(&p, &k, &attempt, 50, 1), Verdict::Unsafe);
    }

    #[test]
    fn diverged_flowpipe_with_safe_sim_is_unknown_or_unsafe() {
        // Force the "flowpipe failed" path with an artificial error; the
        // safe controller then yields Unknown.
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let attempt = Err(ReachError::Unsupported("forced".into()));
        let verdict = judge(&p, &k, &attempt, 30, 1);
        assert_eq!(verdict, Verdict::Unknown);
    }

    #[test]
    fn display_matches_table1_labels() {
        assert_eq!(format!("{}", Verdict::ReachAvoid), "reach-avoid");
        assert_eq!(format!("{}", Verdict::Unsafe), "Unsafe");
        assert_eq!(format!("{}", Verdict::Unknown), "Unknown");
    }
}
