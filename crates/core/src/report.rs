//! One-stop verification reports.
//!
//! [`VerificationReport`] bundles everything a user wants to know about a
//! learned (or externally supplied) controller: the formal verdict, the
//! certified initial set from Algorithm 2, empirical rates, and — when the
//! controller fails — a concrete counterexample. Examples and downstream
//! tooling render it with `Display`.

use crate::algorithm2::InitialSetSearch;
use crate::counterexample::{find_counterexample, Counterexample};
use crate::verdict::{judge, Verdict};
use crate::Algorithm2;
use dwv_dynamics::{eval::rates, eval::RateReport, Controller, ReachAvoidProblem};
use dwv_interval::IntervalBox;
use dwv_reach::{Flowpipe, QueryProvenance, ReachError};
use std::fmt;

/// Which portfolio tier decided one reachability query made while the
/// report was assembled (the whole-`X₀` verification plus every
/// Algorithm-2 cell), in query order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellProvenance {
    /// 0-based index of the query in assessment order (query 0 is the
    /// whole-`X₀` verification).
    pub query: usize,
    /// Where the verdict came from: deciding tier, escalation count, cache.
    pub provenance: QueryProvenance,
}

/// Aggregated verdict provenance for one assessment: who decided what, at
/// what cost class, and how often the cheap tiers had to hand off.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvenanceSummary {
    /// Tier names, cheapest first, rigorous last (the portfolio order).
    pub tiers: Vec<String>,
    /// Per-tier count of queries that tier decided (same order as
    /// [`ProvenanceSummary::tiers`]).
    pub decided_by_tier: Vec<u64>,
    /// Total tier escalations across all queries.
    pub escalations: u64,
    /// Queries answered from the portfolio's memo cache.
    pub cache_hits: u64,
    /// Per-query provenance records, in query order.
    pub cells: Vec<CellProvenance>,
}

impl ProvenanceSummary {
    /// Aggregates per-query provenance records into a summary.
    #[must_use]
    pub fn from_queries(tiers: Vec<String>, queries: Vec<QueryProvenance>) -> Self {
        let mut decided_by_tier = vec![0u64; tiers.len()];
        let mut escalations = 0u64;
        let mut cache_hits = 0u64;
        let mut cells = Vec::with_capacity(queries.len());
        for (query, provenance) in queries.into_iter().enumerate() {
            if let Some(slot) = decided_by_tier.get_mut(provenance.tier_index) {
                *slot += 1;
            }
            escalations += u64::from(provenance.escalations);
            cache_hits += u64::from(provenance.cache_hit);
            cells.push(CellProvenance { query, provenance });
        }
        Self {
            tiers,
            decided_by_tier,
            escalations,
            cache_hits,
            cells,
        }
    }

    /// Total number of queries covered by the summary.
    #[must_use]
    pub fn queries(&self) -> usize {
        self.cells.len()
    }

    /// Serializes the per-query provenance as CSV
    /// (`query,tier_index,tier_name,cost_class,escalations,cache_hit`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("query,tier_index,tier_name,cost_class,escalations,cache_hit\n");
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{:?},{},{}\n",
                c.query,
                c.provenance.tier_index,
                c.provenance.tier_name,
                c.provenance.cost_class,
                c.provenance.escalations,
                c.provenance.cache_hit,
            ));
        }
        out
    }
}

impl fmt::Display for ProvenanceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} queries —", self.queries())?;
        for (name, n) in self.tiers.iter().zip(&self.decided_by_tier) {
            write!(f, " {name} {n};")?;
        }
        write!(
            f,
            " {} escalations, {} cache hits",
            self.escalations, self.cache_hits
        )
    }
}

/// A complete assessment of one controller against one problem.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// The formal verdict (Table 1 semantics).
    pub verdict: Verdict,
    /// Algorithm 2's certified initial set (present when the flowpipe
    /// verified reach-avoid and the search ran).
    pub initial_set: Option<InitialSetSearch>,
    /// Empirical SC/GR rates over simulated rollouts.
    pub rates: RateReport,
    /// A concrete violation, when one was found by simulation.
    pub counterexample: Option<Counterexample>,
    /// A snapshot of the process-wide observability metrics taken when the
    /// report was assembled (present when any instrument recorded anything:
    /// per-phase span timings, cache hit/miss counters, remainder widths).
    pub metrics: Option<dwv_obs::MetricsSnapshot>,
    /// Verdict provenance when the assessment ran on a tiered portfolio
    /// (which tier decided each query, escalations, cache hits); `None`
    /// for single-backend assessments.
    pub provenance: Option<ProvenanceSummary>,
}

impl VerificationReport {
    /// Whether the controller carries a formal reach-avoid guarantee for a
    /// non-empty initial set.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.verdict.is_reach_avoid() && self.initial_set.as_ref().is_some_and(|s| !s.is_empty())
    }

    /// Serializes the report as canonical `section,key,value` CSV.
    ///
    /// This is the byte-exactness contract used by the serving layer and the
    /// `serve` falsification family: two assessments of the same problem and
    /// controller on the same build must produce *identical bytes*, whether
    /// they ran in-process, over TCP, or at different worker-pool widths.
    /// Floats are rendered with Rust's shortest-round-trip formatting (bit
    /// faithful), and cell bounds are emitted exactly. The [`Self::metrics`]
    /// snapshot is deliberately excluded: it carries wall-clock timings,
    /// which are honest observability but not part of the verdict.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn push_box(out: &mut String, section: &str, key: &str, cell: &IntervalBox) {
            let bounds: Vec<String> = cell
                .intervals()
                .iter()
                .map(|iv| format!("{:?}:{:?}", iv.lo(), iv.hi()))
                .collect();
            out.push_str(&format!("{section},{key},{}\n", bounds.join(";")));
        }
        let mut out = String::from("section,key,value\n");
        out.push_str(&format!("report,verdict,{}\n", self.verdict));
        out.push_str(&format!("report,certified,{}\n", self.is_certified()));
        match &self.initial_set {
            Some(s) => {
                out.push_str(&format!("initial_set,cells,{}\n", s.cells.len()));
                out.push_str(&format!("initial_set,coverage,{:?}\n", s.coverage));
                out.push_str(&format!(
                    "initial_set,verifier_calls,{}\n",
                    s.verifier_calls
                ));
                out.push_str(&format!("initial_set,unverified,{}\n", s.unverified.len()));
                for (i, cell) in s.cells.iter().enumerate() {
                    push_box(&mut out, "initial_set", &format!("cell{i}"), cell);
                }
            }
            None => out.push_str("initial_set,cells,none\n"),
        }
        out.push_str(&format!("rates,safe_rate,{:?}\n", self.rates.safe_rate));
        out.push_str(&format!("rates,goal_rate,{:?}\n", self.rates.goal_rate));
        out.push_str(&format!(
            "rates,reach_avoid_rate,{:?}\n",
            self.rates.reach_avoid_rate
        ));
        out.push_str(&format!("rates,n_samples,{}\n", self.rates.n_samples));
        match &self.counterexample {
            Some(c) => {
                let vec_csv = |v: &[f64]| {
                    v.iter()
                        .map(|x| format!("{x:?}"))
                        .collect::<Vec<_>>()
                        .join(";")
                };
                out.push_str(&format!("counterexample,kind,{}\n", c.kind));
                out.push_str(&format!("counterexample,time,{:?}\n", c.time));
                out.push_str(&format!("counterexample,x0,{}\n", vec_csv(&c.x0)));
                out.push_str(&format!("counterexample,state,{}\n", vec_csv(&c.state)));
            }
            None => out.push_str("counterexample,kind,none\n"),
        }
        if let Some(p) = &self.provenance {
            for c in &p.cells {
                out.push_str(&format!(
                    "provenance,q{},{}:{}:{:?}:{}:{}\n",
                    c.query,
                    c.provenance.tier_index,
                    c.provenance.tier_name,
                    c.provenance.cost_class,
                    c.provenance.escalations,
                    c.provenance.cache_hit,
                ));
            }
        }
        out
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verdict        : {}", self.verdict)?;
        match &self.initial_set {
            Some(s) => writeln!(f, "certified X_I  : {s}")?,
            None => writeln!(f, "certified X_I  : (not computed)")?,
        }
        writeln!(
            f,
            "simulated      : SC {:.1}%  GR {:.1}%  ({} rollouts)",
            self.rates.safe_rate * 100.0,
            self.rates.goal_rate * 100.0,
            self.rates.n_samples
        )?;
        match &self.counterexample {
            Some(c) => writeln!(f, "counterexample : {c}")?,
            None => writeln!(f, "counterexample : none found")?,
        }
        if let Some(p) = &self.provenance {
            writeln!(f, "provenance     : {p}")?;
        }
        if let Some(m) = &self.metrics {
            if !m.is_empty() {
                writeln!(f, "cost breakdown :")?;
                for line in m.to_string().lines() {
                    writeln!(f, "  {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Builds a full report for a controller: post-hoc verification, Algorithm-2
/// search over the flowpipe oracle, 500-rollout rates and counterexample
/// search.
///
/// `verify(cell)` must compute the controller's flowpipe from the initial
/// set `cell` (as in [`Algorithm2::search`]); the whole-`X₀` flowpipe is
/// `verify(&problem.x0)`.
#[must_use]
pub fn assess<C, V>(
    problem: &ReachAvoidProblem,
    controller: &C,
    mut verify: V,
) -> VerificationReport
where
    C: Controller + ?Sized,
    V: FnMut(&IntervalBox) -> Result<Flowpipe, ReachError>,
{
    let (verdict, initial_set) = {
        let _s = dwv_obs::span("verify");
        let attempt = verify(&problem.x0);
        let verdict = judge(problem, controller, &attempt, 500, 0x0A55E55);
        let initial_set = if verdict.is_reach_avoid() {
            Some(
                Algorithm2::new(problem)
                    .with_max_rounds(4)
                    .search(|cell| verify(cell)),
            )
        } else {
            None
        };
        (verdict, initial_set)
    };
    let (rates, counterexample) = {
        let _s = dwv_obs::span("simulate");
        let rates = rates(problem, controller, 500, 0x0A55E55);
        let counterexample = if rates.is_perfect() {
            None
        } else {
            find_counterexample(problem, controller, 200, 0x0A55E55)
        };
        (rates, counterexample)
    };
    let snapshot = dwv_obs::snapshot();
    VerificationReport {
        verdict,
        initial_set,
        rates,
        counterexample,
        metrics: (!snapshot.is_empty()).then_some(snapshot),
        provenance: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::{acc, LinearController};
    use dwv_reach::LinearReach;

    fn acc_oracle(
        problem: &ReachAvoidProblem,
        k: &LinearController,
    ) -> impl FnMut(&IntervalBox) -> Result<Flowpipe, ReachError> {
        let (a, b, c) = problem.dynamics.linear_parts().expect("affine");
        let k = k.clone();
        let delta = problem.delta;
        let steps = problem.horizon_steps;
        move |cell: &IntervalBox| LinearReach::new(&a, &b, &c, cell.clone(), delta, steps).reach(&k)
    }

    #[test]
    fn certified_report_for_good_controller() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let report = assess(&p, &k, acc_oracle(&p, &k));
        assert!(report.is_certified(), "{report}");
        assert!(report.counterexample.is_none());
        assert!(report.rates.is_perfect());
        let text = format!("{report}");
        assert!(text.contains("reach-avoid"));
        assert!(text.contains("X_I"));
    }

    #[test]
    fn provenance_summary_aggregates_and_renders() {
        use dwv_reach::CostClass;
        let queries = vec![
            QueryProvenance {
                tier_index: 0,
                tier_name: "interval",
                cost_class: CostClass::Interval,
                escalations: 0,
                cache_hit: false,
            },
            QueryProvenance {
                tier_index: 1,
                tier_name: "linear-exact",
                cost_class: CostClass::Exact,
                escalations: 1,
                cache_hit: true,
            },
        ];
        let s = ProvenanceSummary::from_queries(
            vec!["interval".to_string(), "linear-exact".to_string()],
            queries,
        );
        assert_eq!(s.queries(), 2);
        assert_eq!(s.decided_by_tier, vec![1, 1]);
        assert_eq!(s.escalations, 1);
        assert_eq!(s.cache_hits, 1);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + one row per query");
        assert!(csv.contains("1,1,linear-exact,Exact,1,true"), "{csv}");
        let text = s.to_string();
        assert!(text.contains("2 queries"), "{text}");
        assert!(text.contains("interval 1;"), "{text}");
        assert!(text.contains("1 escalations, 1 cache hits"), "{text}");
    }

    #[test]
    fn csv_is_deterministic_and_excludes_metrics() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let a = assess(&p, &k, acc_oracle(&p, &k)).to_csv();
        let b = assess(&p, &k, acc_oracle(&p, &k)).to_csv();
        assert_eq!(a, b, "same assessment must serialize to identical bytes");
        assert!(a.starts_with("section,key,value\n"));
        assert!(a.contains("report,verdict,"));
        assert!(a.contains("rates,n_samples,500"));
        assert!(
            !a.contains("cost breakdown") && !a.to_lowercase().contains("duration"),
            "timings must stay out of the canonical CSV: {a}"
        );
        // A failing controller's counterexample serializes too.
        let zeros = LinearController::zeros(2, 1);
        let c = assess(&p, &zeros, acc_oracle(&p, &zeros)).to_csv();
        assert!(c.contains("counterexample,kind,"), "{c}");
        assert!(c.contains("counterexample,x0,"), "{c}");
    }

    #[test]
    fn failing_report_carries_counterexample() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::zeros(2, 1);
        let report = assess(&p, &k, acc_oracle(&p, &k));
        assert!(!report.is_certified());
        assert_eq!(report.verdict, Verdict::Unsafe);
        assert!(report.counterexample.is_some());
        assert!(report.initial_set.is_none());
        let text = format!("{report}");
        assert!(text.contains("counterexample"));
    }
}
