//! Algorithm 2: reach-avoid initial-set (`X_I`) searching.
//!
//! Once Algorithm 1 has learned a controller, safety holds for all of `X₀`
//! (the flowpipe over-approximates every trajectory), but *goal-reaching* is
//! not yet guaranteed — `d^g > 0` only says the over-approximation touches
//! the goal. Algorithm 2 restores the formal guarantee: partition `X₀` into
//! cells `X_p`, recompute the flowpipe per cell, and keep every cell for
//! which some step's enclosure lies *entirely inside* `X_g`
//! (`Ψ(f, X_p, κ_θ)|_t ⊆ X_g`). The union of kept cells is `X_I ⊆ X₀`, for
//! which Theorem 2's reach-avoid guarantee holds.

use dwv_geom::Region;
use dwv_interval::IntervalBox;
use dwv_reach::{Flowpipe, ReachError};
use std::fmt;

/// The result of an `X_I` search.
#[derive(Debug, Clone)]
pub struct InitialSetSearch {
    /// The verified cells whose union is `X_I`.
    pub cells: Vec<IntervalBox>,
    /// Volume fraction of `X₀` covered by `X_I`.
    pub coverage: f64,
    /// Number of verifier invocations spent.
    pub verifier_calls: usize,
    /// Cells that could not be verified within the refinement budget.
    pub unverified: Vec<IntervalBox>,
}

impl InitialSetSearch {
    /// Whether the whole initial set was verified (`X_I = X₀`, the paper's
    /// best case, reported in Figs. 6–8).
    #[must_use]
    pub fn covers_everything(&self) -> bool {
        self.unverified.is_empty() && !self.cells.is_empty()
    }

    /// Whether `X_I` is empty (no goal-reaching guarantee anywhere).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The tightest box around `X_I` (for reporting; `X_I` itself is the
    /// cell union).
    #[must_use]
    pub fn bounding_box(&self) -> Option<IntervalBox> {
        let mut it = self.cells.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, c| acc.hull(c)))
    }
}

impl fmt::Display for InitialSetSearch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "X_I: {} cells, {:.1}% of X0 ({} verifier calls)",
            self.cells.len(),
            self.coverage * 100.0,
            self.verifier_calls
        )
    }
}

/// How Algorithm 2 partitions the initial set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Adaptive: unverified cells are bisected along their widest dimension
    /// each round (usually far fewer verifier calls than uniform grids).
    #[default]
    AdaptiveBisection,
    /// The paper's literal scheme: each round re-partitions the *remaining*
    /// space uniformly with an increasing per-dimension count
    /// (`P = 1, 2, 4, …`), keeping every verified cell.
    UniformRefinement,
}

/// Algorithm 2: partition refinement of `X₀`.
///
/// Starting from `X₀` as a single cell, each round verifies every pending
/// cell; cells whose flowpipe has a step enclosure inside the goal are
/// accepted, the rest are refined per the configured [`SearchStrategy`], up
/// to `max_rounds` of refinement.
///
/// # Example
///
/// ```no_run
/// use dwv_core::Algorithm2;
/// use dwv_dynamics::acc;
/// use dwv_reach::LinearReach;
/// use dwv_dynamics::LinearController;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = acc::reach_avoid_problem();
/// let controller = LinearController::new(2, 1, vec![0.5867, -2.0]);
/// let search = Algorithm2::new(&problem).search(|cell| {
///     let v = LinearReach::new(
///         &problem.dynamics.linear_parts().unwrap().0,
///         &problem.dynamics.linear_parts().unwrap().1,
///         &problem.dynamics.linear_parts().unwrap().2,
///         cell.clone(), problem.delta, problem.horizon_steps);
///     v.reach(&controller)
/// });
/// println!("{search}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm2 {
    x0: IntervalBox,
    goal: Region,
    unsafe_region: Region,
    /// Maximum refinement rounds (each round bisects pending cells once).
    pub max_rounds: usize,
    /// Also require per-cell safety (no step intersects the unsafe set) —
    /// defensive double-check on top of the X₀-wide safety from Algorithm 1.
    pub require_safety: bool,
    /// The partitioning scheme.
    pub strategy: SearchStrategy,
}

impl Algorithm2 {
    /// Creates the search for a problem.
    #[must_use]
    pub fn new(problem: &dwv_dynamics::ReachAvoidProblem) -> Self {
        Self {
            x0: problem.x0.clone(),
            goal: problem.goal_region.clone(),
            unsafe_region: problem.unsafe_region.clone(),
            max_rounds: 4,
            require_safety: true,
            strategy: SearchStrategy::default(),
        }
    }

    /// Sets the refinement budget.
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the partitioning scheme.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs the search with a per-cell verification oracle.
    ///
    /// `verify(cell)` must compute the flowpipe of the *learned* controller
    /// from the initial set `cell`.
    #[must_use]
    pub fn search<V>(&self, mut verify: V) -> InitialSetSearch
    where
        V: FnMut(&IntervalBox) -> Result<Flowpipe, ReachError>,
    {
        self.search_with(&mut |cells: &[IntervalBox]| {
            cells
                .iter()
                .map(|c| match verify(c) {
                    Ok(fp) => self.cell_verified(&fp),
                    Err(_) => false,
                })
                .collect()
        })
    }

    /// Runs the search with per-round cell batches fanned out on a worker
    /// pool.
    ///
    /// The result is **identical** to [`search`](Self::search) with the same
    /// oracle — cells are batched in partition order and verdicts merged
    /// back by cell index (see [`WorkerPool::map`]), so accepted cells,
    /// coverage, unverified cells and call counts all match the serial
    /// sweep. Requires `verify: Fn + Sync` since cells of one round are
    /// verified concurrently.
    #[must_use]
    pub fn search_parallel<V>(
        &self,
        verify: V,
        pool: &crate::parallel::WorkerPool,
    ) -> InitialSetSearch
    where
        V: Fn(&IntervalBox) -> Result<Flowpipe, ReachError> + Sync,
    {
        self.search_with(&mut |cells: &[IntervalBox]| {
            pool.map(cells, |c| match verify(c) {
                Ok(fp) => self.cell_verified(&fp),
                Err(_) => false,
            })
        })
    }

    /// The strategy dispatcher over a *batch* verdict oracle: one call per
    /// refinement round, verdicts in cell order.
    fn search_with(&self, eval: &mut dyn FnMut(&[IntervalBox]) -> Vec<bool>) -> InitialSetSearch {
        let _s = dwv_obs::span("alg2.search");
        let (accepted, pending, calls) = match self.strategy {
            SearchStrategy::AdaptiveBisection => self.search_adaptive(eval),
            SearchStrategy::UniformRefinement => self.search_uniform(eval),
        };
        let covered: f64 = accepted.iter().map(IntervalBox::volume).sum();
        let total = self.x0.volume();
        InitialSetSearch {
            cells: accepted,
            coverage: if total > 0.0 { covered / total } else { 0.0 },
            verifier_calls: calls,
            unverified: pending,
        }
    }

    fn search_adaptive(
        &self,
        eval: &mut dyn FnMut(&[IntervalBox]) -> Vec<bool>,
    ) -> (Vec<IntervalBox>, Vec<IntervalBox>, usize) {
        let mut pending = vec![self.x0.clone()];
        let mut accepted: Vec<IntervalBox> = Vec::new();
        let mut calls = 0usize;
        for round in 0..=self.max_rounds {
            calls += pending.len();
            note_round(round, pending.len());
            let verdicts = eval(&pending);
            let mut next = Vec::new();
            for (cell, ok) in pending.into_iter().zip(verdicts) {
                if ok {
                    accepted.push(cell);
                } else if round < self.max_rounds {
                    let dim = cell.widest_dim().map(|(d, _)| d).unwrap_or(0);
                    let (a, b) = cell.bisect(dim);
                    next.push(a);
                    next.push(b);
                } else {
                    next.push(cell);
                }
            }
            pending = next;
            if pending.is_empty() {
                break;
            }
        }
        (accepted, pending, calls)
    }

    /// The paper's literal scheme: round `r` partitions `X₀` uniformly into
    /// `2^r` cells per dimension and verifies every cell not already covered
    /// by an accepted cell from an earlier (coarser) round. (Cells of one
    /// round are congruent and disjoint, so only earlier rounds' accepted
    /// cells can cover a cell — the skip check per round is against a fixed
    /// accepted set, which is what makes per-round batching sound.)
    fn search_uniform(
        &self,
        eval: &mut dyn FnMut(&[IntervalBox]) -> Vec<bool>,
    ) -> (Vec<IntervalBox>, Vec<IntervalBox>, usize) {
        let n = self.x0.dim();
        let mut accepted: Vec<IntervalBox> = Vec::new();
        let mut pending: Vec<IntervalBox> = Vec::new();
        let mut calls = 0usize;
        for round in 0..=self.max_rounds {
            let per_dim = 1usize << round;
            let cells: Vec<IntervalBox> = self
                .x0
                .partition(&vec![per_dim; n])
                .into_iter()
                // Skip anything already certified at a coarser level.
                .filter(|cell| !accepted.iter().any(|a| a.contains(cell)))
                .collect();
            calls += cells.len();
            note_round(round, cells.len());
            let verdicts = eval(&cells);
            pending = Vec::new();
            for (cell, ok) in cells.into_iter().zip(verdicts) {
                if ok {
                    accepted.push(cell);
                } else {
                    pending.push(cell);
                }
            }
            if pending.is_empty() {
                break;
            }
        }
        (accepted, pending, calls)
    }

    /// Whether a cell's flowpipe formally reaches the goal: some step's
    /// enclosure is contained in `X_g` (and, when `require_safety`, no step
    /// meets `X_u`).
    fn cell_verified(&self, fp: &Flowpipe) -> bool {
        let reaches = fp.iter().any(|s| self.goal.contains_box(&s.end_box));
        if !reaches {
            return false;
        }
        if self.require_safety {
            let safe = fp
                .iter()
                .all(|s| !self.unsafe_region.intersects_box(&s.enclosure));
            if !safe {
                return false;
            }
        }
        true
    }
}

/// Records one refinement round (cells verified this round) in the metrics
/// and event stream.
fn note_round(round: usize, cells: usize) {
    if dwv_obs::enabled() {
        dwv_obs::counter("alg2.rounds").inc();
        dwv_obs::counter("alg2.cells").add(cells as u64);
        dwv_obs::event(
            "alg2.round",
            &[("round", round as f64), ("cells", cells as f64)],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::acc;
    use dwv_dynamics::LinearController;
    use dwv_reach::LinearReach;

    fn acc_verify(
        problem: &dwv_dynamics::ReachAvoidProblem,
        controller: &LinearController,
        cell: &IntervalBox,
    ) -> Result<Flowpipe, ReachError> {
        let (a, b, c) = problem.dynamics.linear_parts().unwrap();
        LinearReach::new(
            &a,
            &b,
            &c,
            cell.clone(),
            problem.delta,
            problem.horizon_steps,
        )
        .reach(controller)
    }

    #[test]
    fn acc_full_initial_set_verified() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let search = Algorithm2::new(&p).search(|cell| acc_verify(&p, &k, cell));
        assert!(
            search.coverage > 0.99,
            "expected (near-)full coverage, got {search}"
        );
        assert!(!search.is_empty());
        let bb = search.bounding_box().unwrap();
        assert!(p.x0.inflate(1e-9).contains(&bb));
    }

    #[test]
    fn hopeless_controller_gives_empty_xi() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::zeros(2, 1);
        let search = Algorithm2::new(&p)
            .with_max_rounds(2)
            .search(|cell| acc_verify(&p, &k, cell));
        assert!(search.is_empty());
        assert_eq!(search.coverage, 0.0);
        assert!(!search.covers_everything());
        assert!(!search.unverified.is_empty());
    }

    #[test]
    fn refinement_splits_cells() {
        // A controller that works from part of X0 only would need splitting;
        // here we just check the call accounting on the hopeless case.
        let p = acc::reach_avoid_problem();
        let k = LinearController::zeros(2, 1);
        let search = Algorithm2::new(&p)
            .with_max_rounds(2)
            .search(|cell| acc_verify(&p, &k, cell));
        // Rounds: 1 + 2 + 4 cells verified.
        assert_eq!(search.verifier_calls, 7);
    }

    #[test]
    fn uniform_strategy_matches_adaptive_coverage() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let adaptive = Algorithm2::new(&p).search(|cell| acc_verify(&p, &k, cell));
        let uniform = Algorithm2::new(&p)
            .with_strategy(SearchStrategy::UniformRefinement)
            .search(|cell| acc_verify(&p, &k, cell));
        assert!(
            (adaptive.coverage - uniform.coverage).abs() < 0.26,
            "coverages differ too much: {} vs {}",
            adaptive.coverage,
            uniform.coverage
        );
        assert!(uniform.coverage > 0.7);
    }

    #[test]
    fn uniform_strategy_skips_covered_cells() {
        // A controller verified from the whole X0 needs exactly one call.
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let uniform = Algorithm2::new(&p)
            .with_strategy(SearchStrategy::UniformRefinement)
            .search(|cell| acc_verify(&p, &k, cell));
        if uniform.coverage > 0.99 && uniform.cells.len() == 1 {
            assert_eq!(uniform.verifier_calls, 1);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // Both strategies, a verifying and a hopeless controller, and pool
        // widths beyond the cell count: cells, coverage, call counts and the
        // unverified (counterexample-cell) ordering must match exactly.
        let p = acc::reach_avoid_problem();
        for strategy in [
            SearchStrategy::AdaptiveBisection,
            SearchStrategy::UniformRefinement,
        ] {
            for gains in [vec![0.5867, -2.0], vec![0.0, 0.0], vec![0.3, -1.0]] {
                let k = LinearController::new(2, 1, gains);
                let alg = Algorithm2::new(&p)
                    .with_max_rounds(3)
                    .with_strategy(strategy);
                let serial = alg.search(|cell| acc_verify(&p, &k, cell));
                for threads in [1, 2, 8] {
                    let pool = crate::parallel::WorkerPool::new(threads).force_parallel();
                    let par = alg.search_parallel(|cell| acc_verify(&p, &k, cell), &pool);
                    assert_eq!(par.cells, serial.cells);
                    assert_eq!(par.unverified, serial.unverified);
                    assert_eq!(par.verifier_calls, serial.verifier_calls);
                    assert_eq!(par.coverage.to_bits(), serial.coverage.to_bits());
                }
            }
        }
    }

    #[test]
    fn display_formats() {
        let s = InitialSetSearch {
            cells: vec![IntervalBox::from_bounds(&[(0.0, 1.0)])],
            coverage: 0.5,
            verifier_calls: 3,
            unverified: vec![],
        };
        let txt = format!("{s}");
        assert!(txt.contains("50.0%"));
        assert!(s.covers_everything());
    }
}
