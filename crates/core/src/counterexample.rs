//! Concrete counterexample extraction.
//!
//! When a controller fails verification, a *concrete* violating trajectory
//! is far more actionable than an abstract `Unsafe` label: it localizes the
//! failure in the initial set and in time, and it can seed falsification
//! loops or debugging. [`find_counterexample`] searches simulated rollouts
//! for the earliest, most violating trajectory.

use dwv_dynamics::{simulate::Simulator, Controller, ReachAvoidProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How a trajectory violates the reach-avoid property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The trajectory enters the unsafe set.
    EntersUnsafe,
    /// The trajectory never reaches the goal within the horizon.
    MissesGoal,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::EntersUnsafe => write!(f, "enters the unsafe set"),
            ViolationKind::MissesGoal => write!(f, "never reaches the goal"),
        }
    }
}

/// A concrete reach-avoid violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The violating initial state.
    pub x0: Vec<f64>,
    /// The kind of violation.
    pub kind: ViolationKind,
    /// For [`ViolationKind::EntersUnsafe`]: the first violation time; for
    /// misses, the horizon.
    pub time: f64,
    /// The state at `time` (the unsafe entry point, or the final state for
    /// goal misses).
    pub state: Vec<f64>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "from x(0) = {:?} the trajectory {} (t = {:.3}, state {:?})",
            self.x0, self.kind, self.time, self.state
        )
    }
}

/// Searches `samples` random rollouts for a reach-avoid violation,
/// preferring safety violations (they refute the stronger claim) and, among
/// those, the earliest one found.
///
/// Returns `None` when every sampled trajectory is safe and goal-reaching —
/// which is evidence of (but not proof of) correctness; formal guarantees
/// come from the verifiers.
#[must_use]
pub fn find_counterexample<C: Controller + ?Sized>(
    problem: &ReachAvoidProblem,
    controller: &C,
    samples: usize,
    seed: u64,
) -> Option<Counterexample> {
    let sim = Simulator::new(problem.dynamics.clone(), problem.delta);
    let mut rng = StdRng::seed_from_u64(seed);
    let substeps = 10usize;
    let fine_dt = problem.delta / substeps as f64;
    let mut best: Option<Counterexample> = None;
    for _ in 0..samples {
        let x0: Vec<f64> = (0..problem.x0.dim())
            .map(|i| {
                let iv = problem.x0.interval(i);
                rng.gen_range(iv.lo()..=iv.hi())
            })
            .collect();
        let traj = sim.rollout(&x0, controller, problem.horizon_steps);
        let mut reached = false;
        let mut unsafe_hit: Option<(usize, Vec<f64>)> = None;
        for (idx, x) in traj.fine_states.iter().enumerate() {
            if problem.unsafe_region.contains_point(x) {
                unsafe_hit = Some((idx, x.clone()));
                break;
            }
            if problem.goal_region.contains_point(x) {
                reached = true;
            }
        }
        let candidate = if let Some((idx, state)) = unsafe_hit {
            Some(Counterexample {
                x0,
                kind: ViolationKind::EntersUnsafe,
                time: idx as f64 * fine_dt,
                state,
            })
        } else if !reached {
            Some(Counterexample {
                time: problem.horizon(),
                state: traj.fine_states.last().expect("non-empty").clone(), // dwv-lint: allow(panic-freedom) -- a simulated trajectory always contains at least the initial state
                x0,
                kind: ViolationKind::MissesGoal,
            })
        } else {
            None
        };
        // Prefer safety violations; among them, the earliest.
        if let Some(c) = candidate {
            best = match best {
                None => Some(c),
                Some(b) => {
                    let rank = |x: &Counterexample| {
                        (u8::from(x.kind != ViolationKind::EntersUnsafe), x.time)
                    };
                    if rank(&c) < rank(&b) {
                        Some(c)
                    } else {
                        Some(b)
                    }
                }
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::{acc, LinearController};

    #[test]
    fn uncontrolled_acc_yields_unsafe_counterexample() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::zeros(2, 1);
        let c = find_counterexample(&p, &k, 50, 1).expect("uncontrolled ACC crashes");
        assert_eq!(c.kind, ViolationKind::EntersUnsafe);
        assert!(c.state[0] <= 120.0 + 1e-9, "entry state {:?}", c.state);
        assert!(p.x0.contains_point(&c.x0));
        assert!(c.time > 0.0 && c.time <= p.horizon());
        // Display is informative.
        let s = format!("{c}");
        assert!(s.contains("unsafe"));
    }

    #[test]
    fn safe_but_slow_controller_yields_goal_miss() {
        // Strong braking keeps it safe but parks far beyond the goal window.
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.0, -2.0]);
        let c = find_counterexample(&p, &k, 30, 2).expect("never reaches goal");
        assert_eq!(c.kind, ViolationKind::MissesGoal);
        assert!((c.time - p.horizon()).abs() < 1e-9);
    }

    #[test]
    fn good_controller_yields_none() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        assert!(find_counterexample(&p, &k, 100, 3).is_none());
    }

    #[test]
    fn prefers_safety_violations() {
        // A controller that is unsafe from some initial states and merely
        // slow from others must report EntersUnsafe.
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.0, -0.4]);
        if let Some(c) = find_counterexample(&p, &k, 200, 4) {
            // If any unsafe trajectory exists in the sample it must win.
            let unsafe_exists = {
                use dwv_dynamics::eval::rates;
                rates(&p, &k, 200, 4).safe_rate < 1.0
            };
            if unsafe_exists {
                assert_eq!(c.kind, ViolationKind::EntersUnsafe);
            }
        }
    }
}
