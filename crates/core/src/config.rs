//! Learning configuration (the knobs of Algorithm 1).

use dwv_reach::TaylorReachConfig;

/// Which distance metric drives the learning (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricKind {
    /// Geometric distances `d^u`, `d^g` (Eqs. 2–3) — "Ours(G)".
    #[default]
    Geometric,
    /// Wasserstein distances (Eq. 4) — "Ours(W)".
    Wasserstein,
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricKind::Geometric => write!(f, "G"),
            MetricKind::Wasserstein => write!(f, "W"),
        }
    }
}

/// How the difference-method gradient (Eq. 5) is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientEstimator {
    /// Central differences per parameter coordinate — `2·|θ|` verifier calls
    /// per iteration. Exact direction; appropriate for low-dimensional `θ`
    /// (the ACC linear controller).
    Coordinate,
    /// Simultaneous-perturbation (SPSA): random `±p` perturbation of the
    /// whole vector, `2·samples` verifier calls per iteration — the paper's
    /// Fig. 2 picture, and the only practical choice for neural `θ`.
    Spsa {
        /// Number of random perturbation directions averaged per iteration.
        samples: usize,
    },
}

impl Default for GradientEstimator {
    fn default() -> Self {
        GradientEstimator::Spsa { samples: 1 }
    }
}

/// Which NN abstraction the verifier uses (paper's ReachNN vs POLAR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbstractionKind {
    /// POLAR-style Taylor-model propagation with the given order.
    Polar {
        /// Activation Taylor-expansion order.
        order: u32,
    },
    /// ReachNN-style Bernstein fit with the given per-dimension degree.
    Bernstein {
        /// Bernstein degree per state dimension.
        degree: u32,
    },
}

impl Default for AbstractionKind {
    fn default() -> Self {
        AbstractionKind::Polar { order: 2 }
    }
}

impl std::fmt::Display for AbstractionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbstractionKind::Polar { .. } => write!(f, "POLAR"),
            AbstractionKind::Bernstein { .. } => write!(f, "ReachNN"),
        }
    }
}

/// How Algorithm 1 spends its verifier budget (the tiered portfolio of
/// ISSUE 7).
///
/// `Off` reproduces the single-backend learner bit for bit: every query —
/// gradient probes, candidate evaluations, the final acceptance — goes to
/// the rigorous backend. `Surrogate` routes the high-volume exploratory
/// queries through the cheap portfolio tiers (interval → zonotope) and
/// reserves the rigorous tier for decisions: a cheap-tier reach-avoid is
/// only trusted after a rigorous confirmation, a rigorous stop-check runs
/// every `confirm_every` iterations in case the cheap tiers are too loose
/// to ever report convergence, and the accepted controller is always
/// re-verified rigorously before Algorithm 1 returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortfolioMode {
    /// Every verifier query uses the rigorous backend (paper baseline).
    #[default]
    Off,
    /// Exploratory queries use cheap tiers; rigorous calls only for
    /// confirmation, periodic stop-checks, and final acceptance.
    Surrogate {
        /// Run a rigorous stop-check every this many iterations (values
        /// below 1 are treated as 1).
        confirm_every: usize,
    },
}

impl std::fmt::Display for PortfolioMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortfolioMode::Off => write!(f, "off"),
            PortfolioMode::Surrogate { confirm_every } => {
                write!(f, "surrogate(confirm_every={confirm_every})")
            }
        }
    }
}

/// Configuration of the verification-in-the-loop learner.
///
/// Build with [`LearnConfig::builder`]:
///
/// ```
/// use dwv_core::{LearnConfig, MetricKind};
///
/// let cfg = LearnConfig::builder()
///     .metric(MetricKind::Wasserstein)
///     .max_updates(50)
///     .alpha(0.05)
///     .beta(0.05)
///     .seed(42)
///     .build();
/// assert_eq!(cfg.max_updates, 50);
/// ```
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// The metric driving the descent.
    pub metric: MetricKind,
    /// Maximum number of update iterations `N`.
    pub max_updates: usize,
    /// Step length `α` on the unsafe-distance gradient.
    pub alpha: f64,
    /// Step length `β` on the goal-distance gradient.
    pub beta: f64,
    /// Perturbation magnitude `p` of the difference method.
    pub perturbation: f64,
    /// Gradient estimator.
    pub estimator: GradientEstimator,
    /// RNG seed (initialization and SPSA directions are deterministic in
    /// it).
    pub seed: u64,
    /// Hidden-layer sizes for neural controllers (input/output sizes come
    /// from the problem).
    pub nn_hidden: Vec<usize>,
    /// Output scale of neural controllers (Tanh output × scale).
    pub nn_output_scale: f64,
    /// NN abstraction for the Taylor-model verifier.
    pub abstraction: AbstractionKind,
    /// Flowpipe engine configuration.
    pub verifier: TaylorReachConfig,
    /// Sample-cloud size for the Wasserstein metric.
    pub wasserstein_samples: usize,
    /// Cap on the safety term's contribution to the learning objective:
    /// once `d^u` (or `W(r, u)`) exceeds this, extra clearance from the
    /// unsafe set stops trading off against goal progress. `None` (the
    /// default) scales the cap to the problem: 5% of the universe box's
    /// diagonal.
    pub safety_cap: Option<f64>,
    /// Verifier-portfolio mode (see [`PortfolioMode`]).
    pub portfolio: PortfolioMode,
    /// Decisiveness slack for cheap portfolio tiers in per-cell sweeps: a
    /// cheap verdict is kept only when its geometric margin clears this
    /// value; otherwise the query escalates.
    pub portfolio_slack: f64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        Self {
            metric: MetricKind::Geometric,
            max_updates: 60,
            alpha: 0.1,
            beta: 0.1,
            perturbation: 1e-2,
            estimator: GradientEstimator::default(),
            seed: 0,
            nn_hidden: vec![8],
            nn_output_scale: 1.0,
            abstraction: AbstractionKind::default(),
            verifier: TaylorReachConfig::default(),
            wasserstein_samples: 48,
            safety_cap: None,
            portfolio: PortfolioMode::Off,
            portfolio_slack: 0.0,
        }
    }
}

impl LearnConfig {
    /// Starts a builder with default values.
    #[must_use]
    pub fn builder() -> LearnConfigBuilder {
        LearnConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`LearnConfig`].
#[derive(Debug, Clone)]
pub struct LearnConfigBuilder {
    config: LearnConfig,
}

impl LearnConfigBuilder {
    /// Sets the metric.
    #[must_use]
    pub fn metric(mut self, m: MetricKind) -> Self {
        self.config.metric = m;
        self
    }

    /// Sets the iteration limit `N`.
    #[must_use]
    pub fn max_updates(mut self, n: usize) -> Self {
        self.config.max_updates = n;
        self
    }

    /// Sets the step length `α`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0`.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        self.config.alpha = alpha;
        self
    }

    /// Sets the step length `β`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0`.
    #[must_use]
    pub fn beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        self.config.beta = beta;
        self
    }

    /// Sets the perturbation magnitude `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p <= 0`.
    #[must_use]
    pub fn perturbation(mut self, p: f64) -> Self {
        assert!(p > 0.0, "perturbation must be positive");
        self.config.perturbation = p;
        self
    }

    /// Sets the gradient estimator.
    #[must_use]
    pub fn estimator(mut self, e: GradientEstimator) -> Self {
        self.config.estimator = e;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the hidden-layer sizes of neural controllers.
    #[must_use]
    pub fn nn_hidden(mut self, sizes: Vec<usize>) -> Self {
        self.config.nn_hidden = sizes;
        self
    }

    /// Sets the neural controller's output scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    #[must_use]
    pub fn nn_output_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "output scale must be positive");
        self.config.nn_output_scale = scale;
        self
    }

    /// Sets the NN abstraction.
    #[must_use]
    pub fn abstraction(mut self, a: AbstractionKind) -> Self {
        self.config.abstraction = a;
        self
    }

    /// Sets the flowpipe engine configuration.
    #[must_use]
    pub fn verifier(mut self, v: TaylorReachConfig) -> Self {
        self.config.verifier = v;
        self
    }

    /// Sets the Wasserstein sample-cloud size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn wasserstein_samples(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one sample");
        self.config.wasserstein_samples = n;
        self
    }

    /// Sets the safety-term cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap <= 0`.
    #[must_use]
    pub fn safety_cap(mut self, cap: f64) -> Self {
        assert!(cap > 0.0, "safety cap must be positive");
        self.config.safety_cap = Some(cap);
        self
    }

    /// Sets the verifier-portfolio mode.
    #[must_use]
    pub fn portfolio(mut self, mode: PortfolioMode) -> Self {
        self.config.portfolio = mode;
        self
    }

    /// Sets the cheap-tier decisiveness slack.
    ///
    /// # Panics
    ///
    /// Panics if `slack` is negative or non-finite.
    #[must_use]
    pub fn portfolio_slack(mut self, slack: f64) -> Self {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "portfolio slack must be finite and non-negative"
        );
        self.config.portfolio_slack = slack;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(self) -> LearnConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let cfg = LearnConfig::builder()
            .metric(MetricKind::Wasserstein)
            .max_updates(7)
            .alpha(0.3)
            .beta(0.4)
            .perturbation(0.05)
            .estimator(GradientEstimator::Coordinate)
            .seed(9)
            .nn_hidden(vec![4, 4])
            .nn_output_scale(2.0)
            .abstraction(AbstractionKind::Bernstein { degree: 2 })
            .wasserstein_samples(16)
            .safety_cap(0.5)
            .build();
        assert_eq!(cfg.metric, MetricKind::Wasserstein);
        assert_eq!(cfg.max_updates, 7);
        assert_eq!(cfg.alpha, 0.3);
        assert_eq!(cfg.beta, 0.4);
        assert_eq!(cfg.perturbation, 0.05);
        assert_eq!(cfg.estimator, GradientEstimator::Coordinate);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.nn_hidden, vec![4, 4]);
        assert_eq!(cfg.nn_output_scale, 2.0);
        assert!(matches!(
            cfg.abstraction,
            AbstractionKind::Bernstein { degree: 2 }
        ));
        assert_eq!(cfg.safety_cap, Some(0.5));
        assert_eq!(cfg.wasserstein_samples, 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_alpha_rejected() {
        let _ = LearnConfig::builder().alpha(-1.0);
    }

    #[test]
    fn portfolio_defaults_off_and_builder_sets_surrogate() {
        let cfg = LearnConfig::default();
        assert_eq!(cfg.portfolio, PortfolioMode::Off);
        assert_eq!(cfg.portfolio_slack, 0.0);
        let cfg = LearnConfig::builder()
            .portfolio(PortfolioMode::Surrogate { confirm_every: 8 })
            .portfolio_slack(0.05)
            .build();
        assert_eq!(cfg.portfolio, PortfolioMode::Surrogate { confirm_every: 8 });
        assert_eq!(cfg.portfolio_slack, 0.05);
        assert_eq!(format!("{}", PortfolioMode::Off), "off");
        assert_eq!(
            format!("{}", PortfolioMode::Surrogate { confirm_every: 8 }),
            "surrogate(confirm_every=8)"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_portfolio_slack_rejected() {
        let _ = LearnConfig::builder().portfolio_slack(-0.1);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", MetricKind::Geometric), "G");
        assert_eq!(format!("{}", MetricKind::Wasserstein), "W");
        assert_eq!(format!("{}", AbstractionKind::Polar { order: 2 }), "POLAR");
        assert_eq!(
            format!("{}", AbstractionKind::Bernstein { degree: 3 }),
            "ReachNN"
        );
    }
}
