//! Verification-in-the-loop control learning — the paper's contribution.
//!
//! This crate implements the Design-while-Verify framework of the DAC'22
//! paper:
//!
//! * [`Algorithm1`] — the approximated-gradient-descent learning loop of
//!   Algorithm 1: at each iteration it perturbs the controller parameters
//!   `θ ± p`, queries the verifier for the reachable sets, evaluates the
//!   chosen metric (geometric or Wasserstein), forms the difference-quotient
//!   gradients of Eq. (5) and updates `θ = θ − α∇^u + β∇^g`, stopping early
//!   as soon as the over-approximated flowpipe is verified reach-avoid;
//! * [`Algorithm2`] — the reach-avoid initial-set search: partitions `X₀`
//!   ever more finely and keeps every cell whose flowpipe has some step
//!   entirely inside the goal set, yielding `X_I ⊆ X₀` with a formal
//!   goal-reaching guarantee (safety already holds for all of `X₀`);
//! * [`LearnConfig`] / [`MetricKind`] / [`GradientEstimator`] — tuning knobs,
//! * [`LearningTrace`] — per-iteration metric values (Figures 4 and 5),
//! * [`Verdict`] — the verified-result column of Table 1 (`reach-avoid`,
//!   `Unsafe`, or `Unknown`).
//!
//! # Example
//!
//! ```
//! use dwv_core::{Algorithm1, LearnConfig, MetricKind};
//! use dwv_dynamics::acc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = acc::reach_avoid_problem();
//! let config = LearnConfig::builder()
//!     .metric(MetricKind::Geometric)
//!     .max_updates(80)
//!     .seed(7)
//!     .build();
//! let outcome = Algorithm1::new(problem, config).learn_linear()?;
//! assert!(outcome.verified.is_reach_avoid());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm1;
mod algorithm2;
pub mod arbitrary;
mod config;
mod counterexample;
pub mod parallel;
mod pipeline;
mod report;
mod trace;
mod verdict;

pub use algorithm1::{Algorithm1, LearnError, LearnOutcome};
pub use algorithm2::{Algorithm2, InitialSetSearch, SearchStrategy};
pub use config::{
    AbstractionKind, GradientEstimator, LearnConfig, LearnConfigBuilder, MetricKind, PortfolioMode,
};
pub use counterexample::{find_counterexample, Counterexample, ViolationKind};
pub use parallel::{CancelToken, WorkerPool};
pub use pipeline::{design_while_verify_linear, design_while_verify_nn, PipelineOutcome};
pub use report::{assess, CellProvenance, ProvenanceSummary, VerificationReport};
pub use trace::{IterationRecord, LearningTrace};
pub use verdict::{judge, Verdict};
