//! The one-call porcelain: learn, certify, report.
//!
//! [`design_while_verify_linear`] and [`design_while_verify_nn`] run the
//! full pipeline of the paper — Algorithm 1 (learning with the verifier in
//! the loop), Algorithm 2 (initial-set certification) and a final
//! [`VerificationReport`] — with one function call each.

use crate::algorithm1::{Algorithm1, LearnError, LearnOutcome};
use crate::config::{AbstractionKind, LearnConfig, PortfolioMode};
use crate::report::{assess, ProvenanceSummary, VerificationReport};
use dwv_dynamics::{Controller, LinearController, NnController, ReachAvoidProblem};
use dwv_interval::IntervalBox;
use dwv_metrics::GeometricMetric;
use dwv_reach::{
    BernsteinAbstraction, Flowpipe, LinearReach, PortfolioVerifier, ReachError, TaylorAbstraction,
    TaylorReach,
};

/// The outcome of a full design-while-verify pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome<C> {
    /// The learning outcome (controller, CI, trace).
    pub learning: LearnOutcome<C>,
    /// The final assessment (verdict, certified `X_I`, rates,
    /// counterexample).
    pub report: VerificationReport,
    /// Per-tier call accounting of the certification sweep when it ran on
    /// the tiered portfolio ([`PortfolioMode::Surrogate`]); `None` in the
    /// single-backend baseline. (Algorithm 1's own portfolio bill is in
    /// `learning.portfolio`.)
    pub sweep_portfolio: Option<dwv_reach::PortfolioStats>,
}

impl<C> PipelineOutcome<C> {
    /// Whether the run produced a certified controller.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.report.is_certified()
    }
}

/// Learns and certifies a linear controller for an affine problem.
///
/// # Errors
///
/// [`LearnError::Unsupported`] when the dynamics are not affine.
///
/// # Example
///
/// ```no_run
/// use dwv_core::{design_while_verify_linear, LearnConfig};
/// use dwv_dynamics::acc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = design_while_verify_linear(
///     acc::reach_avoid_problem(),
///     LearnConfig::builder().seed(7).max_updates(200).build(),
/// )?;
/// println!("{}", outcome.report);
/// assert!(outcome.is_certified());
/// # Ok(())
/// # }
/// ```
pub fn design_while_verify_linear(
    problem: ReachAvoidProblem,
    config: LearnConfig,
) -> Result<PipelineOutcome<LinearController>, LearnError> {
    let _s = dwv_obs::span("pipeline");
    let mode = config.portfolio;
    let alg = Algorithm1::new(problem.clone(), config);
    let learning = alg.learn_linear()?;
    let controller = learning.controller.clone();
    match mode {
        PortfolioMode::Off => {
            let (a, b, c) = problem
                .dynamics
                .linear_parts()
                .expect("learn_linear succeeded, so the dynamics are affine"); // dwv-lint: allow(panic-freedom) -- learn_linear succeeded, so linear_parts is Some
            let oracle_controller = controller.clone();
            let delta = problem.delta;
            let steps = problem.horizon_steps;
            let report = assess(&problem, &controller, move |cell: &IntervalBox| {
                LinearReach::new(&a, &b, &c, cell.clone(), delta, steps).reach(&oracle_controller)
            });
            Ok(PipelineOutcome {
                learning,
                report,
                sweep_portfolio: None,
            })
        }
        PortfolioMode::Surrogate { .. } => {
            let portfolio = alg.linear_portfolio()?;
            let report = assess_with_portfolio(&problem, &controller, &portfolio);
            Ok(PipelineOutcome {
                learning,
                report,
                sweep_portfolio: Some(portfolio.stats()),
            })
        }
    }
}

/// Runs the certification sweep on the tiered portfolio: each cell query is
/// *decisive* — a cheap tier's enclosure is kept only when it certifies
/// reach-avoid with unsafe clearance beyond the configured slack (sound:
/// any box enclosing the true reachable set contains its tightest bounding
/// box, so a cheap acceptance implies the rigorous one); every other cell
/// escalates and is answered by the rigorous authority.
fn assess_with_portfolio<C: Controller + Sync>(
    problem: &ReachAvoidProblem,
    controller: &C,
    portfolio: &PortfolioVerifier<C>,
) -> VerificationReport {
    let h = dwv_reach::hash_params(&controller.params());
    let metric = GeometricMetric::for_problem(problem);
    let margin = move |fp: &Flowpipe| {
        let d = metric.evaluate(fp);
        if d.is_reach_avoid() {
            d.d_unsafe
        } else {
            // A cheap "violates" is never evidence — always escalate.
            f64::NEG_INFINITY
        }
    };
    // Record which tier decided every query (the whole-`X₀` verification
    // plus each Algorithm-2 cell) so the report can attribute its verdicts.
    // `assess` calls the oracle single-threaded, so a `RefCell` suffices.
    let queries = std::cell::RefCell::new(Vec::new());
    let mut report = assess(problem, controller, |cell: &IntervalBox| {
        let (result, prov) = portfolio.reach_decisive_from_prov(cell, controller, h, &margin);
        queries.borrow_mut().push(prov);
        result
    });
    report.provenance = Some(ProvenanceSummary::from_queries(
        portfolio
            .tier_names()
            .into_iter()
            .map(str::to_string)
            .collect(),
        queries.into_inner(),
    ));
    report
}

/// Learns and certifies a neural-network controller with the Taylor-model
/// verifier (abstraction and architecture from the configuration).
#[must_use]
pub fn design_while_verify_nn(
    problem: ReachAvoidProblem,
    config: LearnConfig,
) -> PipelineOutcome<NnController> {
    let _s = dwv_obs::span("pipeline");
    let abstraction = config.abstraction;
    let verifier_cfg = config.verifier.clone();
    let mode = config.portfolio;
    let alg = Algorithm1::new(problem.clone(), config);
    let learning = alg.learn_nn();
    let controller = learning.controller.clone();
    if let PortfolioMode::Surrogate { .. } = mode {
        let portfolio = alg.nn_portfolio();
        let report = assess_with_portfolio(&problem, &controller, &portfolio);
        return PipelineOutcome {
            learning,
            report,
            sweep_portfolio: Some(portfolio.stats()),
        };
    }
    // Build the verifier once and re-verify each cell via `reach_from`,
    // instead of cloning a freshly-constructed verifier per cell.
    type Oracle = Box<dyn Fn(&IntervalBox) -> Result<Flowpipe, ReachError>>;
    let oracle: Oracle = match abstraction {
        AbstractionKind::Polar { order } => {
            let v = TaylorReach::new(&problem, TaylorAbstraction::with_order(order), verifier_cfg);
            Box::new(move |cell: &IntervalBox| v.reach_from(cell, &controller))
        }
        AbstractionKind::Bernstein { degree } => {
            let v = TaylorReach::new(
                &problem,
                BernsteinAbstraction::with_degree(degree),
                verifier_cfg,
            );
            Box::new(move |cell: &IntervalBox| v.reach_from(cell, &controller))
        }
    };
    PipelineOutcome {
        report: assess(&problem, &learning.controller, oracle),
        learning,
        sweep_portfolio: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetricKind;

    #[test]
    fn linear_pipeline_certifies_acc() {
        let outcome = design_while_verify_linear(
            dwv_dynamics::acc::reach_avoid_problem(),
            LearnConfig::builder()
                .metric(MetricKind::Geometric)
                .max_updates(200)
                .seed(7)
                .build(),
        )
        .expect("affine");
        assert!(outcome.is_certified(), "{}", outcome.report);
        assert!(outcome.learning.verified.is_reach_avoid());
        assert!(outcome.sweep_portfolio.is_none());
    }

    #[test]
    fn portfolio_pipeline_certifies_acc_and_agrees_with_baseline() {
        let cfg = |mode| {
            LearnConfig::builder()
                .metric(MetricKind::Geometric)
                .max_updates(200)
                .seed(7)
                .portfolio(mode)
                .build()
        };
        let baseline = design_while_verify_linear(
            dwv_dynamics::acc::reach_avoid_problem(),
            cfg(PortfolioMode::Off),
        )
        .expect("affine");
        let tiered = design_while_verify_linear(
            dwv_dynamics::acc::reach_avoid_problem(),
            cfg(PortfolioMode::Surrogate { confirm_every: 5 }),
        )
        .expect("affine");
        // The portfolio must not change what gets certified.
        assert_eq!(tiered.is_certified(), baseline.is_certified());
        assert!(tiered.is_certified(), "{}", tiered.report);
        let sweep = tiered
            .sweep_portfolio
            .expect("portfolio sweep reports stats");
        assert_eq!(sweep.calls_by_tier.len(), 3);
        let learn = tiered.learning.portfolio.expect("surrogate learning stats");
        let rigorous: u64 = *learn.calls_by_tier.last().unwrap_or(&u64::MAX)
            + *sweep.calls_by_tier.last().unwrap_or(&u64::MAX);
        let cheap: u64 = learn.calls_by_tier[..learn.calls_by_tier.len() - 1]
            .iter()
            .chain(&sweep.calls_by_tier[..sweep.calls_by_tier.len() - 1])
            .sum();
        assert!(
            cheap >= 5 * rigorous,
            "end-to-end rigorous bill should shrink ≥5x: cheap={cheap} rigorous={rigorous}"
        );
        // The baseline assesses on a single backend: no provenance. The
        // tiered sweep must attribute every query to a deciding tier.
        assert!(baseline.report.provenance.is_none());
        let prov = tiered
            .report
            .provenance
            .as_ref()
            .expect("portfolio sweep records provenance");
        assert_eq!(
            prov.tiers,
            vec!["interval", "zonotope", "linear-exact"],
            "tier order is portfolio order"
        );
        assert_eq!(prov.queries(), prov.cells.len());
        assert!(prov.queries() >= 1, "at least the whole-X0 query");
        assert_eq!(
            prov.decided_by_tier.iter().sum::<u64>(),
            prov.queries() as u64,
            "every query is decided by exactly one tier"
        );
        assert!(format!("{}", tiered.report).contains("provenance"));
    }
}
