//! The one-call porcelain: learn, certify, report.
//!
//! [`design_while_verify_linear`] and [`design_while_verify_nn`] run the
//! full pipeline of the paper — Algorithm 1 (learning with the verifier in
//! the loop), Algorithm 2 (initial-set certification) and a final
//! [`VerificationReport`] — with one function call each.

use crate::algorithm1::{Algorithm1, LearnError, LearnOutcome};
use crate::config::{AbstractionKind, LearnConfig};
use crate::report::{assess, VerificationReport};
use dwv_dynamics::{LinearController, NnController, ReachAvoidProblem};
use dwv_interval::IntervalBox;
use dwv_reach::{
    BernsteinAbstraction, Flowpipe, LinearReach, ReachError, TaylorAbstraction, TaylorReach,
};

/// The outcome of a full design-while-verify pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome<C> {
    /// The learning outcome (controller, CI, trace).
    pub learning: LearnOutcome<C>,
    /// The final assessment (verdict, certified `X_I`, rates,
    /// counterexample).
    pub report: VerificationReport,
}

impl<C> PipelineOutcome<C> {
    /// Whether the run produced a certified controller.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.report.is_certified()
    }
}

/// Learns and certifies a linear controller for an affine problem.
///
/// # Errors
///
/// [`LearnError::Unsupported`] when the dynamics are not affine.
///
/// # Example
///
/// ```no_run
/// use dwv_core::{design_while_verify_linear, LearnConfig};
/// use dwv_dynamics::acc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = design_while_verify_linear(
///     acc::reach_avoid_problem(),
///     LearnConfig::builder().seed(7).max_updates(200).build(),
/// )?;
/// println!("{}", outcome.report);
/// assert!(outcome.is_certified());
/// # Ok(())
/// # }
/// ```
pub fn design_while_verify_linear(
    problem: ReachAvoidProblem,
    config: LearnConfig,
) -> Result<PipelineOutcome<LinearController>, LearnError> {
    let _s = dwv_obs::span("pipeline");
    let learning = Algorithm1::new(problem.clone(), config).learn_linear()?;
    let (a, b, c) = problem
        .dynamics
        .linear_parts()
        .expect("learn_linear succeeded, so the dynamics are affine"); // dwv-lint: allow(panic-freedom) -- learn_linear succeeded, so linear_parts is Some
    let controller = learning.controller.clone();
    let oracle_controller = controller.clone();
    let delta = problem.delta;
    let steps = problem.horizon_steps;
    let report = assess(&problem, &controller, move |cell: &IntervalBox| {
        LinearReach::new(&a, &b, &c, cell.clone(), delta, steps).reach(&oracle_controller)
    });
    Ok(PipelineOutcome { learning, report })
}

/// Learns and certifies a neural-network controller with the Taylor-model
/// verifier (abstraction and architecture from the configuration).
#[must_use]
pub fn design_while_verify_nn(
    problem: ReachAvoidProblem,
    config: LearnConfig,
) -> PipelineOutcome<NnController> {
    let _s = dwv_obs::span("pipeline");
    let abstraction = config.abstraction;
    let verifier_cfg = config.verifier.clone();
    let learning = Algorithm1::new(problem.clone(), config).learn_nn();
    let controller = learning.controller.clone();
    // Build the verifier once and re-verify each cell via `reach_from`,
    // instead of cloning a freshly-constructed verifier per cell.
    type Oracle = Box<dyn Fn(&IntervalBox) -> Result<Flowpipe, ReachError>>;
    let oracle: Oracle = match abstraction {
        AbstractionKind::Polar { order } => {
            let v = TaylorReach::new(&problem, TaylorAbstraction::with_order(order), verifier_cfg);
            Box::new(move |cell: &IntervalBox| v.reach_from(cell, &controller))
        }
        AbstractionKind::Bernstein { degree } => {
            let v = TaylorReach::new(
                &problem,
                BernsteinAbstraction::with_degree(degree),
                verifier_cfg,
            );
            Box::new(move |cell: &IntervalBox| v.reach_from(cell, &controller))
        }
    };
    PipelineOutcome {
        report: assess(&problem, &learning.controller, oracle),
        learning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetricKind;

    #[test]
    fn linear_pipeline_certifies_acc() {
        let outcome = design_while_verify_linear(
            dwv_dynamics::acc::reach_avoid_problem(),
            LearnConfig::builder()
                .metric(MetricKind::Geometric)
                .max_updates(200)
                .seed(7)
                .build(),
        )
        .expect("affine");
        assert!(outcome.is_certified(), "{}", outcome.report);
        assert!(outcome.learning.verified.is_reach_avoid());
    }
}
