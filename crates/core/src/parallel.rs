//! A small scoped worker pool for fanning out independent verifier calls.
//!
//! The design-while-verify loop spends nearly all of its time in
//! embarrassingly parallel batches of reachability computations: the
//! `2·dim` gradient probes of Algorithm 1, the per-cell sweeps of
//! Algorithm 2, and benchmark-table sweeps. This module provides the one
//! primitive they need — [`WorkerPool::map`], a deterministic parallel map
//! over a slice — built on `std::thread::scope` only (the build environment
//! has no access to external crates such as `rayon`).
//!
//! # Determinism
//!
//! Results are merged **by item index, not by completion order**: the
//! returned `Vec` is element-for-element identical to
//! `items.iter().map(f).collect()`. Workers claim items through a shared
//! atomic counter, so scheduling affects only *which thread* computes an
//! item, never the output. Callers must still ensure `f` itself is a pure
//! function of its argument.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// A fixed-width scoped worker pool.
///
/// The pool is just a thread-count policy: threads are spawned per
/// [`map`](WorkerPool::map) call inside a `std::thread::scope`, so borrowed
/// data can be shared with workers without `'static` bounds, and no threads
/// linger between calls.
///
/// # Example
///
/// ```
/// use dwv_core::parallel::WorkerPool;
///
/// let pool = WorkerPool::with_default_threads();
/// let squares = pool.map(&[1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool running `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    #[must_use]
    pub fn with_default_threads() -> Self {
        Self::new(thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The number of worker threads this pool uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results in item
    /// order (see the module docs on determinism).
    ///
    /// Falls back to a plain serial map when the pool has one thread or the
    /// batch has at most one item — so a `WorkerPool::new(1)` is an exact
    /// drop-in for serial execution.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the first panicking worker's payload).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let _s = dwv_obs::span("pool.map");
        if dwv_obs::enabled() {
            dwv_obs::counter("pool.batches").inc();
            dwv_obs::counter("pool.items").add(items.len() as u64);
        }
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
        thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            let timed = dwv_obs::span("pool.item");
                            out.push((i, f(item)));
                            drop(timed);
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => indexed.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        indexed.sort_unstable_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_under_uneven_load() {
        // Skewed per-item cost exercises out-of-order completion.
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..32).collect();
        let slow = |x: &u64| {
            if x.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        };
        assert_eq!(pool.map(&items, slow), WorkerPool::new(1).map(&items, slow));
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(&[3, 1, 2], |x| x + 1), vec![4, 2, 3]);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map::<i32, i32, _>(&[], |x| *x), Vec::<i32>::new());
        assert_eq!(pool.map(&[5], |x| x * 10), vec![50]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn borrows_local_data() {
        let data = vec![String::from("a"), String::from("bb")];
        let pool = WorkerPool::new(2);
        let lens = pool.map(&data, String::len);
        assert_eq!(lens, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..8).collect();
        pool.map(&items, |x| {
            assert!(*x != 5, "boom");
            *x
        });
    }
}
