//! A small scoped worker pool for fanning out independent verifier calls.
//!
//! The design-while-verify loop spends nearly all of its time in
//! embarrassingly parallel batches of reachability computations: the
//! `2·dim` gradient probes of Algorithm 1, the per-cell sweeps of
//! Algorithm 2, and benchmark-table sweeps. This module provides the one
//! primitive they need — [`WorkerPool::map`], a deterministic parallel map
//! over a slice — built on `std::thread::scope` only (the build environment
//! has no access to external crates such as `rayon`).
//!
//! # Determinism
//!
//! Results are merged **by item index, not by completion order**: the
//! returned `Vec` is element-for-element identical to
//! `items.iter().map(f).collect()`. Workers claim contiguous chunks through
//! a shared atomic cursor (guided self-scheduling — see
//! [`WorkerPool::map`]), and chunks reduce in ascending start order, so
//! scheduling affects only *which thread* computes an item, never the
//! output: the map is bit-identical to serial at any thread count. Callers
//! must still ensure `f` itself is a pure function of its argument.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// A cooperative cancellation flag shared between a job's owner and the
/// workers running it.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag: the serving layer hands one token to a running job, keeps a clone,
/// and flips it on client cancel, deadline expiry, or forced drain. Workers
/// poll the flag at chunk-claim boundaries (see
/// [`WorkerPool::map_cancellable`]) — cancellation is a request to stop
/// *soon*, not a preemption.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never un-done.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on this token (or any clone
    /// of it).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A fixed-width scoped worker pool.
///
/// The pool is just a thread-count policy: threads are spawned per
/// [`map`](WorkerPool::map) call inside a `std::thread::scope`, so borrowed
/// data can be shared with workers without `'static` bounds, and no threads
/// linger between calls.
///
/// # Example
///
/// ```
/// use dwv_core::parallel::WorkerPool;
///
/// let pool = WorkerPool::with_default_threads();
/// let squares = pool.map(&[1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
    force_parallel: bool,
}

/// Batches smaller than this never leave the calling thread: per-call
/// thread spawns cost tens of microseconds each, which dominates tiny
/// fan-outs regardless of per-item cost.
const MIN_PARALLEL_ITEMS: usize = 4;

/// The machine's available parallelism, probed once.
fn host_cpus() -> usize {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CPUS.get_or_init(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

impl WorkerPool {
    /// A pool running `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            force_parallel: false,
        }
    }

    /// Disables the degenerate-fan-out gate: `map` spawns workers whenever
    /// the pool has more than one thread and the batch more than one item,
    /// even on a single-CPU host or for tiny batches.
    ///
    /// For tests and diagnostics of the parallel machinery itself —
    /// production callers should let the gate keep fan-outs that cannot
    /// win (no spare CPUs, or spawn cost exceeding the work) on the
    /// calling thread.
    #[must_use]
    pub fn force_parallel(mut self) -> Self {
        self.force_parallel = true;
        self
    }

    /// Whether [`map`](WorkerPool::map) over a batch of `n` items would
    /// fan out to worker threads (`false`: the batch runs serially on the
    /// caller — same results either way, see the module docs).
    #[must_use]
    pub fn would_fan_out(&self, n: usize) -> bool {
        let workers = self.threads.min(n);
        workers > 1 && (self.force_parallel || (n >= MIN_PARALLEL_ITEMS && host_cpus() > 1))
    }

    /// A pool sized to the machine's available parallelism.
    #[must_use]
    pub fn with_default_threads() -> Self {
        Self::new(thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The number of worker threads this pool uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results in item
    /// order (see the module docs on determinism).
    ///
    /// Falls back to a plain serial map whenever fanning out cannot win:
    /// the pool has one thread, the batch has at most one item, the host
    /// has a single CPU, or the batch is smaller than the spawn-cost
    /// threshold (see [`WorkerPool::would_fan_out`]). The fallback changes
    /// timing only — results are identical either way.
    ///
    /// # Scheduling
    ///
    /// Workers claim *chunks* through a shared atomic cursor using guided
    /// self-scheduling: each claim takes roughly `remaining / (2·workers)`
    /// items (never fewer than one), so early chunks are large (amortizing
    /// the claim and keeping each worker on a contiguous cache-friendly run)
    /// and chunks shrink toward the tail (bounding finish-time imbalance to
    /// one small chunk). Chunk boundaries affect only which thread computes
    /// which items; results are written back under the chunk's start index
    /// and reduced in ascending start order — a fixed reduction order, so
    /// the output is element-for-element (bit-for-bit) what the serial map
    /// produces, at any thread count.
    ///
    /// When observability is on, each call records the pool width in the
    /// `pool.threads` gauge and the number of chunks claimed beyond each
    /// worker's first (work that migrated to whichever thread drained its
    /// share first) in the `pool.steal_count` counter.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the first panicking worker's payload).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let _s = dwv_obs::span("pool.map");
        let obs = dwv_obs::enabled();
        if obs {
            dwv_obs::counter("pool.batches").inc();
            dwv_obs::counter("pool.items").add(items.len() as u64);
            dwv_obs::gauge("pool.threads").set(self.threads as f64);
        }
        if !self.would_fan_out(items.len()) {
            // The serial fallback keeps the per-item span contract: the
            // `pool.item` histogram sees every item exactly once on every
            // host, whether or not the batch fanned out.
            return items
                .iter()
                .map(|item| {
                    let _per_item = dwv_obs::span("pool.item");
                    f(item)
                })
                .collect();
        }
        let workers = self.threads.min(items.len());
        let n = items.len();
        let next = AtomicUsize::new(0);
        let claims = AtomicUsize::new(0);
        let mut chunks: Vec<(usize, Vec<R>)> = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            // Guided claim: take a share of what remains.
                            let (start, take) = {
                                let mut cur = next.load(Ordering::Relaxed);
                                loop {
                                    if cur >= n {
                                        break (n, 0);
                                    }
                                    let take = ((n - cur) / (2 * workers)).max(1);
                                    match next.compare_exchange_weak(
                                        cur,
                                        cur + take,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    ) {
                                        Ok(_) => break (cur, take),
                                        Err(seen) => cur = seen,
                                    }
                                }
                            };
                            if take == 0 {
                                break;
                            }
                            claims.fetch_add(1, Ordering::Relaxed);
                            let timed = dwv_obs::span("pool.chunk");
                            let chunk = &items[start..start + take]; // dwv-lint: allow(panic-freedom#index) -- the CAS claim bounds start + take ≤ items.len()
                            let part: Vec<R> = chunk
                                .iter()
                                .map(|item| {
                                    let per_item = dwv_obs::span("pool.item");
                                    let r = f(item);
                                    drop(per_item);
                                    r
                                })
                                .collect();
                            drop(timed);
                            out.push((start, part));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => chunks.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if obs {
            let extra = claims.load(Ordering::Relaxed).saturating_sub(workers);
            dwv_obs::counter("pool.steal_count").add(extra as u64);
        }
        // Fixed reduction order: ascending chunk start, independent of
        // completion order or thread assignment.
        chunks.sort_unstable_by_key(|(start, _)| *start);
        let mut merged = Vec::with_capacity(n);
        for (_, part) in chunks {
            merged.extend(part);
        }
        debug_assert_eq!(merged.len(), n);
        merged
    }

    /// [`map`](WorkerPool::map) with cooperative cancellation.
    ///
    /// Returns `Some(results)` — bit-identical to the plain `map`, hence to
    /// the serial map, at any thread count — if and only if every item
    /// completed before `token` was cancelled. Returns `None` as soon as a
    /// cancellation request is observed with work still outstanding; partial
    /// results are discarded, never exposed.
    ///
    /// Workers poll the token at chunk-claim boundaries (serial fallback:
    /// per item), so a cancel takes effect after at most one in-flight chunk
    /// finishes — cancellation latency is bounded by the largest guided
    /// chunk, roughly `n / (2·workers)` items. A token cancelled *after* the
    /// last item completes still yields `Some`: completion wins the race.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the first panicking worker's payload).
    pub fn map_cancellable<T, R, F>(&self, items: &[T], f: F, token: &CancelToken) -> Option<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let _s = dwv_obs::span("pool.map_cancellable");
        let obs = dwv_obs::enabled();
        if obs {
            dwv_obs::counter("pool.batches").inc();
            dwv_obs::counter("pool.items").add(items.len() as u64);
            dwv_obs::gauge("pool.threads").set(self.threads as f64);
        }
        if !self.would_fan_out(items.len()) {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                if token.is_cancelled() {
                    if obs {
                        dwv_obs::counter("pool.cancelled").inc();
                    }
                    return None;
                }
                let _per_item = dwv_obs::span("pool.item");
                out.push(f(item));
            }
            return Some(out);
        }
        let workers = self.threads.min(items.len());
        let n = items.len();
        let next = AtomicUsize::new(0);
        let mut chunks: Vec<(usize, Vec<R>)> = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            // Poll at the claim boundary: stop taking new
                            // chunks once cancellation is requested.
                            if token.is_cancelled() {
                                break;
                            }
                            let (start, take) = {
                                let mut cur = next.load(Ordering::Relaxed);
                                loop {
                                    if cur >= n {
                                        break (n, 0);
                                    }
                                    let take = ((n - cur) / (2 * workers)).max(1);
                                    match next.compare_exchange_weak(
                                        cur,
                                        cur + take,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    ) {
                                        Ok(_) => break (cur, take),
                                        Err(seen) => cur = seen,
                                    }
                                }
                            };
                            if take == 0 {
                                break;
                            }
                            let timed = dwv_obs::span("pool.chunk");
                            let chunk = &items[start..start + take]; // dwv-lint: allow(panic-freedom#index) -- the CAS claim bounds start + take ≤ items.len()
                            let part: Vec<R> = chunk
                                .iter()
                                .map(|item| {
                                    let per_item = dwv_obs::span("pool.item");
                                    let r = f(item);
                                    drop(per_item);
                                    r
                                })
                                .collect();
                            drop(timed);
                            out.push((start, part));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => chunks.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let done: usize = chunks.iter().map(|(_, part)| part.len()).sum();
        if done < n {
            if obs {
                dwv_obs::counter("pool.cancelled").inc();
            }
            return None;
        }
        // Same fixed reduction order as `map`: ascending chunk start.
        chunks.sort_unstable_by_key(|(start, _)| *start);
        let mut merged = Vec::with_capacity(n);
        for (_, part) in chunks {
            merged.extend(part);
        }
        Some(merged)
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        // force_parallel: the machinery must be exercised even on a
        // single-CPU test host, where the gate would go serial.
        let pool = WorkerPool::new(4).force_parallel();
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_under_uneven_load() {
        // Skewed per-item cost exercises out-of-order completion.
        let pool = WorkerPool::new(4).force_parallel();
        let items: Vec<u64> = (0..32).collect();
        let slow = |x: &u64| {
            if x.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        };
        assert_eq!(pool.map(&items, slow), WorkerPool::new(1).map(&items, slow));
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(&[3, 1, 2], |x| x + 1), vec![4, 2, 3]);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map::<i32, i32, _>(&[], |x| *x), Vec::<i32>::new());
        assert_eq!(pool.map(&[5], |x| x * 10), vec![50]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn borrows_local_data() {
        let data = vec![String::from("a"), String::from("bb")];
        let pool = WorkerPool::new(2).force_parallel();
        let lens = pool.map(&data, String::len);
        assert_eq!(lens, vec![1, 2]);
    }

    #[test]
    fn degenerate_fan_outs_stay_serial() {
        // Tiny batches never pay thread spawns…
        let pool = WorkerPool::new(8);
        assert!(!pool.would_fan_out(MIN_PARALLEL_ITEMS - 1));
        // …and a single-CPU host never fans out at all (on a multi-CPU
        // host the same batch does).
        if host_cpus() == 1 {
            assert!(!pool.would_fan_out(100));
        } else {
            assert!(pool.would_fan_out(100));
        }
        // Serial fallback still computes the right thing.
        assert_eq!(pool.map(&[1, 2, 3], |x| x * 3), vec![3, 6, 9]);
    }

    #[test]
    fn force_parallel_overrides_the_gate() {
        let pool = WorkerPool::new(4).force_parallel();
        assert!(pool.would_fan_out(2));
        assert!(!pool.would_fan_out(1), "one item can never fan out");
        assert!(!WorkerPool::new(1).force_parallel().would_fan_out(100));
    }

    #[test]
    fn float_results_bit_identical_across_thread_counts() {
        // The acceptance bar for the verifier sweeps: parallel maps over
        // floating-point work must be bit-for-bit the serial map at every
        // pool width.
        let items: Vec<f64> = (0..257).map(|i| f64::from(i) * 0.37 - 40.0).collect();
        let work = |x: &f64| {
            let mut acc = *x;
            for k in 1..50u32 {
                acc = acc.mul_add(1.000_1, f64::from(k).sin() * 1e-3);
            }
            acc
        };
        let serial: Vec<u64> = WorkerPool::new(1)
            .map(&items, work)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2usize, 3, 4, 8, 16] {
            let par: Vec<u64> = WorkerPool::new(threads)
                .force_parallel()
                .map(&items, work)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, serial, "{threads}-thread map diverged from serial");
        }
    }

    #[test]
    fn guided_chunks_cover_all_sizes() {
        // Odd batch sizes around chunking boundaries: every item exactly once,
        // in order.
        let pool = WorkerPool::new(3).force_parallel();
        for n in [2usize, 3, 5, 7, 12, 31, 64, 101] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(pool.map(&items, |x| *x), items, "batch of {n}");
        }
    }

    #[test]
    fn map_cancellable_matches_map_when_uncancelled() {
        let token = CancelToken::new();
        let items: Vec<f64> = (0..97).map(|i| f64::from(i) * 0.31 - 15.0).collect();
        let work = |x: &f64| (x * 1.000_3).sin().mul_add(2.0, *x);
        let serial: Vec<u64> = WorkerPool::new(1)
            .map(&items, work)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let got = WorkerPool::new(threads)
                .force_parallel()
                .map_cancellable(&items, work, &token)
                .expect("uncancelled map must complete");
            let bits: Vec<u64> = got.into_iter().map(f64::to_bits).collect();
            assert_eq!(bits, serial, "{threads}-thread cancellable map diverged");
        }
    }

    #[test]
    fn cancelled_before_start_yields_none() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let items: Vec<usize> = (0..64).collect();
        // Both the serial fallback and the fan-out path must refuse.
        assert!(WorkerPool::new(1)
            .map_cancellable(&items, |x| *x, &token)
            .is_none());
        assert!(WorkerPool::new(4)
            .force_parallel()
            .map_cancellable(&items, |x| *x, &token)
            .is_none());
    }

    #[test]
    fn cancel_mid_flight_discards_partial_results() {
        use std::sync::atomic::AtomicUsize;
        let token = CancelToken::new();
        let seen = AtomicUsize::new(0);
        let items: Vec<usize> = (0..512).collect();
        let tok = token.clone();
        let out = WorkerPool::new(4).force_parallel().map_cancellable(
            &items,
            |x| {
                // A clone of the token cancels the whole batch from inside.
                if seen.fetch_add(1, Ordering::Relaxed) == 8 {
                    tok.cancel();
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
                *x
            },
            &token,
        );
        assert!(out.is_none(), "cancelled batch must not expose results");
        assert!(
            seen.load(Ordering::Relaxed) < items.len(),
            "workers must stop claiming chunks after cancellation"
        );
    }

    #[test]
    fn cancel_after_completion_still_returns_some() {
        let token = CancelToken::new();
        let items: Vec<usize> = (0..16).collect();
        let out = WorkerPool::new(2)
            .force_parallel()
            .map_cancellable(&items, |x| x * 2, &token);
        token.cancel();
        assert_eq!(out, Some(items.iter().map(|x| x * 2).collect()));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2).force_parallel();
        let items: Vec<usize> = (0..8).collect();
        pool.map(&items, |x| {
            assert!(*x != 5, "boom");
            *x
        });
    }
}
