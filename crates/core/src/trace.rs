//! Per-iteration learning traces (the data behind Figures 4 and 5).

use std::fmt;
use std::time::Duration;

/// One iteration of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// `d^u` (geometric) or `W(r, u)` (Wasserstein) at the current `θ`.
    pub unsafe_metric: f64,
    /// `d^g` (geometric) or `W(r, g)` (Wasserstein) at the current `θ`.
    pub goal_metric: f64,
    /// Whether the current flowpipe is verified reach-avoid.
    pub reach_avoid: bool,
    /// Wall-clock time of the iteration, dominated by the verifier calls
    /// (the quantity Table 2 averages).
    pub elapsed: Duration,
    /// Number of verifier invocations made this iteration.
    pub verifier_calls: usize,
    /// Verifier invocations answered by the [`dwv_reach::ReachCache`] this
    /// iteration (0 when no cache is attached).
    pub cache_hits: usize,
    /// Width of the widest component of the final reach-set enclosure of
    /// this iteration's flowpipe ([`dwv_reach::Flowpipe::final_width`]) —
    /// the per-iteration view of the tightness the verifier maintains while
    /// the controller changes. 0 when the flowpipe was unavailable.
    pub remainder_width: f64,
    /// Per-tier verifier calls made this iteration when Algorithm 1 ran on
    /// the tiered portfolio (cheapest tier first, rigorous last — the order
    /// of [`dwv_reach::PortfolioStats::calls_by_tier`]). Empty in
    /// single-backend runs, and the CSV export then omits the columns.
    pub tier_calls: Vec<u64>,
}

/// The full learning trace.
///
/// # Example
///
/// ```
/// use dwv_core::LearningTrace;
///
/// let mut trace = LearningTrace::new();
/// assert!(trace.is_empty());
/// # let _ = &mut trace;
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LearningTrace {
    records: Vec<IterationRecord>,
}

impl LearningTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// The records in iteration order.
    #[must_use]
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of recorded iterations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no iterations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean wall-clock time per iteration (Table 2's statistic).
    #[must_use]
    pub fn mean_iteration_time(&self) -> Duration {
        if self.records.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.records.iter().map(|r| r.elapsed).sum();
        total / self.records.len() as u32
    }

    /// Total verifier invocations across all iterations.
    #[must_use]
    pub fn total_verifier_calls(&self) -> usize {
        self.records.iter().map(|r| r.verifier_calls).sum()
    }

    /// Serializes the trace as CSV — the series plotted in Figures 4 and 5
    /// plus the observability columns (cache hits, enclosure width).
    ///
    /// When any record carries per-tier portfolio accounting
    /// ([`IterationRecord::tier_calls`]), one `tier{i}_calls` column per
    /// tier is appended (records with fewer tiers pad with zeros);
    /// single-backend traces keep the historical column set byte-for-byte.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let n_tiers = self
            .records
            .iter()
            .map(|r| r.tier_calls.len())
            .max()
            .unwrap_or(0);
        let mut out = String::from(
            "iteration,unsafe_metric,goal_metric,reach_avoid,millis,verifier_calls,cache_hits,remainder_width",
        );
        for i in 0..n_tiers {
            out.push_str(&format!(",tier{i}_calls"));
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}",
                r.iteration,
                r.unsafe_metric,
                r.goal_metric,
                r.reach_avoid,
                r.elapsed.as_millis(),
                r.verifier_calls,
                r.cache_hits,
                r.remainder_width,
            ));
            for i in 0..n_tiers {
                out.push_str(&format!(",{}", r.tier_calls.get(i).copied().unwrap_or(0)));
            }
            out.push('\n');
        }
        out
    }

    /// Writes [`LearningTrace::to_csv`] to a file — examples and benches
    /// share this single CSV export path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn save_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

impl fmt::Display for LearningTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LearningTrace ({} iterations)", self.records.len())?;
        for r in &self.records {
            writeln!(
                f,
                "  it {:>3}: unsafe={:+.4e} goal={:+.4e} reach_avoid={} ({} ms)",
                r.iteration,
                r.unsafe_metric,
                r.goal_metric,
                r.reach_avoid,
                r.elapsed.as_millis()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: usize, ms: u64) -> IterationRecord {
        IterationRecord {
            iteration: i,
            unsafe_metric: i as f64,
            goal_metric: -(i as f64),
            reach_avoid: i == 2,
            elapsed: Duration::from_millis(ms),
            verifier_calls: 2,
            cache_hits: 1,
            remainder_width: 0.25,
            tier_calls: Vec::new(),
        }
    }

    #[test]
    fn push_and_stats() {
        let mut t = LearningTrace::new();
        t.push(rec(0, 10));
        t.push(rec(1, 20));
        t.push(rec(2, 30));
        assert_eq!(t.len(), 3);
        assert_eq!(t.mean_iteration_time(), Duration::from_millis(20));
        assert_eq!(t.total_verifier_calls(), 6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = LearningTrace::new();
        t.push(rec(0, 5));
        let csv = t.to_csv();
        assert!(csv.starts_with("iteration,"));
        assert_eq!(csv.lines().count(), 2);
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(
            row.ends_with(",1,0.25"),
            "cache_hits/remainder_width: {row}"
        );
    }

    #[test]
    fn csv_adds_tier_columns_only_for_portfolio_traces() {
        let mut t = LearningTrace::new();
        let mut a = rec(0, 5);
        a.tier_calls = vec![3, 1, 0];
        let mut b = rec(1, 5);
        b.tier_calls = vec![2, 0]; // shorter: pads with zeros
        t.push(a);
        t.push(b);
        let csv = t.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(
            header.ends_with(",tier0_calls,tier1_calls,tier2_calls"),
            "{header}"
        );
        assert!(csv.lines().nth(1).unwrap().ends_with(",3,1,0"), "{csv}");
        assert!(csv.lines().nth(2).unwrap().ends_with(",2,0,0"), "{csv}");
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), header.split(',').count());
        }
    }

    #[test]
    fn save_csv_round_trips() {
        let mut t = LearningTrace::new();
        t.push(rec(0, 5));
        t.push(rec(1, 6));
        let path = std::env::temp_dir().join("dwv_trace_save_csv_test.csv");
        t.save_csv(&path).expect("writes");
        let read = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(read, t.to_csv());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_trace_zero_mean() {
        let t = LearningTrace::new();
        assert_eq!(t.mean_iteration_time(), Duration::ZERO);
        assert!(t.is_empty());
    }
}
