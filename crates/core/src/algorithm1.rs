//! Algorithm 1: verification-in-the-loop control learning.
//!
//! The loop follows the paper: at each iteration the verifier computes the
//! reachable set for perturbed parameters `θ ± p`, the chosen metric
//! (geometric or Wasserstein, §3.2) turns the flowpipes into scalars, the
//! difference quotient of Eq. (5) approximates the gradient, and `θ` is
//! updated until the flowpipe verifies reach-avoid or the iteration budget
//! is exhausted.
//!
//! Three engineering refinements make the difference method dependable on
//! the benchmarks (all purely about the *learning signal* — the reach-avoid
//! stop criterion is exactly the paper's):
//!
//! 1. the two metric gradients are combined *before* differencing
//!    (`α`/`β`-weighted scalar objective) — identical to Eq. (5) by
//!    linearity of central differences, at half the verifier calls;
//! 2. updates use a backtracking trust region: a candidate step is kept only
//!    if the objective improves, otherwise the radius shrinks — the
//!    difference method has no line-search signal of its own, and without
//!    this the iteration limit-cycles across the narrow feasible band that
//!    hugs the unsafe boundary;
//! 3. when the radius collapses (a local optimum without reach-avoid), `θ`
//!    is re-drawn (best of a few random candidates) — the paper's Algorithm
//!    1 is explicitly incomplete, and restarts are the standard remedy;
//!    restart draws count toward the convergence-iteration (CI) budget.

use crate::config::{AbstractionKind, GradientEstimator, LearnConfig, MetricKind, PortfolioMode};
use crate::trace::{IterationRecord, LearningTrace};
use crate::verdict::{judge, Verdict};
use dwv_dynamics::{Controller, LinearController, NnController, ReachAvoidProblem};
use dwv_metrics::{GeometricMetric, WassersteinMetric};
use dwv_nn::{Activation, Network};
use dwv_reach::{
    BernsteinAbstraction, Flowpipe, IntervalReach, LinearReach, PortfolioStats, PortfolioVerifier,
    ReachError, TaylorAbstraction, TaylorReach, ZonotopeReach,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Instant;

/// Errors configuring or running the learner.
#[derive(Debug)]
pub enum LearnError {
    /// The problem/verifier pairing is unsupported (e.g. `learn_linear` on a
    /// non-affine system).
    Unsupported(ReachError),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::Unsupported(e) => write!(f, "cannot set up learner: {e}"),
        }
    }
}

impl std::error::Error for LearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LearnError::Unsupported(e) => Some(e),
        }
    }
}

/// The result of a learning run.
#[derive(Debug, Clone)]
pub struct LearnOutcome<C> {
    /// The learned controller `κ_θ`.
    pub controller: C,
    /// The verified result (Table 1's last column).
    pub verified: Verdict,
    /// Convergence iterations (CI): update iterations consumed before the
    /// flowpipe first verified reach-avoid (equals the configured maximum
    /// when learning did not converge).
    pub iterations: usize,
    /// Per-iteration metric values and timings (Figures 4, 5; Table 2).
    pub trace: LearningTrace,
    /// The final flowpipe, when the last verification succeeded.
    pub flowpipe: Option<Flowpipe>,
    /// Per-tier verifier-call accounting when the run used the tiered
    /// portfolio ([`crate::PortfolioMode::Surrogate`]); `None` in the
    /// single-backend baseline.
    pub portfolio: Option<PortfolioStats>,
}

/// One evaluated candidate: the raw metric pair (for the trace and the stop
/// criterion) plus the shaped scalar objective the optimizer climbs.
#[derive(Debug, Clone, Copy)]
struct Evaluation {
    unsafe_metric: f64,
    goal_metric: f64,
    reach_avoid: bool,
    objective: f64,
}

/// Penalty offset for candidates violating the safety constraint or whose
/// flowpipe diverged.
const FAIL_PENALTY: f64 = 1e3;

/// Algorithm 1 of the paper: approximated gradient descent over controller
/// parameters with the verifier in the loop.
///
/// # Example
///
/// ```no_run
/// use dwv_core::{Algorithm1, LearnConfig, MetricKind};
/// use dwv_dynamics::acc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = Algorithm1::new(
///     acc::reach_avoid_problem(),
///     LearnConfig::builder().metric(MetricKind::Geometric).build(),
/// )
/// .learn_linear()?;
/// println!("CI = {}, verdict = {}", outcome.iterations, outcome.verified);
/// # Ok(())
/// # }
/// ```
pub struct Algorithm1 {
    problem: ReachAvoidProblem,
    config: LearnConfig,
    goal_anchor: Vec<f64>,
    safety_cap: f64,
    pool: Option<crate::parallel::WorkerPool>,
    cache: Option<std::sync::Arc<dwv_reach::ReachCache>>,
}

impl Algorithm1 {
    /// Creates a learner for a problem.
    #[must_use]
    pub fn new(problem: ReachAvoidProblem, config: LearnConfig) -> Self {
        let goal_anchor = problem.goal_region.anchor(&problem.universe);
        let diag = problem
            .universe
            .intervals()
            .iter()
            .map(|iv| iv.width() * iv.width())
            .sum::<f64>()
            .sqrt();
        let safety_cap = config.safety_cap.unwrap_or(0.05 * diag);
        Self {
            problem,
            config,
            goal_anchor,
            safety_cap,
            pool: None,
            cache: None,
        }
    }

    /// Fans the independent gradient-probe verifier calls of each iteration
    /// out on a worker pool.
    ///
    /// The learning trajectory is **bit-identical** to the serial learner:
    /// probe objectives are merged back in probe order and combined with the
    /// exact same floating-point operation order, so only wall-clock time
    /// changes.
    #[must_use]
    pub fn with_pool(mut self, pool: crate::parallel::WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Memoizes verifier results in `cache`, keyed by the bit-exact hash of
    /// the controller parameters and of the problem's initial set.
    ///
    /// Every iteration of the learning loop re-verifies parameters the
    /// previous iteration already verified (the restored `θ` after a
    /// rejected step, or the accepted candidate), and the final judgement
    /// verifies the last controller once more — those repeats are answered
    /// from memory. The learning trajectory, trace, and verifier-call counts
    /// are unchanged; only wall-clock time drops.
    #[must_use]
    pub fn with_cache(mut self, cache: std::sync::Arc<dwv_reach::ReachCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The problem being solved.
    #[must_use]
    pub fn problem(&self) -> &ReachAvoidProblem {
        &self.problem
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &LearnConfig {
        &self.config
    }

    /// Learns a linear controller with the exact linear verifier (the ACC
    /// experiment), starting from a random `θ`.
    ///
    /// With [`PortfolioMode::Surrogate`] the exploratory queries run on the
    /// interval → zonotope tiers and the exact backend is reserved for
    /// confirmations and the final acceptance (see
    /// [`Self::linear_portfolio`]).
    ///
    /// # Errors
    ///
    /// [`LearnError::Unsupported`] when the dynamics are not affine.
    pub fn learn_linear(&self) -> Result<LearnOutcome<LinearController>, LearnError> {
        self.learn_linear_impl(None)
    }

    /// Learns a linear controller starting from an explicit initialization.
    ///
    /// # Errors
    ///
    /// [`LearnError::Unsupported`] when the dynamics are not affine.
    pub fn learn_linear_from(
        &self,
        init: LinearController,
    ) -> Result<LearnOutcome<LinearController>, LearnError> {
        self.learn_linear_impl(Some(init))
    }

    fn learn_linear_impl(
        &self,
        init: Option<LinearController>,
    ) -> Result<LearnOutcome<LinearController>, LearnError> {
        let n = self.problem.n_state();
        let m = self.problem.n_input();
        let mut fresh = |rng: &mut StdRng| {
            LinearController::new(n, m, (0..n * m).map(|_| rng.gen_range(-2.0..2.0)).collect())
        };
        match self.config.portfolio {
            PortfolioMode::Off => {
                let verifier =
                    LinearReach::for_problem(&self.problem).map_err(LearnError::Unsupported)?;
                Ok(self.learn_with_restarts(
                    init,
                    &|c: &LinearController| verifier.reach(c),
                    &mut fresh,
                ))
            }
            PortfolioMode::Surrogate { confirm_every } => {
                let portfolio = self.linear_portfolio()?;
                Ok(self.learn_surrogate(init, &portfolio, confirm_every, &mut fresh))
            }
        }
    }

    /// Builds the tiered verifier portfolio for affine problems: interval
    /// fast-path, zonotope escalation, exact linear recursion as the
    /// rigorous authority.
    ///
    /// # Errors
    ///
    /// [`LearnError::Unsupported`] when the dynamics are not affine.
    pub fn linear_portfolio(&self) -> Result<PortfolioVerifier<LinearController>, LearnError> {
        let rigorous = LinearReach::for_problem(&self.problem).map_err(LearnError::Unsupported)?;
        let zonotope =
            ZonotopeReach::for_problem(&self.problem).map_err(LearnError::Unsupported)?;
        Ok(
            PortfolioVerifier::new(Box::new(rigorous), self.config.portfolio_slack)
                .with_tier(Box::new(IntervalReach::for_problem(&self.problem)))
                .with_tier(Box::new(zonotope)),
        )
    }

    /// Learns a neural-network controller (hidden sizes, output scale and
    /// abstraction from the configuration; ReLU hidden / Tanh output per the
    /// paper), starting from a random initialization.
    #[must_use]
    pub fn learn_nn(&self) -> LearnOutcome<NnController> {
        self.learn_nn_impl(None)
    }

    /// Learns a neural-network controller from an explicit initialization.
    #[must_use]
    pub fn learn_nn_from(&self, init: NnController) -> LearnOutcome<NnController> {
        self.learn_nn_impl(Some(init))
    }

    fn learn_nn_impl(&self, init: Option<NnController>) -> LearnOutcome<NnController> {
        let mut sizes = vec![self.problem.n_state()];
        sizes.extend_from_slice(&self.config.nn_hidden);
        sizes.push(self.problem.n_input());
        let scale = self.config.nn_output_scale;
        let mut fresh = |rng: &mut StdRng| {
            NnController::with_output_scale(
                Network::new(&sizes, Activation::ReLU, Activation::Tanh, rng.gen()),
                scale,
            )
        };
        match (self.config.portfolio, self.config.abstraction) {
            (PortfolioMode::Off, AbstractionKind::Polar { order }) => {
                let verifier = TaylorReach::new(
                    &self.problem,
                    TaylorAbstraction::with_order(order),
                    self.config.verifier.clone(),
                );
                self.learn_with_restarts(init, &|c: &NnController| verifier.reach(c), &mut fresh)
            }
            (PortfolioMode::Off, AbstractionKind::Bernstein { degree }) => {
                let verifier = TaylorReach::new(
                    &self.problem,
                    BernsteinAbstraction::with_degree(degree),
                    self.config.verifier.clone(),
                );
                self.learn_with_restarts(init, &|c: &NnController| verifier.reach(c), &mut fresh)
            }
            (PortfolioMode::Surrogate { confirm_every }, _) => {
                let portfolio = self.nn_portfolio();
                self.learn_surrogate(init, &portfolio, confirm_every, &mut fresh)
            }
        }
    }

    /// Builds the tiered verifier portfolio for neural controllers: interval
    /// fast-path with the Taylor-model backend (configured abstraction) as
    /// the rigorous authority.
    #[must_use]
    pub fn nn_portfolio(&self) -> PortfolioVerifier<NnController> {
        let rigorous: Box<dyn dwv_reach::Verifier<NnController>> = match self.config.abstraction {
            AbstractionKind::Polar { order } => Box::new(TaylorReach::new(
                &self.problem,
                TaylorAbstraction::with_order(order),
                self.config.verifier.clone(),
            )),
            AbstractionKind::Bernstein { degree } => Box::new(TaylorReach::new(
                &self.problem,
                BernsteinAbstraction::with_degree(degree),
                self.config.verifier.clone(),
            )),
        };
        PortfolioVerifier::new(rigorous, self.config.portfolio_slack)
            .with_tier(Box::new(IntervalReach::for_problem(&self.problem)))
    }

    /// The surrogate-mode learning loop: exploratory queries ride the cheap
    /// portfolio tiers, rigorous calls are reserved for confirmation and
    /// acceptance.
    fn learn_surrogate<C>(
        &self,
        init: Option<C>,
        portfolio: &PortfolioVerifier<C>,
        confirm_every: usize,
        fresh: &mut dyn FnMut(&mut StdRng) -> C,
    ) -> LearnOutcome<C>
    where
        C: Controller + Clone + Sync,
    {
        // Probe trustworthiness margin: a cheap enclosure whose unsafe
        // clearance covers the slack is tight enough to rank candidates; a
        // near-boundary or unsafe-overlapping cheap box may be an artifact
        // of enclosure wideness, so the probe escalates to a tighter cheap
        // tier (never to the rigorous one — probes rank, they don't
        // certify).
        let metric = GeometricMetric::for_problem(&self.problem);
        let margin = move |fp: &Flowpipe| metric.evaluate(fp).d_unsafe;
        let probe = |c: &C| -> Result<Flowpipe, ReachError> {
            let _s = dwv_obs::span("verify");
            if dwv_obs::enabled() {
                dwv_obs::counter("alg1.verifier_calls").inc();
            }
            portfolio.reach_probe(c, dwv_reach::hash_params(&c.params()), &margin)
        };
        let rigor = |c: &C| -> Result<Flowpipe, ReachError> {
            let _s = dwv_obs::span("verify");
            if dwv_obs::enabled() {
                dwv_obs::counter("alg1.verifier_calls").inc();
            }
            portfolio.reach_rigorous(c, dwv_reach::hash_params(&c.params()))
        };
        // Per-iteration tier bills for the trace CSV: the loop diffs this
        // snapshot around every iteration it records.
        let tier_stats = || portfolio.stats().calls_by_tier;
        let mut outcome = self.learn_loop(
            init,
            &probe,
            &rigor,
            confirm_every.max(1),
            fresh,
            Some(&tier_stats),
        );
        let stats = portfolio.stats();
        if dwv_obs::enabled() {
            dwv_obs::event(
                "portfolio.stats",
                &[
                    ("escalations", stats.escalations as f64),
                    ("decided_cheap", stats.decided_cheap as f64),
                    (
                        "rigorous_calls",
                        stats.calls_by_tier.last().copied().unwrap_or(0) as f64,
                    ),
                ],
            );
        }
        outcome.portfolio = Some(stats);
        outcome
    }

    /// The generic learning loop over any controller family and verifier.
    ///
    /// `verify` is the `Ψ(f, X₀, κ_θ)` oracle; `fresh` draws a random
    /// controller for (re)initialization.
    #[must_use]
    pub fn learn_with_restarts<C, V>(
        &self,
        init: Option<C>,
        verify: &V,
        fresh: &mut dyn FnMut(&mut StdRng) -> C,
    ) -> LearnOutcome<C>
    where
        C: Controller + Clone + Sync,
        V: Fn(&C) -> Result<Flowpipe, ReachError> + Sync,
    {
        // With a cache attached, repeated verifications of bit-identical
        // parameters are answered from memory; call counters still count
        // every oracle query, so traces are unaffected.
        let cell_key = dwv_reach::hash_cell(&self.problem.x0);
        let verify = move |c: &C| -> Result<Flowpipe, ReachError> {
            let _s = dwv_obs::span("verify");
            if dwv_obs::enabled() {
                dwv_obs::counter("alg1.verifier_calls").inc();
            }
            match &self.cache {
                Some(cache) => {
                    cache
                        .get_or_compute(dwv_reach::hash_params(&c.params()), cell_key, || verify(c))
                }
                None => verify(c),
            }
        };
        // One oracle plays both roles: with `confirm_every == 0` every
        // query is rigorous and no confirmation step runs, so this path is
        // bit-identical to the pre-portfolio learner.
        self.learn_loop(init, &verify, &verify, 0, fresh, None)
    }

    /// The two-oracle loop underneath [`Self::learn_with_restarts`].
    ///
    /// `probe` answers the high-volume exploratory queries (gradient
    /// probes, candidate scoring); `rigor` is the rigorous authority. With
    /// `confirm_every == 0` the oracles are assumed identical and the loop
    /// reduces to the classic single-backend learner. With
    /// `confirm_every >= 1`:
    ///
    /// * a probe-positive reach-avoid is only trusted after `rigor`
    ///   confirms it (a cheap tier's optimism never stops learning);
    /// * every `confirm_every` iterations a rigorous stop-check runs even
    ///   without a probe claim (cheap tiers can be too loose to ever see
    ///   convergence);
    /// * the final acceptance and [`judge`] verdict always use `rigor`.
    ///
    /// `tier_stats`, when present, reports the portfolio's cumulative
    /// per-tier call counts; the loop diffs it around each iteration to
    /// fill [`IterationRecord::tier_calls`].
    fn learn_loop<C, P, R>(
        &self,
        init: Option<C>,
        verify: &P,
        rigor: &R,
        confirm_every: usize,
        fresh: &mut dyn FnMut(&mut StdRng) -> C,
        tier_stats: Option<&(dyn Fn() -> Vec<u64> + Sync)>,
    ) -> LearnOutcome<C>
    where
        C: Controller + Clone + Sync,
        P: Fn(&C) -> Result<Flowpipe, ReachError> + Sync,
        R: Fn(&C) -> Result<Flowpipe, ReachError> + Sync,
    {
        let _train = dwv_obs::span("train");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9E37_79B9);
        let p = self.config.perturbation;
        let radius_init = 30.0 * p;
        let radius_max = 80.0 * p;
        let radius_min = 2.0 * p;

        let verify = &verify;
        let cache_hits_so_far = || self.cache.as_ref().map_or(0, |c| c.hits());

        let mut calls_this_iter = 0usize;
        let eval_ctrl = |c: &C, calls: &mut usize| -> (Evaluation, Option<Flowpipe>) {
            *calls += 1;
            let attempt = verify(c);
            let ev = self.evaluate(&attempt);
            (ev, attempt.ok())
        };

        // Cumulative per-tier bill at the start of the iteration being
        // recorded; taken before initialization so the init draws bill to
        // iteration 0 (matching `calls_this_iter`).
        let mut tier_before = tier_stats.map(|stats| stats());
        let mut bill_tiers = |record: &mut IterationRecord| {
            if let (Some(stats), Some(before)) = (tier_stats, tier_before.as_mut()) {
                let now = stats();
                record.tier_calls = now
                    .iter()
                    .enumerate()
                    .map(|(i, n)| n.saturating_sub(before.get(i).copied().unwrap_or(0)))
                    .collect();
                *before = now;
            }
        };

        // Initialize: explicit controller, or the best of three random draws.
        let mut controller = match init {
            Some(c) => c,
            None => {
                let mut best = fresh(&mut rng);
                let (mut best_ev, _) = eval_ctrl(&best, &mut calls_this_iter);
                for _ in 0..2 {
                    let cand = fresh(&mut rng);
                    let (ev, _) = eval_ctrl(&cand, &mut calls_this_iter);
                    if ev.objective > best_ev.objective {
                        best = cand;
                        best_ev = ev;
                    }
                }
                best
            }
        };

        let mut trace = LearningTrace::new();
        let mut last_flowpipe: Option<Flowpipe> = None;
        let mut iterations = self.config.max_updates;
        let mut radius = radius_init;
        let mut best_theta = controller.params();
        let mut best_objective = f64::NEG_INFINITY;
        let mut restarts = 0usize;

        for i in 0..=self.config.max_updates {
            let started = Instant::now();
            let hits_before = cache_hits_so_far();
            let mut calls = std::mem::take(&mut calls_this_iter);

            let (current, fp) = eval_ctrl(&controller, &mut calls);
            let remainder_width = fp.as_ref().map_or(0.0, Flowpipe::final_width);
            if let Some(fp) = fp {
                last_flowpipe = Some(fp);
            }
            if current.objective > best_objective {
                best_objective = current.objective;
                best_theta = controller.params();
            }
            if dwv_obs::enabled() {
                dwv_obs::histogram("alg1.remainder_width").record(remainder_width);
                dwv_obs::event(
                    "alg1.iteration",
                    &[
                        ("iteration", i as f64),
                        ("unsafe_metric", current.unsafe_metric),
                        ("goal_metric", current.goal_metric),
                        ("reach_avoid", f64::from(u8::from(current.reach_avoid))),
                        ("remainder_width", remainder_width),
                    ],
                );
            }
            let mut record = IterationRecord {
                iteration: i,
                unsafe_metric: current.unsafe_metric,
                goal_metric: current.goal_metric,
                reach_avoid: current.reach_avoid,
                elapsed: started.elapsed(),
                verifier_calls: calls,
                cache_hits: cache_hits_so_far() - hits_before,
                remainder_width,
                tier_calls: Vec::new(),
            };
            if current.reach_avoid {
                // Surrogate mode: a cheap tier's reach-avoid claim is only
                // a candidate — the rigorous oracle must confirm before the
                // loop may stop. (With confirm_every == 0 the probe already
                // was rigorous.)
                let confirmed = if confirm_every == 0 {
                    true
                } else {
                    calls += 1;
                    let attempt = rigor(&controller);
                    let ev = self.evaluate(&attempt);
                    if let Ok(fp) = attempt {
                        last_flowpipe = Some(fp);
                    }
                    record.verifier_calls = calls;
                    record.elapsed = started.elapsed();
                    ev.reach_avoid
                };
                if confirmed {
                    bill_tiers(&mut record);
                    trace.push(record);
                    iterations = i;
                    break;
                }
                // Refuted: the cheap enclosure was lucky, not the loop.
                record.reach_avoid = false;
            } else if confirm_every > 0 && i > 0 && i % confirm_every == 0 {
                // Periodic rigorous stop-check: the cheap tiers may be too
                // loose to ever report reach-avoid on a controller the
                // rigorous tier can verify.
                calls += 1;
                let attempt = rigor(&controller);
                let ev = self.evaluate(&attempt);
                if let Ok(fp) = attempt {
                    last_flowpipe = Some(fp);
                }
                if ev.reach_avoid {
                    record.reach_avoid = true;
                    record.unsafe_metric = ev.unsafe_metric;
                    record.goal_metric = ev.goal_metric;
                    record.verifier_calls = calls;
                    record.elapsed = started.elapsed();
                    bill_tiers(&mut record);
                    trace.push(record);
                    iterations = i;
                    break;
                }
            }
            if i == self.config.max_updates {
                record.verifier_calls = calls;
                bill_tiers(&mut record);
                trace.push(record);
                break;
            }

            if radius < radius_min {
                // Local optimum without reach-avoid. Alternate two restart
                // moves: re-enter from a perturbed copy of the best-so-far
                // parameters (to polish a promising basin), or jump to the
                // best of three fresh random candidates (to leave it).
                restarts += 1;
                if restarts % 2 == 1 && best_objective > f64::NEG_INFINITY {
                    let jitter = 8.0 * p;
                    let perturbed: Vec<f64> = best_theta
                        .iter()
                        .map(|t| t + rng.gen_range(-jitter..jitter))
                        .collect();
                    controller.set_params(&perturbed);
                } else {
                    let mut best = fresh(&mut rng);
                    let (mut best_ev, _) = eval_ctrl(&best, &mut calls);
                    for _ in 0..2 {
                        let cand = fresh(&mut rng);
                        let (ev, _) = eval_ctrl(&cand, &mut calls);
                        if ev.objective > best_ev.objective {
                            best = cand;
                            best_ev = ev;
                        }
                    }
                    controller = best;
                }
                radius = radius_init;
                record.elapsed = started.elapsed();
                record.verifier_calls = calls;
                bill_tiers(&mut record);
                trace.push(record);
                continue;
            }

            // Difference-method gradient of the shaped objective (Eq. 5).
            let theta = controller.params();
            let grad =
                self.estimate_gradient(&theta, &mut controller, verify, &mut rng, &mut calls);
            let mag = grad.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if mag <= 1e-12 {
                radius *= 0.5;
                record.elapsed = started.elapsed();
                record.verifier_calls = calls;
                bill_tiers(&mut record);
                trace.push(record);
                continue;
            }
            let candidate: Vec<f64> = theta
                .iter()
                .zip(&grad)
                .map(|(t, g)| t + radius * g / mag)
                .collect();
            controller.set_params(&candidate);
            let (cand_ev, _) = eval_ctrl(&controller, &mut calls);
            if cand_ev.objective > current.objective {
                radius = (radius * 1.4).min(radius_max);
            } else {
                controller.set_params(&theta);
                radius *= 0.5;
            }
            record.elapsed = started.elapsed();
            record.verifier_calls = calls;
            record.cache_hits = cache_hits_so_far() - hits_before;
            bill_tiers(&mut record);
            trace.push(record);
        }

        // Acceptance is always rigorous: the returned verdict and
        // certificate never rest on a cheap tier.
        let final_attempt = rigor(&controller);
        let verified = judge(
            &self.problem,
            &controller,
            &final_attempt,
            500,
            self.config.seed,
        );
        if let Ok(fp) = final_attempt {
            last_flowpipe = Some(fp);
        }
        if dwv_obs::enabled() {
            if let Some(cache) = &self.cache {
                let s = cache.stats();
                dwv_obs::event(
                    "reach_cache.stats",
                    &[
                        ("hits", s.hits as f64),
                        ("misses", s.misses as f64),
                        ("evictions", s.evictions as f64),
                        ("entries", s.entries as f64),
                    ],
                );
            }
        }
        LearnOutcome {
            controller,
            verified,
            iterations,
            trace,
            flowpipe: last_flowpipe,
            portfolio: None,
        }
    }

    fn estimate_gradient<C, V>(
        &self,
        theta: &[f64],
        scratch: &mut C,
        verify: &V,
        rng: &mut StdRng,
        calls: &mut usize,
    ) -> Vec<f64>
    where
        C: Controller + Clone + Sync,
        V: Fn(&C) -> Result<Flowpipe, ReachError> + Sync,
    {
        let p = self.config.perturbation;
        let dim = theta.len();
        let mut grad = vec![0.0; dim];
        // All probes of one gradient estimate are independent verifier calls
        // at known parameter points; batch them so a worker pool can fan
        // them out. Objectives come back in probe order, and the gradient is
        // assembled with the same floating-point operation order as a
        // straight-line serial evaluation — the pool changes timing only.
        let objectives_at = |probes: &[Vec<f64>], calls: &mut usize| -> Vec<f64> {
            *calls += probes.len();
            let eval_one = |params: &Vec<f64>| -> f64 {
                let mut c = scratch.clone();
                c.set_params(params);
                self.evaluate(&verify(&c)).objective
            };
            match &self.pool {
                Some(pool) if probes.len() > 1 => pool.map(probes, eval_one),
                _ => probes.iter().map(eval_one).collect(),
            }
        };
        match self.config.estimator {
            GradientEstimator::Coordinate => {
                // Probe order: [θ+p·e₀, θ−p·e₀, θ+p·e₁, …].
                let probes: Vec<Vec<f64>> = (0..dim)
                    .flat_map(|j| {
                        let mut plus = theta.to_vec();
                        plus[j] += p; // dwv-lint: allow(panic-freedom#index) -- j ranges over the parameter dimension
                        let mut minus = theta.to_vec();
                        minus[j] -= p; // dwv-lint: allow(panic-freedom#index) -- j ranges over the parameter dimension
                        [plus, minus]
                    })
                    .collect();
                let obj = objectives_at(&probes, calls);
                for (j, g) in grad.iter_mut().enumerate() {
                    *g = (obj[2 * j] - obj[2 * j + 1]) / (2.0 * p); // dwv-lint: allow(panic-freedom#index) -- the probe batch yields two objectives per coordinate
                }
            }
            GradientEstimator::Spsa { samples } => {
                let samples = samples.max(1);
                // Draw every direction up front (the serial loop consumed
                // the RNG only for directions, so the stream is unchanged),
                // then probe [θ+p·Δ₀, θ−p·Δ₀, θ+p·Δ₁, …] as one batch.
                let deltas: Vec<Vec<f64>> = (0..samples)
                    .map(|_| {
                        (0..dim)
                            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                            .collect()
                    })
                    .collect();
                let probes: Vec<Vec<f64>> = deltas
                    .iter()
                    .flat_map(|delta| {
                        let plus: Vec<f64> =
                            theta.iter().zip(delta).map(|(t, d)| t + p * d).collect();
                        let minus: Vec<f64> =
                            theta.iter().zip(delta).map(|(t, d)| t - p * d).collect();
                        [plus, minus]
                    })
                    .collect();
                let obj = objectives_at(&probes, calls);
                for (s, delta) in deltas.iter().enumerate() {
                    let slope = (obj[2 * s] - obj[2 * s + 1]) / (2.0 * p); // dwv-lint: allow(panic-freedom#index) -- the probe batch yields two objectives per sample
                    for (g, d) in grad.iter_mut().zip(delta) {
                        // 1/Δ_j = Δ_j for Δ_j ∈ {−1, +1}.
                        *g += slope * d / samples as f64;
                    }
                }
            }
        }
        scratch.set_params(theta);
        grad
    }

    /// Evaluates the configured metric on a verification attempt and shapes
    /// the scalar learning objective.
    fn evaluate(&self, attempt: &Result<Flowpipe, ReachError>) -> Evaluation {
        let Ok(fp) = attempt else {
            // Diverged flowpipe: the worst possible candidate. Leave a mark
            // in the flight recorder so a post-mortem dump shows which
            // stretch of the run was fighting divergence.
            dwv_obs::flight_anomaly("alg1.diverged", FAIL_PENALTY);
            return Evaluation {
                unsafe_metric: -FAIL_PENALTY,
                goal_metric: -FAIL_PENALTY,
                reach_avoid: false,
                objective: -3.0 * FAIL_PENALTY,
            };
        };
        let alpha = self.config.alpha;
        let beta = self.config.beta;
        let cap = self.safety_cap;
        // Shaping anchor: when overlap measures saturate (a wildly diverging
        // closed loop fills the whole universe box), the distance from the
        // final set's center to the goal anchor still falls toward sane
        // parameter regions.
        let center = fp.final_step().enclosure.center();
        let center_dist = self
            .goal_anchor
            .iter()
            .zip(&center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Robust goal check: besides the metric's intersection criterion,
        // the core quarter of the final set (its box scaled to 25% about the
        // center) must lie inside the goal. A loose enclosure (box
        // re-initialization mode) can brush the goal while every true
        // trajectory misses it; requiring a centered core removes that
        // artifact and empirically aligns the stop criterion with 100%
        // simulated GR.
        let core_box = fp.final_step().end_box.scale_about_center(0.25);
        let centered = self.problem.goal_region.contains_box(&core_box);
        match self.config.metric {
            MetricKind::Geometric => {
                let d = GeometricMetric::for_problem(&self.problem).evaluate(fp);
                let objective = if d.d_unsafe <= 0.0 {
                    alpha * d.d_unsafe - FAIL_PENALTY - center_dist
                } else {
                    beta * d.d_goal + alpha * d.d_unsafe.min(cap) - center_dist
                };
                Evaluation {
                    unsafe_metric: d.d_unsafe,
                    goal_metric: d.d_goal,
                    reach_avoid: d.is_reach_avoid() && centered,
                    objective,
                }
            }
            MetricKind::Wasserstein => {
                let mut m = WassersteinMetric::for_problem(&self.problem);
                m.samples = self.config.wasserstein_samples;
                m.seed = self.config.seed;
                let d = m.evaluate(fp);
                let objective = if d.intersects_unsafe {
                    -FAIL_PENALTY - center_dist
                } else {
                    -beta * d.w_goal + alpha * d.w_unsafe.min(cap)
                };
                // The reach-avoid stop criterion also demands whole-pipe
                // safety (geometric check is exact there) and centering.
                let reach_avoid = d.is_reach_avoid()
                    && centered
                    && GeometricMetric::for_problem(&self.problem)
                        .evaluate(fp)
                        .is_reach_avoid();
                Evaluation {
                    unsafe_metric: d.w_unsafe,
                    goal_metric: d.w_goal,
                    reach_avoid,
                    objective,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::acc;

    fn quick_config(metric: MetricKind, seed: u64) -> LearnConfig {
        LearnConfig::builder()
            .metric(metric)
            .max_updates(150)
            .perturbation(0.01)
            .estimator(GradientEstimator::Coordinate)
            .seed(seed)
            .build()
    }

    #[test]
    fn acc_geometric_converges_to_reach_avoid() {
        for seed in [7, 21] {
            let outcome = Algorithm1::new(
                acc::reach_avoid_problem(),
                quick_config(MetricKind::Geometric, seed),
            )
            .learn_linear()
            .expect("linear learning sets up");
            assert!(
                outcome.verified.is_reach_avoid(),
                "seed {seed}: expected reach-avoid, got {} after {} iterations",
                outcome.verified,
                outcome.iterations,
            );
            assert!(outcome.iterations < 150);
            assert!(outcome.flowpipe.is_some());
        }
    }

    #[test]
    fn acc_wasserstein_converges_to_reach_avoid() {
        let outcome = Algorithm1::new(
            acc::reach_avoid_problem(),
            quick_config(MetricKind::Wasserstein, 7),
        )
        .learn_linear()
        .expect("linear learning sets up");
        assert!(
            outcome.verified.is_reach_avoid(),
            "expected reach-avoid, got {} after {} iterations",
            outcome.verified,
            outcome.iterations,
        );
    }

    #[test]
    fn trace_records_every_iteration() {
        let outcome = Algorithm1::new(
            acc::reach_avoid_problem(),
            quick_config(MetricKind::Geometric, 3),
        )
        .learn_linear()
        .unwrap();
        assert_eq!(outcome.trace.len(), outcome.iterations + 1);
        for (k, r) in outcome.trace.records().iter().enumerate() {
            assert_eq!(r.iteration, k);
        }
        assert!(outcome.trace.total_verifier_calls() > outcome.trace.len());
    }

    #[test]
    fn early_exit_when_init_already_verifies() {
        let good = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let outcome = Algorithm1::new(
            acc::reach_avoid_problem(),
            quick_config(MetricKind::Geometric, 1),
        )
        .learn_linear_from(good)
        .unwrap();
        assert_eq!(outcome.iterations, 0);
        assert!(outcome.verified.is_reach_avoid());
    }

    #[test]
    fn cached_learning_is_identical_and_hits() {
        let cfg = quick_config(MetricKind::Geometric, 7);
        let init = LinearController::new(2, 1, vec![0.2, -0.5]);
        let plain = Algorithm1::new(acc::reach_avoid_problem(), cfg.clone())
            .learn_linear_from(init.clone())
            .unwrap();
        let cache = std::sync::Arc::new(dwv_reach::ReachCache::new());
        let cached = Algorithm1::new(acc::reach_avoid_problem(), cfg)
            .with_cache(std::sync::Arc::clone(&cache))
            .learn_linear_from(init)
            .unwrap();
        // Same trajectory and verdict, same oracle-call accounting…
        assert_eq!(cached.iterations, plain.iterations);
        assert_eq!(cached.controller.params(), plain.controller.params());
        assert_eq!(
            cached.trace.total_verifier_calls(),
            plain.trace.total_verifier_calls()
        );
        // …but repeated subproblems were answered from memory.
        assert!(cache.hits() > 0, "expected cache hits across iterations");
        assert_eq!(
            cache.hits() + cache.misses(),
            cached.trace.total_verifier_calls() + 1
        );
    }

    #[test]
    fn surrogate_mode_verifies_acc_with_few_rigorous_calls() {
        let cfg = LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(150)
            .perturbation(0.01)
            .estimator(GradientEstimator::Coordinate)
            .seed(7)
            .portfolio(crate::PortfolioMode::Surrogate { confirm_every: 5 })
            .build();
        let outcome = Algorithm1::new(acc::reach_avoid_problem(), cfg)
            .learn_linear()
            .expect("linear learning sets up");
        assert!(
            outcome.verified.is_reach_avoid(),
            "expected reach-avoid, got {} after {} iterations",
            outcome.verified,
            outcome.iterations,
        );
        let stats = outcome.portfolio.expect("surrogate mode reports stats");
        assert_eq!(stats.calls_by_tier.len(), 3, "interval, zonotope, exact");
        let rigorous = stats.calls_by_tier.last().copied().unwrap_or(u64::MAX);
        let cheap: u64 = stats.calls_by_tier[..stats.calls_by_tier.len() - 1]
            .iter()
            .sum();
        assert!(
            cheap >= 5 * rigorous,
            "portfolio should answer ≥5x more queries cheaply: cheap={cheap} rigorous={rigorous}"
        );
        // Per-iteration tier bills reconcile with the portfolio totals: the
        // cheap tiers bill entirely inside the loop; the rigorous tier may
        // add at most one acceptance call after it (zero when the final
        // verification was a cache hit).
        let mut by_tier = vec![0u64; stats.calls_by_tier.len()];
        for r in outcome.trace.records() {
            assert_eq!(r.tier_calls.len(), by_tier.len(), "it {}", r.iteration);
            for (acc, c) in by_tier.iter_mut().zip(&r.tier_calls) {
                *acc += c;
            }
        }
        let tail = by_tier.len() - 1;
        assert_eq!(by_tier[..tail], stats.calls_by_tier[..tail]);
        let outside = stats.calls_by_tier[tail] - by_tier[tail];
        assert!(
            outside <= 1,
            "only the final acceptance may bill outside the loop: {outside}"
        );
        // Compare against the baseline's rigorous bill on the same seed.
        let base_cfg = quick_config(MetricKind::Geometric, 7);
        let baseline = Algorithm1::new(acc::reach_avoid_problem(), base_cfg)
            .learn_linear()
            .unwrap();
        let baseline_rigorous = baseline.trace.total_verifier_calls() as u64;
        assert!(
            5 * rigorous <= baseline_rigorous,
            "expected a ≥5x rigorous-call cut: portfolio={rigorous} baseline={baseline_rigorous}"
        );
    }

    #[test]
    fn surrogate_acceptance_is_rigorous() {
        // Start from a controller that already verifies: surrogate mode must
        // still confirm with the rigorous tier before accepting.
        let good = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let cfg = LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(50)
            .perturbation(0.01)
            .estimator(GradientEstimator::Coordinate)
            .seed(1)
            .portfolio(crate::PortfolioMode::Surrogate { confirm_every: 5 })
            .build();
        let outcome = Algorithm1::new(acc::reach_avoid_problem(), cfg)
            .learn_linear_from(good)
            .unwrap();
        assert!(outcome.verified.is_reach_avoid());
        let stats = outcome.portfolio.expect("surrogate mode reports stats");
        let rigorous = stats.calls_by_tier.last().copied().unwrap_or(0);
        assert!(
            rigorous >= 1,
            "acceptance must consult the rigorous tier at least once"
        );
    }

    #[test]
    fn off_mode_reports_no_portfolio_stats() {
        let outcome = Algorithm1::new(
            acc::reach_avoid_problem(),
            quick_config(MetricKind::Geometric, 3),
        )
        .learn_linear()
        .unwrap();
        assert!(outcome.portfolio.is_none());
        assert!(
            outcome
                .trace
                .records()
                .iter()
                .all(|r| r.tier_calls.is_empty()),
            "single-backend traces carry no tier columns"
        );
    }

    #[test]
    fn unsupported_problem_errors() {
        let res = Algorithm1::new(
            dwv_dynamics::oscillator::reach_avoid_problem(),
            quick_config(MetricKind::Geometric, 1),
        )
        .learn_linear();
        assert!(matches!(res, Err(LearnError::Unsupported(_))));
    }

    #[test]
    fn max_updates_bound_respected() {
        let cfg = LearnConfig::builder()
            .max_updates(2)
            .estimator(GradientEstimator::Coordinate)
            .seed(1234)
            .build();
        let outcome = Algorithm1::new(acc::reach_avoid_problem(), cfg)
            .learn_linear()
            .unwrap();
        assert!(outcome.trace.len() <= 3);
    }
}
