//! Seed-driven verdict-scenario generators for falsification harnesses.
//!
//! `dwv-check`'s verdict family feeds these randomized flowpipes and
//! goal/unsafe regions through [`dwv_metrics::GeometricMetric`] and
//! cross-examines the claimed sign semantics (`d^u > 0` ⇔ provably safe,
//! `d^g > 0` ⇔ provably reaching) against dense point-membership sampling.

use dwv_geom::{HalfSpace, Region};
use dwv_interval::arbitrary::{f64_in, interval_box};
use dwv_interval::IntervalBox;
use dwv_reach::Flowpipe;

/// A random box flowpipe: `n_steps` sweep boxes of endpoint magnitude at
/// most `mag`, with a fixed step period of `0.1`.
pub fn box_flowpipe(
    next: &mut impl FnMut() -> u64,
    dim: usize,
    n_steps: usize,
    mag: f64,
) -> Flowpipe {
    let boxes: Vec<IntervalBox> = (0..n_steps.max(1))
        .map(|_| interval_box(next, dim, mag))
        .collect();
    Flowpipe::from_boxes(boxes, 0.1)
}

/// A random goal/unsafe region: a bounded box (3 draws out of 4) or a
/// half-space with coefficients of magnitude at most `mag`.
pub fn region(next: &mut impl FnMut() -> u64, dim: usize, mag: f64) -> Region {
    if next().is_multiple_of(4) {
        let normal: Vec<f64> = (0..dim).map(|_| f64_in(next(), -1.0, 1.0)).collect();
        let normal = if normal.iter().map(|v| v.abs()).sum::<f64>() < 1e-6 {
            (0..dim).map(|i| f64::from(u8::from(i == 0))).collect()
        } else {
            normal
        };
        Region::from_halfspace(HalfSpace::new(normal, f64_in(next(), -mag, mag)))
    } else {
        Region::from_box(interval_box(next, dim, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn deterministic_scenarios() {
        let mut a = stream(5);
        let mut b = stream(5);
        let f1 = box_flowpipe(&mut a, 2, 4, 6.0);
        let f2 = box_flowpipe(&mut b, 2, 4, 6.0);
        assert_eq!(f1.len(), f2.len());
        for (s1, s2) in f1.iter().zip(f2.iter()) {
            assert_eq!(s1.enclosure, s2.enclosure);
        }
        let r1 = region(&mut a, 2, 6.0);
        let r2 = region(&mut b, 2, 6.0);
        assert_eq!(r1.dim(), r2.dim());
    }
}
