//! Memoization of reachability results across training iterations.
//!
//! Algorithm 1 re-verifies the *same* `(controller, initial cell)`
//! subproblem repeatedly: every iteration re-evaluates the current
//! controller that the previous iteration already verified (as the accepted
//! candidate or the restored pre-step parameters), and the final judgement
//! verifies the last controller once more. Algorithm-2 style sweeps can
//! likewise revisit cells under an unchanged controller. [`ReachCache`]
//! memoizes `Result<Flowpipe, ReachError>` keyed by a hash of the controller
//! parameters and a hash of the initial cell, so unchanged subproblems are
//! answered from memory.
//!
//! **Invalidation rule:** a cache key *is* the controller-weights hash — any
//! weight change produces a new key, so stale results are never returned.
//! [`ReachCache::invalidate_controller`] additionally flushes all entries of
//! one controller hash (e.g. when its weights are about to be mutated in
//! place and the old results are known to be dead), bounding memory across
//! long learning runs.

use crate::error::ReachError;
use crate::flowpipe::Flowpipe;
use dwv_interval::IntervalBox;
use std::collections::HashMap; // dwv-lint: allow(determinism) -- content-keyed memo; retain/clear results are order-independent and iteration order is never otherwise observed
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain separator folded in before a nonzero tenant id, so the tenant-0
/// hash chain (the historical single-tenant [`hash_params`] chain) can only
/// collide with a tenant-qualified chain through a full FNV collision.
const TENANT_DOMAIN: u64 = 0x7e6a_9d1c_5b38_24f0;

#[inline]
fn fnv1a_u64(state: u64, word: u64) -> u64 {
    let mut h = state;
    for shift in (0..64).step_by(8) {
        h ^= (word >> shift) & 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of a parameter vector, bit-exact on the `f64` values.
///
/// Distinct bit patterns (including `-0.0` vs `0.0`) hash differently, so a
/// cache keyed by this hash never conflates controllers whose outputs could
/// differ.
#[must_use]
pub fn hash_params(params: &[f64]) -> u64 {
    hash_params_tenant(0, params)
}

/// [`hash_params`] qualified by a tenant id, for multi-tenant cache sharding.
///
/// Two tenants submitting bit-identical controller weights must never share
/// a cache line (a served verdict for one tenant must not be observable as a
/// warm hit by another), so the tenant id is folded into the hash state
/// *before* the parameters. Tenant `0` is the batch/single-tenant identity:
/// `hash_params_tenant(0, p) == hash_params(p)` for every `p`, keeping every
/// pre-existing single-tenant cache key stable. Nonzero tenants start from a
/// domain-separated state (see `TENANT_DOMAIN`).
#[must_use]
pub fn hash_params_tenant(tenant: u64, params: &[f64]) -> u64 {
    let state = if tenant == 0 {
        FNV_OFFSET
    } else {
        fnv1a_u64(fnv1a_u64(FNV_OFFSET, TENANT_DOMAIN), tenant)
    };
    let mut h = fnv1a_u64(state, params.len() as u64);
    for &p in params {
        h = fnv1a_u64(h, p.to_bits());
    }
    h
}

/// FNV-1a hash of a cell's exact bounds.
#[must_use]
pub fn hash_cell(cell: &IntervalBox) -> u64 {
    let mut h = fnv1a_u64(FNV_OFFSET, cell.dim() as u64);
    for iv in cell.intervals() {
        h = fnv1a_u64(h, iv.lo().to_bits());
        h = fnv1a_u64(h, iv.hi().to_bits());
    }
    h
}

/// A memo cache for `(controller, initial cell) → Result<Flowpipe, _>`.
///
/// Thread-safe: a worker pool fanning out per-cell verifications can share
/// one cache. Hashes are computed by the caller ([`hash_params`] /
/// [`hash_cell`]) so the cache itself stays independent of controller types.
#[derive(Debug, Default)]
pub struct ReachCache {
    // A poisoned lock only means another worker panicked mid-operation;
    // entries are inserted fully constructed and never mutated in place, so
    // the map is always internally consistent — lock acquisition recovers
    // from poisoning instead of cascading the panic across the worker pool.
    // dwv-lint: allow(determinism) -- content-keyed memo; retain/clear results are order-independent and iteration order is never otherwise observed
    map: Mutex<HashMap<(u64, u64), Result<Flowpipe, ReachError>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

/// Lifetime counters of a [`ReachCache`], as returned by
/// [`ReachCache::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReachCacheStats {
    /// Lookups answered from memory.
    pub hits: usize,
    /// Lookups that had to compute.
    pub misses: usize,
    /// Entries dropped by [`ReachCache::invalidate_controller`] /
    /// [`ReachCache::clear`].
    pub evictions: usize,
    /// Subproblems currently memoized.
    pub entries: usize,
}

impl ReachCacheStats {
    /// Fraction of lookups served from memory (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ReachCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized result for `(controller, cell)`, computing and
    /// storing it on a miss.
    ///
    /// The computation runs *outside* the cache lock, so concurrent
    /// verifications of different subproblems do not serialize (two threads
    /// missing on the same key may both compute; last write wins with an
    /// identical value).
    pub fn get_or_compute<F>(
        &self,
        controller: u64,
        cell: u64,
        compute: F,
    ) -> Result<Flowpipe, ReachError>
    where
        F: FnOnce() -> Result<Flowpipe, ReachError>,
    {
        let key = (controller, cell);
        if let Some(hit) = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if dwv_obs::enabled() {
                dwv_obs::counter("reach.cache.hits").inc();
            }
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if dwv_obs::enabled() {
            dwv_obs::counter("reach.cache.misses").inc();
        }
        let result = compute();
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, result.clone());
        result
    }

    /// Flushes every entry belonging to one controller hash.
    pub fn invalidate_controller(&self, controller: u64) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = map.len();
        map.retain(|(c, _), _| *c != controller);
        self.note_evictions(before - map.len());
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dropped = map.len();
        map.clear();
        self.note_evictions(dropped);
    }

    fn note_evictions(&self, dropped: usize) {
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
            if dwv_obs::enabled() {
                dwv_obs::counter("reach.cache.evictions").add(dropped as u64);
            }
        }
    }

    /// The number of memoized subproblems.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from memory so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by invalidation so far.
    #[must_use]
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A consistent snapshot of the lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ReachCacheStats {
        ReachCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            entries: self.len(),
        }
    }
}

/// A family of [`ReachCache`]s, one shard per tenant id.
///
/// The serving layer keeps one of these per verifier tier: each tenant's
/// jobs memoize into their own shard, so one tenant's warm entries are never
/// observable (not even as timing) by another, and a per-tenant flush
/// ([`ShardedReachCache::drop_tenant`]) cannot evict a neighbour's work.
/// Keys inside a shard should still be tenant-qualified via
/// [`hash_params_tenant`] — sharding bounds blast radius, the hash rules out
/// cross-service hits even if two shards are ever merged or misrouted.
#[derive(Debug, Default)]
pub struct ShardedReachCache {
    // dwv-lint: allow(determinism) -- tenant-keyed shard directory; lookups are by key and iteration order is only used for order-independent stats sums
    shards: Mutex<HashMap<u64, Arc<ReachCache>>>,
}

impl ShardedReachCache {
    /// An empty shard family.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard for `tenant`, created on first use.
    ///
    /// The returned handle stays valid (and shared) across calls: two
    /// workers asking for the same tenant get the same underlying cache.
    #[must_use]
    pub fn shard(&self, tenant: u64) -> Arc<ReachCache> {
        Arc::clone(
            self.shards
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(tenant)
                .or_default(),
        )
    }

    /// Drops one tenant's entire shard (counters and all), freeing its
    /// memory. Handles already obtained via [`ShardedReachCache::shard`]
    /// keep working but are detached from the family.
    pub fn drop_tenant(&self, tenant: u64) {
        self.shards
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&tenant);
    }

    /// The number of tenants with a live shard.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.shards
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Lifetime counters summed across every live shard.
    #[must_use]
    pub fn stats(&self) -> ReachCacheStats {
        let shards = self
            .shards
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut total = ReachCacheStats::default();
        for cache in shards.values() {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowpipe::StepEnclosure;

    fn tiny_flowpipe(tag: f64) -> Flowpipe {
        let b = IntervalBox::from_bounds(&[(0.0, tag)]);
        Flowpipe::new(vec![StepEnclosure {
            t0: 0.0,
            t1: 0.0,
            enclosure: b.clone(),
            end_box: b,
            polygon: None,
        }])
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = ReachCache::new();
        let mut computed = 0usize;
        for _ in 0..3 {
            let fp = cache
                .get_or_compute(1, 2, || {
                    computed += 1;
                    Ok(tiny_flowpipe(1.0))
                })
                .unwrap();
            assert_eq!(fp.len(), 1);
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        let cache = ReachCache::new();
        let mut computed = 0usize;
        for _ in 0..2 {
            let r = cache.get_or_compute(9, 9, || {
                computed += 1;
                Err(ReachError::Unsupported("test".into()))
            });
            assert!(r.is_err());
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ReachCache::new();
        let a = cache
            .get_or_compute(1, 1, || Ok(tiny_flowpipe(1.0)))
            .unwrap();
        let b = cache
            .get_or_compute(1, 2, || Ok(tiny_flowpipe(2.0)))
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_controller_flushes_only_that_hash() {
        let cache = ReachCache::new();
        let _ = cache.get_or_compute(1, 1, || Ok(tiny_flowpipe(1.0)));
        let _ = cache.get_or_compute(1, 2, || Ok(tiny_flowpipe(2.0)));
        let _ = cache.get_or_compute(2, 1, || Ok(tiny_flowpipe(3.0)));
        cache.invalidate_controller(1);
        assert_eq!(cache.len(), 1);
        // Controller 2's entry survives and still hits.
        let before = cache.hits();
        let _ = cache.get_or_compute(2, 1, || unreachable!("must hit"));
        assert_eq!(cache.hits(), before + 1);
    }

    #[test]
    fn stats_track_evictions() {
        let cache = ReachCache::new();
        let _ = cache.get_or_compute(1, 1, || Ok(tiny_flowpipe(1.0)));
        let _ = cache.get_or_compute(1, 2, || Ok(tiny_flowpipe(2.0)));
        let _ = cache.get_or_compute(2, 1, || Ok(tiny_flowpipe(3.0)));
        cache.invalidate_controller(1);
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.entries, 1);
        assert_eq!(s.misses, 3);
        cache.clear();
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().entries, 0);
        // hit_rate is total-based and survives eviction.
        let _ = cache.get_or_compute(3, 3, || Ok(tiny_flowpipe(4.0)));
        let _ = cache.get_or_compute(3, 3, || unreachable!("must hit"));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert!((s.hit_rate() - 0.2).abs() < 1e-12, "1 hit of 5 lookups");
    }

    #[test]
    fn param_hash_is_bit_exact() {
        assert_ne!(hash_params(&[0.0]), hash_params(&[-0.0]));
        assert_ne!(hash_params(&[1.0, 2.0]), hash_params(&[2.0, 1.0]));
        assert_eq!(hash_params(&[1.5, -2.5]), hash_params(&[1.5, -2.5]));
        assert_ne!(hash_params(&[]), hash_params(&[0.0]));
    }

    #[test]
    fn tenant_zero_is_the_legacy_hash() {
        for params in [&[][..], &[0.5867, -2.0][..], &[f64::NAN][..]] {
            assert_eq!(hash_params_tenant(0, params), hash_params(params));
        }
    }

    #[test]
    fn tenants_sharing_identical_weights_get_distinct_keys() {
        // The regression this guards: a single-tenant keyed cache would
        // serve tenant B a hit computed for tenant A whenever both submit
        // bit-identical weights. Tenant-qualified hashing must keep the
        // keys apart (and distinct nonzero tenants apart from each other).
        let weights = [0.5867, -2.0];
        let a = hash_params_tenant(1, &weights);
        let b = hash_params_tenant(2, &weights);
        let batch = hash_params(&weights);
        assert_ne!(a, b);
        assert_ne!(a, batch);
        assert_ne!(b, batch);
        // And the cache actually computes twice when the keys differ.
        let cache = ReachCache::new();
        let mut computed = 0usize;
        for key in [a, b] {
            let _ = cache.get_or_compute(key, 7, || {
                computed += 1;
                Ok(tiny_flowpipe(1.0))
            });
        }
        assert_eq!(computed, 2, "tenants must not share cache lines");
    }

    #[test]
    fn sharded_cache_isolates_tenants() {
        let family = ShardedReachCache::new();
        let weights = [1.25, -0.75];
        let a = family.shard(1);
        let b = family.shard(2);
        let key_a = hash_params_tenant(1, &weights);
        let key_b = hash_params_tenant(2, &weights);
        let _ = a.get_or_compute(key_a, 3, || Ok(tiny_flowpipe(1.0)));
        // Tenant B misses even though tenant A already verified these
        // exact weights: separate shard *and* separate key.
        let mut computed = false;
        let _ = b.get_or_compute(key_b, 3, || {
            computed = true;
            Ok(tiny_flowpipe(1.0))
        });
        assert!(computed, "tenant B must not see tenant A's entry");
        assert_eq!(family.tenants(), 2);
        assert_eq!(family.stats().misses, 2);
        assert_eq!(family.stats().entries, 2);
        // Same tenant handle is shared, not re-created.
        let a2 = family.shard(1);
        let _ = a2.get_or_compute(key_a, 3, || unreachable!("must hit"));
        assert_eq!(family.stats().hits, 1);
        family.drop_tenant(1);
        assert_eq!(family.tenants(), 1);
        assert_eq!(family.stats().entries, 1);
    }

    #[test]
    fn cell_hash_depends_on_bounds() {
        let a = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 2.0)]);
        assert_ne!(hash_cell(&a), hash_cell(&b));
        assert_eq!(hash_cell(&a), hash_cell(&a.clone()));
    }
}
