//! The tiered verifier portfolio: cheap sound enclosures first, rigorous
//! backends only when the cheap tiers cannot decide.
//!
//! A [`PortfolioVerifier`] owns an ordered list of [`Verifier`] tiers
//! (cheapest cost class first; the final tier is the *rigorous authority*)
//! plus one [`ReachCache`] per tier — caches are per-tier because the memo
//! key `(controller hash, cell hash)` says nothing about which backend
//! produced the flowpipe, and tiers produce different enclosures for the
//! same key.
//!
//! Three query modes, by decreasing cheapness:
//!
//! - **Surrogate** ([`PortfolioVerifier::reach_surrogate`]): the learning
//!   loop's probe oracle. Returns the first tier that encloses at all,
//!   escalating only when a tier *fails* (diverged / unsupported). All
//!   Algorithm 1 gradient probes run here, so consecutive probes are
//!   compared on the same tier's geometry.
//! - **Decisive** ([`PortfolioVerifier::reach_decisive_from`]): the
//!   certification oracle (stop checks, Algorithm 2 cells). A cheap tier's
//!   answer is kept only when the caller-computed verdict margin clears the
//!   configured slack; near-boundary answers escalate to a tighter tier.
//!   Because every tier is sound, a cheap "safe with room to spare" is
//!   final; a cheap "violates" is *not* evidence of unsafety and always
//!   escalates.
//! - **Rigorous** ([`PortfolioVerifier::reach_rigorous_from`]): the last
//!   tier only. Acceptance of a learned controller always goes through
//!   here, so the portfolio never weakens the soundness contract.
//!
//! Per-tier call counts (actual backend executions — cache hits are not
//! calls), escalations, and cheap decisions are tracked both in local
//! atomics ([`PortfolioVerifier::stats`]) and, when observability is
//! enabled, in the `portfolio.tier{i}.calls` / `portfolio.escalations` /
//! `portfolio.decided_cheap` counters.

use crate::cache::{hash_cell, ReachCache};
use crate::error::ReachError;
use crate::flowpipe::Flowpipe;
use crate::verifier::{CostClass, Verifier};
use dwv_interval::IntervalBox;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lifetime counters of a [`PortfolioVerifier`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Backend executions per tier, cheapest first (the last entry is the
    /// rigorous tier). Cache hits are not counted.
    pub calls_by_tier: Vec<u64>,
    /// Times a query moved from one tier to the next.
    pub escalations: u64,
    /// Queries answered by a tier below the rigorous one.
    pub decided_cheap: u64,
}

/// Where one portfolio answer came from: the verdict-provenance record
/// attached to every traced query.
///
/// Produced by [`PortfolioVerifier::reach_decisive_from_prov`] (and the
/// other `_prov` entry points) so certification artifacts — the pipeline's
/// per-cell verdicts, `VerificationReport` — can say *which* tier decided,
/// how many escalations the query cost and whether the deciding tier's
/// answer was replayed from its cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProvenance {
    /// Index of the deciding tier, cheapest first (last = rigorous).
    pub tier_index: usize,
    /// Backend name of the deciding tier.
    pub tier_name: &'static str,
    /// Cost class of the deciding tier.
    pub cost_class: CostClass,
    /// Tier-to-tier escalations this query performed before deciding.
    pub escalations: u32,
    /// Whether the deciding tier's flowpipe came from its cache (a hit is
    /// not a call; see [`PortfolioStats::calls_by_tier`]).
    pub cache_hit: bool,
}

/// An escalating stack of reachability backends behind one interface.
///
/// Built from the rigorous tier outward; cheaper tiers are added with
/// [`PortfolioVerifier::with_tier`] and kept sorted by [`CostClass`], so
/// queries always walk cheapest-first and end at the rigorous authority.
///
/// # Example
///
/// ```
/// use dwv_reach::{IntervalReach, LinearReach, PortfolioVerifier, hash_params};
/// use dwv_dynamics::{acc, LinearController};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = acc::reach_avoid_problem();
/// let portfolio = PortfolioVerifier::new(Box::new(LinearReach::for_problem(&problem)?), 0.05)
///     .with_tier(Box::new(IntervalReach::for_problem(&problem)));
/// let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
/// let fp = portfolio.reach_surrogate(&k, hash_params(&[0.5867, -2.0]))?;
/// assert_eq!(fp.len(), problem.horizon_steps + 1);
/// assert_eq!(portfolio.stats().calls_by_tier, vec![1, 0]);
/// # Ok(())
/// # }
/// ```
pub struct PortfolioVerifier<C: ?Sized> {
    /// Cheaper tiers, sorted by cost class (stable in insertion order).
    cheap: Vec<Box<dyn Verifier<C>>>,
    /// The soundness authority; every acceptance-path query ends here.
    rigorous: Box<dyn Verifier<C>>,
    /// One memo per tier — keys don't encode the backend, so sharing a
    /// cache across tiers would alias different enclosures.
    caches: Vec<ReachCache>,
    calls: Vec<AtomicU64>,
    escalations: AtomicU64,
    decided_cheap: AtomicU64,
    slack: f64,
}

impl<C: ?Sized> PortfolioVerifier<C> {
    /// A single-tier portfolio: just the rigorous backend. `slack` is the
    /// verdict margin below which decisive queries refuse a cheap answer.
    #[must_use]
    pub fn new(rigorous: Box<dyn Verifier<C>>, slack: f64) -> Self {
        Self {
            cheap: Vec::new(),
            rigorous,
            caches: vec![ReachCache::new()],
            calls: vec![AtomicU64::new(0)],
            escalations: AtomicU64::new(0),
            decided_cheap: AtomicU64::new(0),
            slack,
        }
    }

    /// Adds a cheaper tier, keeping the cheap tiers sorted by cost class.
    #[must_use]
    pub fn with_tier(mut self, tier: Box<dyn Verifier<C>>) -> Self {
        let pos = self
            .cheap
            .iter()
            .position(|t| t.cost_class() > tier.cost_class())
            .unwrap_or(self.cheap.len());
        self.cheap.insert(pos, tier);
        self.caches.push(ReachCache::new());
        self.calls.push(AtomicU64::new(0));
        self
    }

    /// Total number of tiers (cheap tiers + the rigorous authority).
    #[must_use]
    pub fn n_tiers(&self) -> usize {
        self.cheap.len() + 1
    }

    /// Backend names, cheapest tier first.
    #[must_use]
    pub fn tier_names(&self) -> Vec<&'static str> {
        self.iter_tiers().map(Verifier::name).collect()
    }

    /// The rigorous authority tier.
    #[must_use]
    pub fn rigorous(&self) -> &dyn Verifier<C> {
        &*self.rigorous
    }

    /// The decisive-query margin threshold.
    #[must_use]
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// A snapshot of the per-tier call counters.
    #[must_use]
    pub fn stats(&self) -> PortfolioStats {
        PortfolioStats {
            calls_by_tier: self
                .calls
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            escalations: self.escalations.load(Ordering::Relaxed),
            decided_cheap: self.decided_cheap.load(Ordering::Relaxed),
        }
    }

    /// Cache statistics per tier, cheapest first.
    #[must_use]
    pub fn cache_stats(&self) -> Vec<crate::cache::ReachCacheStats> {
        self.caches.iter().map(ReachCache::stats).collect()
    }

    /// Flushes one controller's entries from every tier cache.
    pub fn invalidate_controller(&self, controller_hash: u64) {
        for cache in &self.caches {
            cache.invalidate_controller(controller_hash);
        }
    }

    fn iter_tiers(&self) -> impl Iterator<Item = &dyn Verifier<C>> {
        self.cheap
            .iter()
            .map(|b| &**b)
            .chain(std::iter::once(&*self.rigorous))
    }

    /// Runs tier `i` through its cache; the execution counter only moves on
    /// an actual backend run (cache hits are free and say nothing about the
    /// verifier bill).
    fn run_tier(
        &self,
        i: usize,
        tier: &dyn Verifier<C>,
        x0: Option<&IntervalBox>,
        controller: &C,
        controller_hash: u64,
    ) -> Result<Flowpipe, ReachError> {
        self.run_tier_traced(i, tier, x0, controller, controller_hash)
            .0
    }

    /// As [`Self::run_tier`], but also reports whether the answer was a
    /// cache hit (the backend closure never ran).
    fn run_tier_traced(
        &self,
        i: usize,
        tier: &dyn Verifier<C>,
        x0: Option<&IntervalBox>,
        controller: &C,
        controller_hash: u64,
    ) -> (Result<Flowpipe, ReachError>, bool) {
        let ran = std::cell::Cell::new(false);
        let compute = || {
            ran.set(true);
            if let Some(c) = self.calls.get(i) {
                c.fetch_add(1, Ordering::Relaxed);
            }
            if dwv_obs::enabled() {
                dwv_obs::counter(&format!("portfolio.tier{i}.calls")).inc();
            }
            match x0 {
                Some(cell) => tier.reach_from(cell, controller),
                None => tier.reach(controller),
            }
        };
        let result = match self.caches.get(i) {
            Some(cache) => {
                // `reach` queries key on the tier's own configured initial
                // set; callers pass the cell explicitly when it varies.
                let cell_hash = x0.map_or(0, hash_cell);
                cache.get_or_compute(controller_hash, cell_hash, compute)
            }
            None => compute(),
        };
        (result, !ran.get())
    }

    fn note_escalation(&self) {
        self.escalations.fetch_add(1, Ordering::Relaxed);
        if dwv_obs::enabled() {
            dwv_obs::counter("portfolio.escalations").inc();
        }
    }

    fn note_decided_cheap(&self) {
        self.decided_cheap.fetch_add(1, Ordering::Relaxed);
        if dwv_obs::enabled() {
            dwv_obs::counter("portfolio.decided_cheap").inc();
        }
    }

    /// Surrogate query from the tiers' configured initial set: the first
    /// tier that encloses wins; a tier is skipped only when it errors.
    ///
    /// # Errors
    ///
    /// The rigorous tier's error when every tier fails to enclose.
    pub fn reach_surrogate(
        &self,
        controller: &C,
        controller_hash: u64,
    ) -> Result<Flowpipe, ReachError> {
        self.walk(None, controller, controller_hash, None).0
    }

    /// Surrogate query from an explicit initial cell.
    ///
    /// # Errors
    ///
    /// As for [`PortfolioVerifier::reach_surrogate`].
    pub fn reach_surrogate_from(
        &self,
        x0: &IntervalBox,
        controller: &C,
        controller_hash: u64,
    ) -> Result<Flowpipe, ReachError> {
        self.walk(Some(x0), controller, controller_hash, None).0
    }

    /// Probe query: the cheapest *trustworthy* answer, without ever
    /// billing the rigorous tier.
    ///
    /// Walks the cheap tiers cheapest-first. A tier's enclosure is
    /// returned immediately when the caller's signed verdict margin clears
    /// the slack (the enclosure is tight enough that its geometry can be
    /// trusted for ranking); otherwise the walk escalates and the most
    /// expensive cheap `Ok` is kept as the fallback answer. The rigorous
    /// tier is consulted only when the portfolio has no cheap tiers at
    /// all.
    ///
    /// This oracle is for the high-volume exploratory queries of
    /// Algorithm 1, whose job is to *rank* candidates, not to certify
    /// them: every enclosure returned is still sound, but a near-boundary
    /// cheap verdict is never authoritative — callers must confirm any
    /// acceptance through [`PortfolioVerifier::reach_rigorous`].
    ///
    /// # Errors
    ///
    /// The last cheap tier's error when every cheap tier fails to enclose
    /// (a candidate whose loop diverges under every cheap geometry is
    /// genuinely hopeless — probes don't pay the rigorous tier to learn
    /// precisely how hopeless).
    pub fn reach_probe(
        &self,
        controller: &C,
        controller_hash: u64,
        margin: &dyn Fn(&Flowpipe) -> f64,
    ) -> Result<Flowpipe, ReachError> {
        if self.cheap.is_empty() {
            return self.reach_rigorous(controller, controller_hash);
        }
        let mut fallback: Option<Result<Flowpipe, ReachError>> = None;
        for (i, tier) in self.cheap.iter().enumerate() {
            match self.run_tier(i, &**tier, None, controller, controller_hash) {
                Ok(fp) => {
                    if margin(&fp) >= self.slack {
                        self.note_decided_cheap();
                        return Ok(fp);
                    }
                    self.note_escalation();
                    fallback = Some(Ok(fp));
                }
                Err(e) => {
                    self.note_escalation();
                    if fallback.is_none() {
                        fallback = Some(Err(e));
                    }
                }
            }
        }
        fallback.unwrap_or_else(|| {
            Err(ReachError::Unsupported(
                "portfolio: no tier produced a result".into(),
            ))
        })
    }

    /// Decisive query: a cheap tier's enclosure is accepted only when
    /// `margin` (the caller's signed verdict margin — positive means
    /// "satisfies reach-avoid with this much room") clears the slack;
    /// otherwise the query escalates, ending at the rigorous tier whose
    /// answer is final either way.
    ///
    /// # Errors
    ///
    /// The rigorous tier's error when every tier fails to enclose.
    pub fn reach_decisive_from(
        &self,
        x0: &IntervalBox,
        controller: &C,
        controller_hash: u64,
        margin: &dyn Fn(&Flowpipe) -> f64,
    ) -> Result<Flowpipe, ReachError> {
        self.walk(Some(x0), controller, controller_hash, Some(margin))
            .0
    }

    /// As [`Self::reach_decisive_from`], additionally returning the
    /// [`QueryProvenance`] of the answer (also present on `Err`: it then
    /// names the last tier that was consulted).
    ///
    /// # Errors
    ///
    /// The rigorous tier's error when every tier fails to enclose.
    pub fn reach_decisive_from_prov(
        &self,
        x0: &IntervalBox,
        controller: &C,
        controller_hash: u64,
        margin: &dyn Fn(&Flowpipe) -> f64,
    ) -> (Result<Flowpipe, ReachError>, QueryProvenance) {
        self.walk(Some(x0), controller, controller_hash, Some(margin))
    }

    /// Rigorous-tier query from the configured initial set (through the
    /// rigorous tier's cache). The acceptance path of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Whatever the rigorous backend returns.
    pub fn reach_rigorous(
        &self,
        controller: &C,
        controller_hash: u64,
    ) -> Result<Flowpipe, ReachError> {
        let i = self.cheap.len();
        self.run_tier(i, &*self.rigorous, None, controller, controller_hash)
    }

    /// Rigorous-tier query from an explicit initial cell.
    ///
    /// # Errors
    ///
    /// Whatever the rigorous backend returns.
    pub fn reach_rigorous_from(
        &self,
        x0: &IntervalBox,
        controller: &C,
        controller_hash: u64,
    ) -> Result<Flowpipe, ReachError> {
        let i = self.cheap.len();
        self.run_tier(i, &*self.rigorous, Some(x0), controller, controller_hash)
    }

    fn walk(
        &self,
        x0: Option<&IntervalBox>,
        controller: &C,
        controller_hash: u64,
        margin: Option<&dyn Fn(&Flowpipe) -> f64>,
    ) -> (Result<Flowpipe, ReachError>, QueryProvenance) {
        let n = self.n_tiers();
        let mut last: Option<ReachError> = None;
        let mut escalations = 0u32;
        let mut last_prov: Option<QueryProvenance> = None;
        for (i, tier) in self.iter_tiers().enumerate() {
            let rigorous_tier = i + 1 == n;
            let (result, cache_hit) =
                self.run_tier_traced(i, tier, x0, controller, controller_hash);
            let prov = QueryProvenance {
                tier_index: i,
                tier_name: tier.name(),
                cost_class: tier.cost_class(),
                escalations,
                cache_hit,
            };
            match result {
                Ok(fp) => {
                    if rigorous_tier {
                        return (Ok(fp), prov);
                    }
                    // A cheap enclosure decides a surrogate query outright;
                    // a decisive query also needs the verdict margin clear
                    // of the slack (soundness allows trusting a cheap
                    // "safe", never a cheap "violates").
                    let decided = match margin {
                        None => true,
                        Some(m) => m(&fp) >= self.slack,
                    };
                    if decided {
                        self.note_decided_cheap();
                        return (Ok(fp), prov);
                    }
                    self.note_escalation();
                    escalations += 1;
                }
                Err(e) => {
                    last = Some(e);
                    if !rigorous_tier {
                        self.note_escalation();
                        escalations += 1;
                    }
                }
            }
            last_prov = Some(prov);
        }
        let err = last.unwrap_or_else(|| {
            ReachError::Unsupported("portfolio: no tier produced a result".into())
        });
        let prov = last_prov.unwrap_or(QueryProvenance {
            tier_index: self.cheap.len(),
            tier_name: self.rigorous.name(),
            cost_class: self.rigorous.cost_class(),
            escalations,
            cache_hit: false,
        });
        (Err(err), prov)
    }
}

impl<C: ?Sized> Verifier<C> for PortfolioVerifier<C> {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    /// The worst-case cost of a query: the rigorous authority's class.
    fn cost_class(&self) -> CostClass {
        self.rigorous.cost_class()
    }

    /// Surrogate semantics (cheapest sound enclosure), uncached key 0 — the
    /// trait entry points are for heterogeneous composition, not the hot
    /// learning loop, which passes real controller hashes.
    fn reach(&self, controller: &C) -> Result<Flowpipe, ReachError> {
        self.walk(None, controller, 0, None).0
    }

    fn reach_from(&self, x0: &IntervalBox, controller: &C) -> Result<Flowpipe, ReachError> {
        self.walk(Some(x0), controller, 0, None).0
    }
}

impl<C: ?Sized> std::fmt::Debug for PortfolioVerifier<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioVerifier")
            .field("tiers", &self.tier_names())
            .field("slack", &self.slack)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::hash_params;
    use crate::interval_reach::IntervalReach;
    use crate::linear::LinearReach;
    use dwv_dynamics::{acc, LinearController};

    fn acc_portfolio(slack: f64) -> PortfolioVerifier<LinearController> {
        let problem = acc::reach_avoid_problem();
        PortfolioVerifier::new(
            Box::new(LinearReach::for_problem(&problem).expect("affine")),
            slack,
        )
        .with_tier(Box::new(IntervalReach::for_problem(&problem)))
    }

    fn good_k() -> (LinearController, u64) {
        let gains = vec![0.5867, -2.0];
        (
            LinearController::new(2, 1, gains.clone()),
            hash_params(&gains),
        )
    }

    #[test]
    fn tiers_sort_cheapest_first() {
        let p = acc_portfolio(0.05);
        assert_eq!(p.tier_names(), vec!["interval", "linear-exact"]);
        assert_eq!(p.n_tiers(), 2);
        assert_eq!(p.rigorous().name(), "linear-exact");
    }

    #[test]
    fn surrogate_decides_on_the_cheap_tier() {
        let p = acc_portfolio(0.05);
        let (k, h) = good_k();
        let fp = p.reach_surrogate(&k, h).expect("encloses");
        assert!(fp.len() > 1);
        let s = p.stats();
        assert_eq!(s.calls_by_tier, vec![1, 0]);
        assert_eq!(s.decided_cheap, 1);
        assert_eq!(s.escalations, 0);
    }

    #[test]
    fn surrogate_escalates_on_cheap_tier_divergence() {
        let p = acc_portfolio(0.05);
        // Strong positive feedback: the interval tier blows up, the exact
        // linear recursion still encloses (finitely).
        let gains = vec![80.0, 80.0];
        let k = LinearController::new(2, 1, gains.clone());
        let r = p.reach_surrogate(&k, hash_params(&gains));
        assert!(r.is_ok(), "rigorous tier should still answer: {r:?}");
        let s = p.stats();
        assert_eq!(s.calls_by_tier, vec![1, 1]);
        assert_eq!(s.escalations, 1);
        assert_eq!(s.decided_cheap, 0);
    }

    #[test]
    fn decisive_escalates_when_margin_is_inside_slack() {
        let p = acc_portfolio(0.5);
        let (k, h) = good_k();
        let x0 = acc::reach_avoid_problem().x0;
        let r = p.reach_decisive_from(&x0, &k, h, &|_| 0.1);
        assert!(r.is_ok());
        let s = p.stats();
        assert_eq!(s.calls_by_tier, vec![1, 1], "thin margin must escalate");
        assert_eq!(s.escalations, 1);
        assert_eq!(s.decided_cheap, 0);
    }

    #[test]
    fn decisive_stops_cheap_when_margin_clears_slack() {
        let p = acc_portfolio(0.5);
        let (k, h) = good_k();
        let x0 = acc::reach_avoid_problem().x0;
        let r = p.reach_decisive_from(&x0, &k, h, &|_| 2.0);
        assert!(r.is_ok());
        assert_eq!(p.stats().calls_by_tier, vec![1, 0]);
        assert_eq!(p.stats().decided_cheap, 1);
    }

    #[test]
    fn probe_decides_on_the_cheap_tier_when_margin_clears() {
        let p = acc_portfolio(0.05);
        let (k, h) = good_k();
        let fp = p.reach_probe(&k, h, &|_| 10.0).expect("encloses");
        assert!(fp.len() > 1);
        assert_eq!(p.stats().calls_by_tier, vec![1, 0]);
        assert_eq!(p.stats().decided_cheap, 1);
    }

    #[test]
    fn probe_never_bills_the_rigorous_tier() {
        let problem = acc::reach_avoid_problem();
        let p = PortfolioVerifier::new(
            Box::new(LinearReach::for_problem(&problem).expect("affine")),
            0.05,
        )
        .with_tier(Box::new(IntervalReach::for_problem(&problem)))
        .with_tier(Box::new(
            crate::zonotope_reach::ZonotopeReach::for_problem(&problem).expect("affine"),
        ));
        let (k, h) = good_k();
        // A margin that never clears: the probe escalates through every
        // cheap tier and settles on the tightest cheap answer — the exact
        // tier stays untouched.
        let fp = p
            .reach_probe(&k, h, &|_| f64::NEG_INFINITY)
            .expect("cheap tiers enclose");
        assert!(fp.len() > 1);
        assert_eq!(p.stats().calls_by_tier, vec![1, 1, 0]);
        assert_eq!(p.stats().decided_cheap, 0);
        assert_eq!(p.stats().escalations, 2);
    }

    #[test]
    fn probe_on_single_tier_portfolio_uses_the_rigorous_tier() {
        let problem = acc::reach_avoid_problem();
        let p: PortfolioVerifier<LinearController> = PortfolioVerifier::new(
            Box::new(LinearReach::for_problem(&problem).expect("affine")),
            0.05,
        );
        let (k, h) = good_k();
        assert!(p.reach_probe(&k, h, &|_| 0.0).is_ok());
        assert_eq!(p.stats().calls_by_tier, vec![1]);
    }

    #[test]
    fn per_tier_caches_do_not_alias_and_hits_are_not_calls() {
        let p = acc_portfolio(0.05);
        let (k, h) = good_k();
        let a = p.reach_surrogate(&k, h).expect("encloses");
        let b = p.reach_surrogate(&k, h).expect("encloses");
        assert_eq!(a, b, "cached replay must be bit-identical");
        let s = p.stats();
        assert_eq!(s.calls_by_tier, vec![1, 0], "second query was a hit");
        // The rigorous path computes its own enclosure even for the same
        // key — per-tier caches must not hand back the cheap tier's pipe.
        let rig = p.reach_rigorous(&k, h).expect("encloses");
        assert_ne!(a, rig, "tiers produce different enclosures");
        assert_eq!(p.stats().calls_by_tier, vec![1, 1]);
        let cs = p.cache_stats();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].hits, 1);
        assert_eq!(cs[1].hits, 0);
    }

    #[test]
    fn rigorous_entry_point_skips_cheap_tiers() {
        let p = acc_portfolio(0.05);
        let (k, h) = good_k();
        let x0 = acc::reach_avoid_problem().x0;
        let fp = p.reach_rigorous_from(&x0, &k, h).expect("encloses");
        assert!(fp.len() > 1);
        assert_eq!(p.stats().calls_by_tier, vec![0, 1]);
        assert_eq!(p.stats().decided_cheap, 0);
    }

    #[test]
    fn invalidate_controller_flushes_every_tier() {
        let p = acc_portfolio(0.05);
        let (k, h) = good_k();
        let _ = p.reach_surrogate(&k, h);
        let _ = p.reach_rigorous(&k, h);
        p.invalidate_controller(h);
        assert!(p.cache_stats().iter().all(|s| s.entries == 0));
    }

    #[test]
    fn provenance_names_the_deciding_tier() {
        let p = acc_portfolio(0.5);
        let (k, h) = good_k();
        let x0 = acc::reach_avoid_problem().x0;
        // Wide margin: the interval tier decides, zero escalations.
        let (r, prov) = p.reach_decisive_from_prov(&x0, &k, h, &|_| 2.0);
        assert!(r.is_ok());
        assert_eq!(prov.tier_index, 0);
        assert_eq!(prov.tier_name, "interval");
        assert_eq!(prov.cost_class, CostClass::Interval);
        assert_eq!(prov.escalations, 0);
        assert!(!prov.cache_hit, "first query computes");
        // Same query again: same decision, now a cache hit.
        let (_, prov2) = p.reach_decisive_from_prov(&x0, &k, h, &|_| 2.0);
        assert!(prov2.cache_hit, "replay comes from the tier cache");
        assert_eq!(p.stats().calls_by_tier, vec![1, 0]);
    }

    #[test]
    fn provenance_tracks_escalation_to_the_rigorous_tier() {
        let p = acc_portfolio(0.5);
        let (k, h) = good_k();
        let x0 = acc::reach_avoid_problem().x0;
        let (r, prov) = p.reach_decisive_from_prov(&x0, &k, h, &|_| 0.1);
        assert!(r.is_ok());
        assert_eq!(prov.tier_index, 1, "thin margin escalates to rigorous");
        assert_eq!(prov.tier_name, "linear-exact");
        assert_eq!(prov.cost_class, CostClass::Exact);
        assert_eq!(prov.escalations, 1);
        assert!(!prov.cache_hit);
    }

    #[test]
    fn trait_object_composition_works() {
        let p = acc_portfolio(0.05);
        let (k, _) = good_k();
        let v: &dyn Verifier<LinearController> = &p;
        assert_eq!(v.name(), "portfolio");
        assert_eq!(v.cost_class(), CostClass::Exact);
        assert!(v.reach(&k).is_ok());
    }
}
