//! Seed-driven closed-loop instance generators for falsification harnesses.
//!
//! Produces randomized — but dissipative, hence integrable — polynomial
//! vector fields and initial sets for the flowpipe oracle family of
//! `dwv-check`: the linear part has strictly negative diagonal entries
//! dominating the off-diagonal and nonlinear coefficients, so validated
//! integration over a short step converges for almost every draw (draws
//! where Picard validation still diverges are skipped by the harness, which
//! is sound — refusing to enclose is never a soundness violation).

use dwv_interval::arbitrary::{f64_in, narrow_box};
use dwv_interval::IntervalBox;
use dwv_poly::Polynomial;
use dwv_taylor::OdeRhs;

/// A random dissipative polynomial vector field `ẋ = f(x, u)` with
/// `n_state` states and `n_input` held inputs.
///
/// Per state dimension `i` the field is
/// `−aᵢ xᵢ + Σⱼ bᵢⱼ xⱼ + Σₖ cᵢₖ uₖ [+ q xⱼ xₗ]` with `aᵢ ∈ [0.3, 1.5]`,
/// `|bᵢⱼ| ≤ 0.3`, `|cᵢₖ| ≤ 0.5` and, when `quadratic` is set, one extra
/// degree-2 term with `|q| ≤ 0.1`.
pub fn dissipative_rhs(
    next: &mut impl FnMut() -> u64,
    n_state: usize,
    n_input: usize,
    quadratic: bool,
) -> OdeRhs {
    let nvars = n_state + n_input;
    let field = (0..n_state)
        .map(|i| {
            let mut terms: Vec<(Vec<u32>, f64)> = Vec::new();
            for j in 0..n_state {
                let c = if i == j {
                    -f64_in(next(), 0.3, 1.5)
                } else {
                    f64_in(next(), -0.3, 0.3)
                };
                let exps: Vec<u32> = (0..nvars).map(|v| u32::from(v == j)).collect();
                terms.push((exps, c));
            }
            for k in 0..n_input {
                let exps: Vec<u32> = (0..nvars).map(|v| u32::from(v == n_state + k)).collect();
                terms.push((exps, f64_in(next(), -0.5, 0.5)));
            }
            if quadratic {
                assert!(n_state > 0, "quadratic term requires a state variable");
                let j = (next() as usize) % n_state;
                let l = (next() as usize) % n_state;
                let exps: Vec<u32> = (0..nvars)
                    .map(|v| u32::from(v == j) + u32::from(v == l))
                    .collect();
                terms.push((exps, f64_in(next(), -0.1, 0.1)));
            }
            Polynomial::from_terms(nvars, terms)
        })
        .collect();
    OdeRhs::new(n_state, n_input, field)
}

/// A random bounded initial box for an `n_state`-dimensional flow: centers
/// of magnitude at most 1, per-dimension width at most `max_width`.
pub fn initial_box(next: &mut impl FnMut() -> u64, n_state: usize, max_width: f64) -> IntervalBox {
    narrow_box(next, n_state, 1.0, max_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn rhs_shape_and_determinism() {
        let mut a = stream(3);
        let mut b = stream(3);
        let f = dissipative_rhs(&mut a, 3, 1, true);
        let g = dissipative_rhs(&mut b, 3, 1, true);
        assert_eq!(f.n_state(), 3);
        assert_eq!(f.n_input(), 1);
        assert_eq!(f.field(), g.field());
        assert!(f.degree() <= 2);
    }

    #[test]
    fn integrable_by_default_params() {
        use dwv_taylor::{unit_domain, OdeIntegrator, TmVector};
        let mut s = stream(77);
        let rhs = dissipative_rhs(&mut s, 2, 0, false);
        let x0 = TmVector::from_box(&initial_box(&mut s, 2, 0.2));
        let integ = OdeIntegrator::default();
        let u = TmVector::new(vec![]);
        let step = integ.flow_step(&x0, &u, &rhs, 0.05, &unit_domain(2));
        assert!(step.is_ok(), "dissipative field should integrate: {step:?}");
    }
}
