//! Zonotope-based reachability for disturbed LTI systems.
//!
//! Extends the exact linear verifier to systems with an additive bounded
//! disturbance:
//!
//! ```text
//! x[t+1] = (A_d + B_d Θ) x[t] + c_d + w[t],   w[t] ∈ W
//! ```
//!
//! Per step the reach set is mapped through the closed loop (zonotopes are
//! closed under affine maps) and Minkowski-summed with the disturbance box —
//! the textbook zonotope recursion. [`Zonotope::reduce_order`] keeps the
//! representation bounded over long horizons (each reduction is a sound
//! over-approximation). With `W = ∅` and no order cap the result coincides
//! with [`crate::LinearReach`]'s boxes; with a disturbance it answers the
//! *robust* reach-avoid question the paper lists under uncertainty handling.

use crate::error::ReachError;
use crate::flowpipe::{Flowpipe, StepEnclosure};
use crate::sweep::affine_sweep_box_chord;
use dwv_dynamics::linalg::{discretize, Matrix};
use dwv_dynamics::{LinearController, ReachAvoidProblem};
use dwv_geom::Zonotope;
use dwv_interval::IntervalBox;

/// Zonotope-recursion verifier for (optionally disturbed) affine systems.
///
/// # Example
///
/// ```
/// use dwv_reach::ZonotopeReach;
/// use dwv_dynamics::{acc, LinearController};
/// use dwv_interval::IntervalBox;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = acc::reach_avoid_problem();
/// // Per-step disturbance: ±0.05 on the gap dynamics (front-car jitter).
/// let w = IntervalBox::from_bounds(&[(-0.05, 0.05), (0.0, 0.0)]);
/// let verifier = ZonotopeReach::for_problem(&problem)?.with_disturbance(w);
/// let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
/// let fp = verifier.reach(&k)?;
/// assert_eq!(fp.len(), problem.horizon_steps + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ZonotopeReach {
    ad: Matrix,
    bd: Matrix,
    cd: Vec<f64>,
    a: Matrix,
    b: Matrix,
    c: Vec<f64>,
    x0: IntervalBox,
    steps: usize,
    delta: f64,
    disturbance: Option<IntervalBox>,
    max_order: f64,
}

impl ZonotopeReach {
    /// Builds the verifier for a problem with affine dynamics (no
    /// disturbance yet; see [`ZonotopeReach::with_disturbance`]).
    ///
    /// # Errors
    ///
    /// [`ReachError::Unsupported`] when the dynamics are not affine.
    pub fn for_problem(problem: &ReachAvoidProblem) -> Result<Self, ReachError> {
        let (a, b, c) = problem.dynamics.linear_parts().ok_or_else(|| {
            ReachError::Unsupported(format!(
                "dynamics '{}' are not affine; use the Taylor-model verifier",
                problem.dynamics.name()
            ))
        })?;
        let c_col = Matrix::from_rows(c.iter().map(|&v| vec![v]).collect());
        let b_aug = b.hcat(&c_col);
        let (ad, bd_aug) = discretize(&a, &b_aug, problem.delta);
        let m = b.ncols();
        let bd = bd_aug.block(0, 0, a.nrows(), m);
        let cd_m = bd_aug.block(0, m, a.nrows(), 1);
        let cd = (0..a.nrows()).map(|i| cd_m.get(i, 0)).collect();
        Ok(Self {
            ad,
            bd,
            cd,
            a,
            b,
            c,
            x0: problem.x0.clone(),
            steps: problem.horizon_steps,
            delta: problem.delta,
            disturbance: None,
            max_order: 20.0,
        })
    }

    /// Adds a per-step additive disturbance box `W` (in discrete-time
    /// coordinates: `x[t+1] += w[t]`, `w[t] ∈ W`).
    ///
    /// # Panics
    ///
    /// Panics if `w`'s dimension differs from the state's or `w` is
    /// unbounded.
    #[must_use]
    pub fn with_disturbance(mut self, w: IntervalBox) -> Self {
        assert_eq!(w.dim(), self.x0.dim(), "disturbance dimension mismatch");
        assert!(w.is_finite(), "disturbance must be bounded");
        self.disturbance = Some(w);
        self
    }

    /// Caps the zonotope order (generators per dimension); each reduction is
    /// a sound over-approximation.
    ///
    /// # Panics
    ///
    /// Panics if `order < 1`.
    #[must_use]
    pub fn with_max_order(mut self, order: f64) -> Self {
        assert!(order >= 1.0, "order must allow at least a box");
        self.max_order = order;
        self
    }

    /// Overrides the initial set (for Algorithm-2 cell searches).
    #[must_use]
    pub fn with_initial_set(mut self, x0: IntervalBox) -> Self {
        self.x0 = x0;
        self
    }

    /// Computes the reach sets `X_r[0..=steps]` as zonotopes.
    ///
    /// # Errors
    ///
    /// [`ReachError::Diverged`] if the recursion overflows f64 range.
    pub fn reach(&self, controller: &LinearController) -> Result<Flowpipe, ReachError> {
        let _run = dwv_obs::span("reach.run");
        let n = self.x0.dim();
        // Closed loop M = Ad + Bd Θ as a row-major Vec<Vec<f64>>.
        let mut k = Matrix::zeros(self.bd.ncols(), n);
        for i in 0..self.bd.ncols() {
            for j in 0..n {
                k.set(i, j, controller.gain(i, j));
            }
        }
        let m_mat = self.ad.add(&self.bd.matmul(&k));
        let m: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| m_mat.get(i, j)).collect())
            .collect();
        let w = self.disturbance.as_ref().map(Zonotope::from_box);

        let mut z = Zonotope::from_box(&self.x0);
        let mut steps = Vec::with_capacity(self.steps + 1);
        steps.push(StepEnclosure {
            t0: 0.0,
            t1: 0.0,
            enclosure: self.x0.clone(),
            end_box: self.x0.clone(),
            polygon: if n == 2 { z.to_polygon() } else { None },
        });
        for t in 1..=self.steps {
            let prev_box = z.bounding_box();
            let u_box: Vec<dwv_interval::Interval> = (0..self.bd.ncols())
                .map(|i| {
                    let mut acc = dwv_interval::Interval::ZERO;
                    for j in 0..n {
                        acc += prev_box.interval(j) * controller.gain(i, j);
                    }
                    acc
                })
                .collect();
            z = z.affine_image(&m, &self.cd);
            if let Some(w) = &w {
                z = z.minkowski_sum(w);
            }
            z = z.reduce_order(self.max_order);
            if z.center().iter().any(|v| !v.is_finite()) {
                return Err(ReachError::Diverged {
                    step: t,
                    source: dwv_taylor::FlowpipeError::Diverged {
                        last_radius: f64::INFINITY,
                    },
                });
            }
            let end_box = z.bounding_box();
            let mut sweep = affine_sweep_box_chord(
                &self.a, &self.b, &self.c, &prev_box, &end_box, &u_box, self.delta,
            );
            if let Some(wbox) = &self.disturbance {
                // The per-step additive disturbance also acts between
                // samples: widen the sweep accordingly.
                sweep = sweep
                    .intervals()
                    .iter()
                    .enumerate()
                    .map(|(i, iv)| *iv + wbox.interval(i))
                    .collect();
            }
            steps.push(StepEnclosure {
                t0: (t - 1) as f64 * self.delta,
                t1: t as f64 * self.delta,
                enclosure: sweep,
                end_box,
                polygon: if n == 2 { z.to_polygon() } else { None },
            });
        }
        Ok(Flowpipe::new(steps))
    }
}

impl crate::verifier::Verifier<LinearController> for ZonotopeReach {
    fn name(&self) -> &'static str {
        "zonotope"
    }

    fn cost_class(&self) -> crate::verifier::CostClass {
        crate::verifier::CostClass::Zonotope
    }

    fn reach(&self, controller: &LinearController) -> Result<Flowpipe, ReachError> {
        ZonotopeReach::reach(self, controller)
    }

    fn reach_from(
        &self,
        x0: &IntervalBox,
        controller: &LinearController,
    ) -> Result<Flowpipe, ReachError> {
        self.clone().with_initial_set(x0.clone()).reach(controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearReach;
    use dwv_dynamics::acc;
    use dwv_dynamics::simulate::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gain() -> LinearController {
        LinearController::new(2, 1, vec![0.5867, -2.0])
    }

    #[test]
    fn matches_exact_linear_reach_without_disturbance() {
        let p = acc::reach_avoid_problem();
        let zr = ZonotopeReach::for_problem(&p).unwrap();
        let lr = LinearReach::for_problem(&p).unwrap();
        let k = gain();
        let fz = zr.reach(&k).unwrap();
        let fl = lr.reach(&k).unwrap();
        for (a, b) in fz.steps().iter().zip(fl.steps()) {
            // Zonotope boxes must enclose the exact boxes and agree tightly
            // (the undisturbed recursion is exact for both).
            assert!(a.enclosure.inflate(1e-6).contains(&b.enclosure));
            assert!(b.enclosure.inflate(1e-6).contains(&a.enclosure));
        }
    }

    #[test]
    fn disturbance_grows_the_sets_monotonically() {
        let p = acc::reach_avoid_problem();
        let k = gain();
        let base = ZonotopeReach::for_problem(&p).unwrap().reach(&k).unwrap();
        let w = IntervalBox::from_bounds(&[(-0.02, 0.02), (-0.02, 0.02)]);
        let disturbed = ZonotopeReach::for_problem(&p)
            .unwrap()
            .with_disturbance(w)
            .reach(&k)
            .unwrap();
        for (a, b) in disturbed.steps().iter().zip(base.steps()).skip(1) {
            assert!(
                a.enclosure.contains(&b.enclosure),
                "disturbed set must contain the nominal set"
            );
            assert!(a.enclosure.volume() > b.enclosure.volume());
        }
    }

    #[test]
    fn disturbed_reach_contains_disturbed_simulations() {
        let p = acc::reach_avoid_problem();
        let k = gain();
        let wbox = IntervalBox::from_bounds(&[(-0.05, 0.05), (-0.05, 0.05)]);
        let v = ZonotopeReach::for_problem(&p)
            .unwrap()
            .with_disturbance(wbox.clone());
        let fp = v.reach(&k).unwrap();
        // Simulate the *discrete* closed loop with random disturbances.
        let n = 2;
        let mut km = Matrix::zeros(1, n);
        for j in 0..n {
            km.set(0, j, k.gain(0, j));
        }
        let m = v.ad.add(&v.bd.matmul(&km));
        let mut rng = StdRng::seed_from_u64(0xD157);
        for _ in 0..10 {
            let mut x: Vec<f64> = (0..n)
                .map(|i| {
                    let iv = p.x0.interval(i);
                    rng.gen_range(iv.lo()..=iv.hi())
                })
                .collect();
            for t in 1..=p.horizon_steps {
                let mut next = m.matvec(&x);
                for (i, xi) in next.iter_mut().enumerate().take(n) {
                    let wi = wbox.interval(i);
                    *xi += v.cd[i] + rng.gen_range(wi.lo()..=wi.hi());
                }
                x = next;
                assert!(
                    fp.steps()[t].enclosure.inflate(1e-9).contains_point(&x),
                    "step {t}: disturbed state {x:?} escapes enclosure"
                );
            }
        }
    }

    #[test]
    fn order_reduction_keeps_soundness() {
        let p = acc::reach_avoid_problem();
        let k = gain();
        let w = IntervalBox::from_bounds(&[(-0.02, 0.02), (-0.02, 0.02)]);
        let unreduced = ZonotopeReach::for_problem(&p)
            .unwrap()
            .with_disturbance(w.clone())
            .with_max_order(1000.0)
            .reach(&k)
            .unwrap();
        let reduced = ZonotopeReach::for_problem(&p)
            .unwrap()
            .with_disturbance(w)
            .with_max_order(2.0)
            .reach(&k)
            .unwrap();
        for (r, u) in reduced.steps().iter().zip(unreduced.steps()) {
            assert!(
                r.enclosure.inflate(1e-9).contains(&u.enclosure),
                "reduction must over-approximate"
            );
        }
    }

    #[test]
    fn nonlinear_rejected() {
        let p = dwv_dynamics::oscillator::reach_avoid_problem();
        assert!(matches!(
            ZonotopeReach::for_problem(&p),
            Err(ReachError::Unsupported(_))
        ));
    }

    #[test]
    fn undisturbed_matches_continuous_simulation() {
        let p = acc::reach_avoid_problem();
        let k = gain();
        let fp = ZonotopeReach::for_problem(&p).unwrap().reach(&k).unwrap();
        let sim = Simulator::new(p.dynamics.clone(), p.delta);
        let traj = sim.rollout(&[123.0, 50.0], &k, p.horizon_steps);
        for (t, x) in traj.states.iter().enumerate() {
            assert!(fp.steps()[t].enclosure.inflate(1e-6).contains_point(x));
        }
    }
}
