//! Verifier errors.

use dwv_taylor::FlowpipeError;
use std::fmt;

/// Errors a reachability verifier can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachError {
    /// The Taylor-model flowpipe diverged at a control step — the
    /// over-approximation blew up (the paper's "NAN occurs … after 3 steps"
    /// failure mode for hard-to-verify controllers, Fig. 8).
    Diverged {
        /// The control step (0-based) at which integration failed.
        step: usize,
        /// The underlying flowpipe error.
        source: FlowpipeError,
    },
    /// The verifier does not support the given system/controller pairing.
    Unsupported(String),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::Diverged { step, source } => {
                write!(f, "flowpipe diverged at control step {step}: {source}")
            }
            ReachError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for ReachError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReachError::Diverged { source, .. } => Some(source),
            ReachError::Unsupported(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ReachError::Diverged {
            step: 3,
            source: FlowpipeError::Diverged { last_radius: 1e3 },
        };
        let s = format!("{e}");
        assert!(s.contains("step 3"));
        assert!(std::error::Error::source(&e).is_some());
        let u = ReachError::Unsupported("nope".into());
        assert!(format!("{u}").contains("nope"));
        assert!(std::error::Error::source(&u).is_none());
    }
}
