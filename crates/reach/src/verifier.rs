//! The first-class verifier abstraction: every reachability backend is a
//! [`Verifier`] — an object-safe `Ψ(f, X₀, κ_θ)` oracle with cost-class
//! metadata — so callers (the portfolio, Algorithm 1, the cell sweep) can
//! hold heterogeneous backends behind one interface.
//!
//! The companion [`ControlEnclosure`] trait is the controller-side
//! capability the box-propagation backends need: a directed-rounding
//! enclosure of the controller's image of a state box. Linear controllers
//! get it from outward-rounded interval matrix–vector products, neural
//! controllers from the plain interval forward pass of `dwv-nn`.

use crate::error::ReachError;
use crate::flowpipe::Flowpipe;
use dwv_dynamics::{Controller, LinearController, NnController};
use dwv_interval::{Interval, IntervalBox};

/// The asymptotic cost family of a verifier backend, ordered cheapest
/// first. The portfolio escalates along this order and treats the
/// most-expensive configured tier as the rigorous authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostClass {
    /// Directed interval / mixed-monotone box propagation — one field
    /// evaluation per step, the cheapest sound enclosure available.
    Interval,
    /// Zonotope (template polytope) recursion — generator matrices per
    /// step, tighter than boxes under rotation.
    Zonotope,
    /// Exact vertex recursion for affine systems — exact up to f64
    /// rounding, exponential in dimension.
    Exact,
    /// Validated Taylor-model flowpipes — Picard iteration over polynomial
    /// models, the rigorous tier for nonlinear neural-network loops.
    TaylorModel,
}

impl std::fmt::Display for CostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostClass::Interval => write!(f, "interval"),
            CostClass::Zonotope => write!(f, "zonotope"),
            CostClass::Exact => write!(f, "exact"),
            CostClass::TaylorModel => write!(f, "taylor-model"),
        }
    }
}

/// An object-safe reachability oracle over one controller family `C`.
///
/// Implementations must be *sound*: every returned [`Flowpipe`] encloses
/// all trajectories of the closed loop from the initial set, step by step.
/// Refusing to enclose (an error) is always acceptable; a wrong enclosure
/// never is.
///
/// # Example
///
/// ```
/// use dwv_reach::{LinearReach, Verifier};
/// use dwv_dynamics::{acc, LinearController};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = acc::reach_avoid_problem();
/// let v: Box<dyn Verifier<LinearController>> =
///     Box::new(LinearReach::for_problem(&problem)?);
/// let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
/// let fp = v.reach(&k)?;
/// assert_eq!(fp.len(), problem.horizon_steps + 1);
/// # Ok(())
/// # }
/// ```
pub trait Verifier<C: ?Sized>: Sync {
    /// Short backend name for reports and counters.
    fn name(&self) -> &'static str;

    /// The backend's cost family (escalation order of the portfolio).
    fn cost_class(&self) -> CostClass;

    /// Computes the reachable-set enclosure from the verifier's configured
    /// initial set.
    ///
    /// # Errors
    ///
    /// [`ReachError::Diverged`] when the enclosure blows up;
    /// [`ReachError::Unsupported`] when the system/controller pairing is
    /// outside the backend's domain.
    fn reach(&self, controller: &C) -> Result<Flowpipe, ReachError>;

    /// Computes the reachable-set enclosure from an explicit initial cell
    /// (the Algorithm 2 per-cell query).
    ///
    /// # Errors
    ///
    /// As for [`Verifier::reach`].
    fn reach_from(&self, x0: &IntervalBox, controller: &C) -> Result<Flowpipe, ReachError>;
}

/// A controller that can bound its own output over a state box with
/// directed rounding — the capability the interval backend propagates
/// through.
pub trait ControlEnclosure: Controller {
    /// An outward-rounded enclosure of `{κ(x) : x ∈ box}`.
    fn control_enclosure(&self, x: &[Interval]) -> Vec<Interval>;

    /// An enclosure of the controller's input Jacobian over the box:
    /// `out[i][j] ⊇ {∂κ_i/∂x_j(x) : x ∈ box}` (the Clarke generalized
    /// Jacobian across ReLU kinks).
    ///
    /// Mean-value enclosures of the closed loop need this to keep the
    /// state–control correlation that plain interval evaluation discards —
    /// without it, box propagation of a stabilized loop still inflates at
    /// the open-loop rate.
    fn control_jacobian(&self, x: &[Interval]) -> Vec<Vec<Interval>>;
}

impl ControlEnclosure for LinearController {
    fn control_enclosure(&self, x: &[Interval]) -> Vec<Interval> {
        (0..self.n_input())
            .map(|i| {
                x.iter()
                    .enumerate()
                    .fold(Interval::ZERO, |acc, (j, xj)| acc + *xj * self.gain(i, j))
            })
            .collect()
    }

    fn control_jacobian(&self, x: &[Interval]) -> Vec<Vec<Interval>> {
        (0..self.n_input())
            .map(|i| {
                (0..x.len())
                    .map(|j| Interval::point(self.gain(i, j)))
                    .collect()
            })
            .collect()
    }
}

impl ControlEnclosure for NnController {
    fn control_enclosure(&self, x: &[Interval]) -> Vec<Interval> {
        let scale = self.output_scale();
        self.network()
            .forward_interval(x)
            .into_iter()
            .map(|y| y * scale)
            .collect()
    }

    fn control_jacobian(&self, x: &[Interval]) -> Vec<Vec<Interval>> {
        let scale = self.output_scale();
        self.network()
            .jacobian_interval(x)
            .into_iter()
            .map(|row| row.into_iter().map(|d| d * scale).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_nn::{Activation, Network};

    #[test]
    fn cost_classes_are_ordered_cheapest_first() {
        assert!(CostClass::Interval < CostClass::Zonotope);
        assert!(CostClass::Zonotope < CostClass::Exact);
        assert!(CostClass::Exact < CostClass::TaylorModel);
        assert_eq!(format!("{}", CostClass::Interval), "interval");
        assert_eq!(format!("{}", CostClass::TaylorModel), "taylor-model");
    }

    #[test]
    fn linear_control_enclosure_encloses_corner_controls() {
        let k = LinearController::new(2, 1, vec![0.6, -2.0]);
        let bx = IntervalBox::from_bounds(&[(100.0, 110.0), (30.0, 35.0)]);
        let enc = k.control_enclosure(bx.intervals());
        assert_eq!(enc.len(), 1);
        for corner in bx.corners() {
            let u = k.control(&corner);
            assert!(
                enc[0].contains_value(u[0]),
                "control {} at {corner:?} outside {}",
                u[0],
                enc[0]
            );
        }
    }

    #[test]
    fn nn_control_enclosure_encloses_sampled_controls() {
        let ctrl = NnController::with_output_scale(
            Network::new(&[2, 8, 1], Activation::ReLU, Activation::Tanh, 5),
            10.0,
        );
        let bx = IntervalBox::from_bounds(&[(-0.6, 0.2), (0.1, 0.9)]);
        let enc = ctrl.control_enclosure(bx.intervals());
        for p in bx.grid(5) {
            let u = ctrl.control(&p);
            assert!(
                enc[0].contains_value(u[0]),
                "control {} at {p:?} outside {}",
                u[0],
                enc[0]
            );
        }
    }
}
