//! Taylor-model reachability for non-linear systems under neural-network
//! control — the ReachNN / POLAR stand-in (paper §3.1).
//!
//! Per control step: abstract the network over the current state enclosure
//! (via an [`NnAbstraction`]), then flow the polynomial ODE for one
//! zero-order-hold period with the validated Picard integrator from
//! `dwv-taylor`. Two dependency-tracking modes control the wrapping effect:
//!
//! * [`DependencyTracking::Symbolic`] — state Taylor models stay expressed
//!   over the *initial-set* variables across steps (Flow\*-style), keeping
//!   the dependency between steps and avoiding most wrapping;
//! * [`DependencyTracking::BoxReinit`] — the state is re-enclosed in a fresh
//!   box every step (cheaper, looser). This is the "less tight" end of the
//!   paper's §4 tightness discussion and one axis of the tightness bench.

use crate::error::ReachError;
use crate::flowpipe::{Flowpipe, StepEnclosure};
use crate::nn_abstraction::NnAbstraction;
use dwv_dynamics::{NnController, ReachAvoidProblem};
use dwv_interval::Interval;
use dwv_taylor::{OdeIntegrator, OdeRhs, StepFlow, TmVector, TmWorkspace};

/// How state enclosures carry dependency information between control steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DependencyTracking {
    /// Keep Taylor models over the initial-set variables (tight, slower).
    #[default]
    Symbolic,
    /// Re-initialize from the box enclosure each step (loose, faster).
    BoxReinit,
}

/// Configuration of the Taylor-model verifier.
#[derive(Debug, Clone)]
pub struct TaylorReachConfig {
    /// The validated integrator (order, Picard/validation parameters).
    pub integrator: OdeIntegrator,
    /// Dependency tracking mode.
    pub dependency: DependencyTracking,
    /// Use Bernstein forms when converting Taylor models to boxes (tighter
    /// step enclosures, slower).
    pub bernstein_ranges: bool,
}

impl Default for TaylorReachConfig {
    fn default() -> Self {
        Self {
            integrator: OdeIntegrator::with_order(3),
            dependency: DependencyTracking::Symbolic,
            bernstein_ranges: false,
        }
    }
}

impl TaylorReachConfig {
    /// A "tight" preset: higher order, symbolic dependencies, Bernstein
    /// ranges — the expensive end of the paper's tightness trade-off.
    #[must_use]
    pub fn tight() -> Self {
        Self {
            integrator: OdeIntegrator::with_order(5),
            dependency: DependencyTracking::Symbolic,
            bernstein_ranges: true,
        }
    }

    /// A "loose" preset: low order, box re-initialization.
    #[must_use]
    pub fn loose() -> Self {
        Self {
            integrator: OdeIntegrator::with_order(2),
            dependency: DependencyTracking::BoxReinit,
            bernstein_ranges: false,
        }
    }
}

/// Taylor-model reachability verifier for NN-controlled non-linear systems.
///
/// # Example
///
/// ```no_run
/// use dwv_reach::{TaylorAbstraction, TaylorReach, TaylorReachConfig};
/// use dwv_dynamics::{oscillator, NnController};
/// use dwv_nn::{Activation, Network};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = oscillator::reach_avoid_problem();
/// let verifier = TaylorReach::new(
///     &problem,
///     TaylorAbstraction::default(),
///     TaylorReachConfig::default(),
/// );
/// let ctrl = NnController::new(Network::new(&[2, 10, 1], Activation::ReLU, Activation::Tanh, 0));
/// let flowpipe = verifier.reach(&ctrl)?;
/// println!("{} steps verified", flowpipe.len());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct TaylorReach<A> {
    rhs: OdeRhs,
    x0: dwv_interval::IntervalBox,
    delta: f64,
    steps: usize,
    abstraction: A,
    config: TaylorReachConfig,
}

impl<A: NnAbstraction> TaylorReach<A> {
    /// Builds the verifier for a problem.
    #[must_use]
    pub fn new(problem: &ReachAvoidProblem, abstraction: A, config: TaylorReachConfig) -> Self {
        Self {
            rhs: problem.dynamics.vector_field(),
            x0: problem.x0.clone(),
            delta: problem.delta,
            steps: problem.horizon_steps,
            abstraction,
            config,
        }
    }

    /// Overrides the initial set (used by the Algorithm-2 initial-set
    /// search, which verifies sub-boxes of `X₀`).
    #[must_use]
    pub fn with_initial_set(mut self, x0: dwv_interval::IntervalBox) -> Self {
        self.x0 = x0;
        self
    }

    /// Overrides the number of control steps.
    #[must_use]
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// The abstraction in use.
    #[must_use]
    pub fn abstraction(&self) -> &A {
        &self.abstraction
    }

    /// Computes the flowpipe for the controller.
    ///
    /// Step 0 is the initial set at `t = 0`; step `k ≥ 1` covers the time
    /// range `[(k−1)δ, kδ]`.
    ///
    /// # Errors
    ///
    /// [`ReachError::Diverged`] when the flowpipe blows up at some step —
    /// the behaviour the paper reports as `NaN`/`Unknown` verification
    /// results for hard-to-verify baseline controllers.
    pub fn reach(&self, controller: &NnController) -> Result<Flowpipe, ReachError> {
        self.reach_from(&self.x0, controller)
    }

    /// [`TaylorReach::reach`] from an explicit initial set, leaving the
    /// verifier untouched — the Algorithm-2 initial-set sweep verifies many
    /// sub-boxes of `X₀` with one verifier instead of cloning it per cell.
    ///
    /// One [`TmWorkspace`] is created per call and threaded through every
    /// abstraction and flow step of the run, so the whole verification
    /// performs O(1) amortized heap allocations per Taylor-model operation
    /// and shares one Bernstein range memo across steps.
    ///
    /// # Errors
    ///
    /// [`ReachError::Diverged`] when the flowpipe blows up at some step.
    pub fn reach_from(
        &self,
        x0: &dwv_interval::IntervalBox,
        controller: &NnController,
    ) -> Result<Flowpipe, ReachError> {
        let _run = dwv_obs::span("reach.run");
        let n = x0.dim();
        let domain = dwv_taylor::unit_domain(n);
        let mut ws = TmWorkspace::new();
        let mut state = TmVector::from_box(x0);
        let mut steps = Vec::with_capacity(self.steps + 1);
        steps.push(StepEnclosure {
            t0: 0.0,
            t1: 0.0,
            enclosure: x0.clone(),
            end_box: x0.clone(),
            polygon: None,
        });
        let result = (|| {
            for k in 0..self.steps {
                if self.config.dependency == DependencyTracking::BoxReinit {
                    let b = self.range_box_ws(&state, &domain, &mut ws);
                    state = TmVector::from_box(&b);
                }
                let u = self
                    .abstraction
                    .abstract_network_ws(controller, &state, &domain, &mut ws)?;
                let StepFlow { end, step_box } = self
                    .config
                    .integrator
                    .flow_step_ws(&state, &u, &self.rhs, self.delta, &domain, &mut ws)
                    .map_err(|source| ReachError::Diverged { step: k, source })?;
                if dwv_obs::enabled() {
                    dwv_obs::counter("reach.flowpipe_steps").inc();
                    // The TM remainder width at the step's end is the pure
                    // over-approximation error (the paper's tightness axis);
                    // track its growth per step.
                    let rem_width = end
                        .components()
                        .iter()
                        .map(|t| t.remainder().width())
                        .fold(0.0, f64::max);
                    dwv_obs::histogram("reach.remainder_width").record(rem_width);
                    dwv_obs::event(
                        "reach.step",
                        &[("step", k as f64), ("remainder_width", rem_width)],
                    );
                }
                let end_box = self.range_box_ws(&end, &domain, &mut ws);
                steps.push(StepEnclosure {
                    t0: k as f64 * self.delta,
                    t1: (k + 1) as f64 * self.delta,
                    enclosure: step_box,
                    end_box,
                    polygon: None,
                });
                state = end;
            }
            Ok(Flowpipe::new(steps))
        })();
        if dwv_obs::enabled() {
            // The Bernstein range memo lives and dies with this run's
            // workspace; fold its counters into the process-wide metrics so
            // the aggregate hit rate survives the workspace.
            let s = ws.bern.stats();
            dwv_obs::counter("poly.range_cache.hits").add(s.hits);
            dwv_obs::counter("poly.range_cache.misses").add(s.misses);
            dwv_obs::counter("poly.range_cache.evictions").add(s.evictions);
        }
        result
    }

    fn range_box_ws(
        &self,
        state: &TmVector,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> dwv_interval::IntervalBox {
        if self.config.bernstein_ranges {
            state.range_box_bernstein_cached(domain, &mut ws.bern)
        } else {
            state.range_box(domain)
        }
    }
}

impl<A: NnAbstraction + Sync> crate::verifier::Verifier<NnController> for TaylorReach<A> {
    fn name(&self) -> &'static str {
        "taylor-model"
    }

    fn cost_class(&self) -> crate::verifier::CostClass {
        crate::verifier::CostClass::TaylorModel
    }

    fn reach(&self, controller: &NnController) -> Result<Flowpipe, ReachError> {
        TaylorReach::reach(self, controller)
    }

    fn reach_from(
        &self,
        x0: &dwv_interval::IntervalBox,
        controller: &NnController,
    ) -> Result<Flowpipe, ReachError> {
        TaylorReach::reach_from(self, x0, controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_abstraction::{BernsteinAbstraction, TaylorAbstraction};
    use dwv_dynamics::simulate::Simulator;
    use dwv_dynamics::{oscillator, three_dim};
    use dwv_nn::{Activation, Network};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn osc_controller(seed: u64) -> NnController {
        NnController::new(Network::new(
            &[2, 8, 1],
            Activation::ReLU,
            Activation::Tanh,
            seed,
        ))
    }

    /// The fundamental soundness check: simulated trajectories stay inside
    /// the flowpipe enclosures.
    fn assert_flowpipe_sound(
        problem: &ReachAvoidProblem,
        fp: &Flowpipe,
        ctrl: &NnController,
        n_samples: usize,
    ) {
        let sim = Simulator::new(problem.dynamics.clone(), problem.delta);
        let mut rng = StdRng::seed_from_u64(0xD7);
        for _ in 0..n_samples {
            let x0: Vec<f64> = (0..problem.x0.dim())
                .map(|i| {
                    let iv = problem.x0.interval(i);
                    rng.gen_range(iv.lo()..=iv.hi())
                })
                .collect();
            let traj = sim.rollout(&x0, ctrl, fp.len() - 1);
            for (k, x) in traj.states.iter().enumerate().skip(1) {
                let enc = fp.steps()[k].enclosure.inflate(1e-7);
                assert!(
                    enc.contains_point(x),
                    "step {k}: simulated {x:?} escapes enclosure {enc}"
                );
            }
        }
    }

    #[test]
    fn oscillator_flowpipe_sound_taylor_symbolic() {
        let mut p = oscillator::reach_avoid_problem();
        p.horizon_steps = 8;
        let v = TaylorReach::new(
            &p,
            TaylorAbstraction::default(),
            TaylorReachConfig::default(),
        );
        let ctrl = osc_controller(21);
        let fp = v.reach(&ctrl).expect("oscillator verifies");
        assert_eq!(fp.len(), 9);
        assert_flowpipe_sound(&p, &fp, &ctrl, 12);
    }

    #[test]
    fn oscillator_flowpipe_sound_box_reinit() {
        let mut p = oscillator::reach_avoid_problem();
        p.horizon_steps = 6;
        let cfg = TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        };
        let v = TaylorReach::new(&p, TaylorAbstraction::default(), cfg);
        let ctrl = osc_controller(22);
        let fp = v.reach(&ctrl).expect("oscillator verifies");
        assert_flowpipe_sound(&p, &fp, &ctrl, 8);
    }

    #[test]
    fn symbolic_tighter_than_box_reinit() {
        let mut p = oscillator::reach_avoid_problem();
        p.horizon_steps = 8;
        let ctrl = osc_controller(23);
        let sym = TaylorReach::new(
            &p,
            TaylorAbstraction::default(),
            TaylorReachConfig::default(),
        )
        .reach(&ctrl)
        .expect("symbolic verifies");
        let boxr = TaylorReach::new(
            &p,
            TaylorAbstraction::default(),
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        )
        .reach(&ctrl)
        .expect("box mode verifies");
        let vol = |fp: &Flowpipe| fp.final_step().enclosure.volume();
        assert!(
            vol(&sym) <= vol(&boxr) * 1.5,
            "symbolic {} should not be much looser than box {}",
            vol(&sym),
            vol(&boxr)
        );
    }

    #[test]
    fn oscillator_flowpipe_sound_bernstein() {
        let mut p = oscillator::reach_avoid_problem();
        p.horizon_steps = 5;
        let v = TaylorReach::new(
            &p,
            BernsteinAbstraction::default(),
            TaylorReachConfig::default(),
        );
        let ctrl = osc_controller(24);
        let fp = v.reach(&ctrl).expect("oscillator verifies with Bernstein");
        assert_flowpipe_sound(&p, &fp, &ctrl, 8);
    }

    #[test]
    fn three_dim_flowpipe_sound() {
        let mut p = three_dim::reach_avoid_problem();
        p.horizon_steps = 5;
        let v = TaylorReach::new(
            &p,
            TaylorAbstraction::default(),
            TaylorReachConfig::default(),
        );
        let ctrl = NnController::new(Network::new(
            &[3, 8, 1],
            Activation::ReLU,
            Activation::Tanh,
            31,
        ));
        let fp = v.reach(&ctrl).expect("3-D system verifies");
        assert_eq!(fp.len(), 6);
        assert_flowpipe_sound(&p, &fp, &ctrl, 10);
    }

    #[test]
    fn with_initial_set_narrows_flowpipe() {
        let mut p = oscillator::reach_avoid_problem();
        p.horizon_steps = 4;
        let ctrl = osc_controller(25);
        let full = TaylorReach::new(
            &p,
            TaylorAbstraction::default(),
            TaylorReachConfig::default(),
        );
        let sub = full
            .clone()
            .with_initial_set(p.x0.partition(&[2, 2])[0].clone());
        let fp_full = full.reach(&ctrl).unwrap();
        let fp_sub = sub.reach(&ctrl).unwrap();
        assert!(fp_sub.final_step().enclosure.volume() <= fp_full.final_step().enclosure.volume());
    }

    #[test]
    fn wild_controller_can_diverge() {
        // A controller with a huge output scale on the cubic 3-D system can
        // make the flowpipe blow up within the horizon; accept either a
        // divergence error or a finite (enormous) enclosure, but never panic.
        let mut p = three_dim::reach_avoid_problem();
        p.horizon_steps = 10;
        let net = Network::new(&[3, 8, 1], Activation::ReLU, Activation::Tanh, 77);
        let ctrl = NnController::with_output_scale(net, 500.0);
        let cfg = TaylorReachConfig {
            integrator: OdeIntegrator {
                max_inflations: 10,
                ..OdeIntegrator::with_order(2)
            },
            ..TaylorReachConfig::default()
        };
        let v = TaylorReach::new(&p, TaylorAbstraction::default(), cfg);
        match v.reach(&ctrl) {
            Err(ReachError::Diverged { .. }) => {}
            Ok(fp) => assert!(fp.final_step().enclosure.volume() > 1.0),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
