//! Continuous-time sweep enclosures for affine systems under zero-order
//! hold.
//!
//! The discrete recursions (`LinearReach`, `ZonotopeReach`) produce exact
//! sets at the sampling instants `t = kδ`, but Definition 1's safety
//! quantifies over *all* `t` — a trajectory can dip into the unsafe set
//! between samples. [`affine_sweep_box`] closes the gap: given the state box
//! at the step start and the (held) input range, it computes a box that
//! encloses the state for the whole period `[0, δ]` by a Picard-style
//! derivative-bound iteration:
//!
//! ```text
//! S valid  ⇐  B_t ⊕ [0, δ]·f(S, U) ⊆ S,    f(x, u) = A x + B u + c
//! ```
//!
//! starting from the step-start box and inflating until the containment
//! holds (it always does for `δ·‖A‖ < 1`, which every benchmark satisfies by
//! a wide margin; a conservative fallback kicks in otherwise).

use dwv_dynamics::linalg::Matrix;
use dwv_interval::{Interval, IntervalBox};

/// The interval image of `A·S + B·U + c`, written into a reused buffer (the
/// sweep iterates up to 40 times per step; one buffer serves all attempts).
fn deriv_box_into(
    a: &Matrix,
    b: &Matrix,
    c: &[f64],
    s: &IntervalBox,
    u: &[Interval],
    out: &mut Vec<Interval>,
) {
    let n = a.nrows();
    out.clear();
    out.extend((0..n).map(|i| {
        let mut acc = Interval::point(c[i]); // dwv-lint: allow(panic-freedom#index) -- i ranges over the system dimension
        for j in 0..n {
            acc += s.interval(j) * a.get(i, j);
        }
        for (j, uj) in u.iter().enumerate() {
            acc += *uj * b.get(i, j);
        }
        acc
    }));
}

/// A box enclosing `x(τ)` for all `τ ∈ [0, δ]`, all `x(0) ∈ bt`, and the
/// held input ranging over `u`.
///
/// # Panics
///
/// Panics on dimension mismatches.
#[must_use]
pub(crate) fn affine_sweep_box(
    a: &Matrix,
    b: &Matrix,
    c: &[f64],
    bt: &IntervalBox,
    u: &[Interval],
    delta: f64,
) -> IntervalBox {
    assert_eq!(a.nrows(), bt.dim(), "A/state dimension mismatch");
    let n = bt.dim();
    let mut s = bt.clone();
    let mut d = Vec::with_capacity(n);
    for attempt in 0..40 {
        deriv_box_into(a, b, c, &s, u, &mut d);
        let mapped: IntervalBox = (0..n)
            .map(|i| {
                let reach =
                    Interval::new((delta * d[i].lo()).min(0.0), (delta * d[i].hi()).max(0.0)); // dwv-lint: allow(panic-freedom#index) -- deriv_box_into fills d with n entries
                bt.interval(i) + reach
            })
            .collect();
        if s.contains(&mapped) {
            return mapped;
        }
        // Inflate geometrically; the fixed point exists for δ‖A‖ < 1.
        let grow = 1.0 + 0.2 * (attempt as f64 + 1.0);
        s = mapped
            .hull(&s)
            .intervals()
            .iter()
            .map(|iv| iv.scale_about_mid(grow).inflate(1e-12))
            .collect();
    }
    // Conservative fallback: one more mapped image of the inflated set.
    deriv_box_into(a, b, c, &s, u, &mut d);
    (0..n)
        .map(|i| {
            let reach = Interval::new((delta * d[i].lo()).min(0.0), (delta * d[i].hi()).max(0.0)); // dwv-lint: allow(panic-freedom#index) -- deriv_box_into fills d with n entries
            bt.interval(i) + reach
        })
        .collect()
}

/// A tighter, second-order sweep enclosure: every trajectory chord between
/// `x(0) ∈ bt` and `x(δ) ∈ bt1` lies in `hull(bt, bt1)`, and the trajectory
/// deviates from its chord by at most `δ²·max|ẍ|/8` per coordinate
/// (`ẍ = A(Ax + Bu + c)` for held `u`). The curvature bound is evaluated
/// over the (coarse but sound) first-order sweep.
///
/// # Panics
///
/// Panics on dimension mismatches.
#[must_use]
pub(crate) fn affine_sweep_box_chord(
    a: &Matrix,
    b: &Matrix,
    c: &[f64],
    bt: &IntervalBox,
    bt1: &IntervalBox,
    u: &[Interval],
    delta: f64,
) -> IntervalBox {
    let n = bt.dim();
    let coarse = affine_sweep_box(a, b, c, bt, u, delta).hull(bt1);
    let mut xdot = Vec::with_capacity(n);
    deriv_box_into(a, b, c, &coarse, u, &mut xdot);
    // ẍ = A·ẋ (u is held, so u̇ = 0).
    let chord = bt.hull(bt1);
    (0..n)
        .map(|i| {
            let mut xdd = Interval::ZERO;
            for (j, xd) in xdot.iter().enumerate() {
                xdd += *xd * a.get(i, j);
            }
            let r = 0.125 * delta * delta * xdd.mag();
            chord.interval(i).inflate(r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_contains_endpoints_and_midpoints() {
        // ẋ1 = x2, ẋ2 = u (double integrator), u = -1, from [0.9,1.0]×[0,0].
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![0.0, 0.0]]);
        let b = Matrix::from_rows(vec![vec![0.0], vec![1.0]]);
        let c = [0.0, 0.0];
        let bt = IntervalBox::from_bounds(&[(0.9, 1.0), (-0.1, 0.0)]);
        let u = [Interval::point(-1.0)];
        let delta = 0.25;
        let sweep = affine_sweep_box(&a, &b, &c, &bt, &u, delta);
        // Analytic trajectories: x2(τ) = x2(0) − τ; x1(τ) = x1 + x2 τ − τ²/2.
        for x1 in [0.9, 1.0] {
            for x2 in [-0.1, 0.0] {
                for k in 0..=10 {
                    let tau = delta * k as f64 / 10.0;
                    let p = [x1 + x2 * tau - 0.5 * tau * tau, x2 - tau];
                    assert!(
                        sweep.inflate(1e-9).contains_point(&p),
                        "sweep {sweep} misses {p:?}"
                    );
                }
            }
        }
        // Tightness: within 2x of the coarse bound.
        assert!(sweep.interval(1).width() < 0.5);
    }

    #[test]
    fn zero_dynamics_sweep_is_start_box() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(vec![vec![0.0], vec![0.0]]);
        let bt = IntervalBox::from_bounds(&[(1.0, 2.0), (3.0, 4.0)]);
        let sweep = affine_sweep_box(&a, &b, &[0.0, 0.0], &bt, &[Interval::ZERO], 0.5);
        assert!(sweep.inflate(1e-9).contains(&bt));
        assert!(bt.inflate(1e-9).contains(&sweep));
    }
}
