//! Directed interval / mixed-monotone box reachability — the cheap tier of
//! the verifier portfolio (Jafarpour–Harapanahalli–Coogan style
//! interval-analysis reachability, arXiv:2301.07912).
//!
//! Each control step holds the input constant (zero-order hold), bounds the
//! controller's output over the current state box with the controller's own
//! [`ControlEnclosure`], and then encloses the continuous flow with a
//! two-phase validated step:
//!
//! 1. **A-priori enclosure.** A box `B` with `X + [0,δ]·F(B, U) ⊆ B` is
//!    found by inflation-and-recheck (the Picard–Lindelöf a-priori
//!    enclosure lemma); the resulting sweep box `X + [0,δ]·F(B, U)`
//!    contains every trajectory point over the whole step.
//! 2. **End tightening.** The instantaneous set at `t = δ` is enclosed by
//!    the first-order Taylor expansion with a rigorous Lagrange remainder,
//!    `X + δ·F(X, U) + (δ²/2)·(J_x f · f)(B, U)`, intersected with the
//!    sweep box.
//!
//! Where the interval Jacobian of a field component has stable sign over
//! the evaluation box, the component's range is computed by
//! **mixed-monotone corner evaluation** (two point evaluations instead of
//! one interval extension — tight for monotone dynamics such as the ACC
//! benchmark); components with indefinite Jacobian entries fall back to the
//! plain interval extension. Both paths run entirely in the outward-rounded
//! `dwv-interval` primitives, so every enclosure is sound.
//!
//! The backend never proves unsafety: a blown-up enclosure returns
//! [`ReachError::Diverged`], which the portfolio treats as "escalate", not
//! as a verdict.

use crate::error::ReachError;
use crate::flowpipe::{Flowpipe, StepEnclosure};
use crate::verifier::{ControlEnclosure, CostClass, Verifier};
use dwv_dynamics::ReachAvoidProblem;
use dwv_interval::{Interval, IntervalBox};
use dwv_poly::Polynomial;
use dwv_taylor::{FlowpipeError, OdeRhs};

/// Inflation attempts before a step is declared diverged.
const MAX_APRIORI_ITERS: usize = 24;

/// Interval/mixed-monotone box-propagation verifier.
///
/// Works for any polynomial dynamics and any controller implementing
/// [`ControlEnclosure`] (linear gains and neural networks both do).
///
/// # Example
///
/// ```
/// use dwv_reach::IntervalReach;
/// use dwv_dynamics::{acc, LinearController};
///
/// let problem = acc::reach_avoid_problem();
/// let verifier = IntervalReach::for_problem(&problem);
/// let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
/// let fp = verifier.reach(&k).expect("stable closed loop encloses");
/// assert_eq!(fp.len(), problem.horizon_steps + 1);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalReach {
    rhs: OdeRhs,
    /// `jac[i][v]` = ∂f_i/∂v over all state *and* input variables — the
    /// sign-structure source for mixed-monotone corner evaluation.
    jac: Vec<Vec<Polynomial>>,
    /// `second[i]` = Σ_j (∂f_i/∂x_j)·f_j — the Lagrange-remainder field of
    /// the first-order Taylor step.
    second: Vec<Polynomial>,
    x0: IntervalBox,
    delta: f64,
    steps: usize,
    max_width: f64,
}

impl IntervalReach {
    /// Builds the verifier for a problem (any polynomial dynamics).
    #[must_use]
    pub fn for_problem(problem: &ReachAvoidProblem) -> Self {
        let rhs = problem.dynamics.vector_field();
        // Divergence guard: once a step's sweep box is wider than a few
        // universe diagonals the enclosure carries no information; computed
        // with Interval arithmetic so the bound itself is directed.
        let diag = problem
            .universe
            .intervals()
            .iter()
            .map(|iv| Interval::point(iv.width()).sqr())
            .sum::<Interval>()
            .sqrt(); // dwv-lint: allow(float-hygiene) -- Interval::sqrt of the directed diagonal enclosure, not f64
        let max_width = (diag * 8.0 + Interval::point(1.0)).hi();
        Self::new(
            rhs,
            problem.x0.clone(),
            problem.delta,
            problem.horizon_steps,
            max_width,
        )
    }

    /// Builds the verifier from an explicit polynomial vector field.
    #[must_use]
    pub fn new(rhs: OdeRhs, x0: IntervalBox, delta: f64, steps: usize, max_width: f64) -> Self {
        let n = rhs.n_state();
        let nvars = n + rhs.n_input();
        let jac: Vec<Vec<Polynomial>> = rhs
            .field()
            .iter()
            .map(|f| (0..nvars).map(|v| f.partial_derivative(v)).collect())
            .collect();
        let second: Vec<Polynomial> = jac
            .iter()
            .map(|row| {
                row.iter().take(n).zip(rhs.field()).fold(
                    Polynomial::constant(nvars, 0.0),
                    |acc, (dij, fj)| {
                        acc + dij.clone() * fj.clone() // dwv-lint: allow(float-hygiene) -- Polynomial operator algebra building the remainder field at construction time
                    },
                )
            })
            .collect();
        Self {
            rhs,
            jac,
            second,
            x0,
            delta,
            steps,
            max_width,
        }
    }

    /// Replaces the initial set (the Algorithm 2 per-cell entry point).
    #[must_use]
    pub fn with_initial_set(mut self, x0: IntervalBox) -> Self {
        self.x0 = x0;
        self
    }

    /// Replaces the divergence-guard width.
    #[must_use]
    pub fn with_max_width(mut self, w: f64) -> Self {
        self.max_width = w;
        self
    }

    /// Computes the flowpipe from the configured initial set.
    ///
    /// # Errors
    ///
    /// [`ReachError::Diverged`] when a step's a-priori enclosure fails to
    /// validate or the sweep box exceeds the divergence-guard width;
    /// [`ReachError::Unsupported`] on dimension mismatches.
    pub fn reach<C: ControlEnclosure + ?Sized>(
        &self,
        controller: &C,
    ) -> Result<Flowpipe, ReachError> {
        self.reach_from(&self.x0, controller)
    }

    /// Computes the flowpipe from an explicit initial cell.
    ///
    /// # Errors
    ///
    /// As for [`IntervalReach::reach`].
    pub fn reach_from<C: ControlEnclosure + ?Sized>(
        &self,
        x0: &IntervalBox,
        controller: &C,
    ) -> Result<Flowpipe, ReachError> {
        let n = self.rhs.n_state();
        let m = self.rhs.n_input();
        if x0.dim() != n || controller.n_state() != n || controller.n_input() != m {
            return Err(ReachError::Unsupported(format!(
                "interval backend: dimension mismatch (field {n}+{m}, x0 {}, controller {}->{})",
                x0.dim(),
                controller.n_state(),
                controller.n_input(),
            )));
        }
        // Same entry-span name as every other backend, so trace analytics
        // (critical path, attribution) see one uniform `reach.run`.
        let _s = dwv_obs::span("reach.run");
        let mut steps = Vec::with_capacity(self.steps + 1);
        steps.push(StepEnclosure {
            t0: 0.0,
            t1: 0.0,
            enclosure: x0.clone(),
            end_box: x0.clone(),
            polygon: None,
        });
        let mut x = x0.clone();
        let mut t0 = 0.0f64;
        for k in 0..self.steps {
            let u = controller.control_enclosure(x.intervals());
            let diverged = |w: f64| ReachError::Diverged {
                step: k,
                source: FlowpipeError::Diverged { last_radius: w },
            };
            let (sweep, end) = self.flow_step(&x, &u, controller).map_err(diverged)?;
            let width = sweep
                .intervals()
                .iter()
                .map(Interval::width)
                .fold(0.0, f64::max);
            if !end.is_finite() || width > self.max_width {
                return Err(diverged(width));
            }
            let t1 = t0 + self.delta; // dwv-lint: allow(float-hygiene) -- step timestamps are display metadata, not enclosure arithmetic
            steps.push(StepEnclosure {
                t0,
                t1,
                enclosure: sweep,
                end_box: end.clone(),
                polygon: None,
            });
            x = end;
            t0 = t1;
        }
        if dwv_obs::enabled() {
            dwv_obs::counter("reach.interval_steps").add(self.steps as u64);
        }
        Ok(Flowpipe::new(steps))
    }

    /// One validated zero-order-hold step: returns `(sweep box, end box)`
    /// or the last candidate width when no a-priori enclosure validates.
    fn flow_step<C: ControlEnclosure + ?Sized>(
        &self,
        x: &IntervalBox,
        u: &[Interval],
        controller: &C,
    ) -> Result<(IntervalBox, IntervalBox), f64> {
        let dt = Interval::new(0.0, self.delta);
        let d = Interval::point(self.delta);
        let mut xu: Vec<Interval> = x.intervals().to_vec();
        xu.extend_from_slice(u);

        // Phase 1: a-priori enclosure by inflation and recheck. The
        // candidate starts from one coarse Euler sweep of the start box and
        // is widened until `X + [0,δ]·F(B,U) ⊆ B` holds. Only the final
        // containment matters for soundness; the inflation schedule is a
        // heuristic.
        let f_x = self.eval_field(&xu);
        let mut b: Vec<Interval> = x
            .intervals()
            .iter()
            .zip(&f_x)
            .map(|(xi, fi)| (*xi + dt * *fi).inflate(widen_pad(fi)))
            .collect();
        let mut validated: Option<(Vec<Interval>, Vec<Interval>)> = None;
        for _ in 0..MAX_APRIORI_ITERS {
            let mut bu = b.clone();
            bu.extend_from_slice(u);
            let f_b: Vec<Interval> = self
                .rhs
                .field()
                .iter()
                .map(|f| f.eval_interval(&bu))
                .collect();
            let cand: Vec<Interval> = x
                .intervals()
                .iter()
                .zip(&f_b)
                .map(|(xi, fi)| *xi + dt * *fi)
                .collect();
            if cand.iter().zip(&b).all(|(c, bi)| bi.contains(c)) {
                // `B` validates, and the recomputed sweep `X + [0,δ]·F(B,U)`
                // is the tighter trajectory enclosure over the step.
                validated = Some((b.clone(), cand));
                break;
            }
            b = cand
                .iter()
                .zip(&b)
                .map(|(c, bi)| c.hull(bi).inflate(widen_pad(c)))
                .collect();
        }
        let Some((b, sweep)) = validated else {
            return Err(b.iter().map(Interval::width).fold(0.0, f64::max));
        };

        // Phase 2: the instantaneous set at t = δ, as the intersection of
        // three independent sound enclosures.
        //
        // Per trajectory, `x(δ) = φ(x0) + (δ²/2)·ẍ(ξ)` with the one-step
        // map `φ(x) = x + δ·f(x, κ(x))` and `ẍ(ξ) = g(x(ξ), u0)` for some
        // `ξ ∈ [0, δ]`, `x(ξ) ∈ B`. The Lagrange remainder is therefore the
        // shared box term `rem = (δ²/2)·g(B, U)`.
        let mut bu: Vec<Interval> = b;
        bu.extend_from_slice(u);
        let half_d2 = d * d * 0.5;
        let rem: Vec<Interval> = self
            .second
            .iter()
            .map(|g| half_d2 * g.eval_interval(&bu))
            .collect();

        // (a) Decoupled Taylor end: `X + δ·F(X, U) + rem` with the
        // mixed-monotone tight field range. Cheap but treats the control
        // box as independent of the state.
        let taylor_end: Vec<Interval> = x
            .intervals()
            .iter()
            .zip(f_x.iter().zip(&rem))
            .map(|(xi, (fi, r))| *xi + d * *fi + *r)
            .collect();

        // (b) Mean-value end: `φ(c) + J_φ(X)·(X − c) + rem` with the
        // *closed-loop* Jacobian `J_φ = I + δ·(∂f/∂x + ∂f/∂u · ∂κ/∂x)`.
        // This is the enclosure that keeps the state–control correlation:
        // a stabilized loop has `ρ(|J_φ|) ≈ 1`, so widths stay bounded
        // where the decoupled form inflates at the open-loop rate. Sound by
        // the componentwise (Clarke, for ReLU kinks) mean-value theorem:
        // the interval Jacobians enclose every generalized derivative on
        // the segment from `c` to any `x ∈ X`.
        let c: Vec<Interval> = x
            .intervals()
            .iter()
            .map(|xi| Interval::point(xi.mid()))
            .collect();
        let u_c = controller.control_enclosure(&c);
        let mut cu = c.clone();
        cu.extend_from_slice(&u_c);
        let f_c: Vec<Interval> = self
            .rhs
            .field()
            .iter()
            .map(|f| f.eval_interval(&cu))
            .collect();
        let j_k = controller.control_jacobian(x.intervals());
        let dev: Vec<Interval> = x
            .intervals()
            .iter()
            .zip(&c)
            .map(|(xi, ci)| *xi - *ci)
            .collect();
        let n = x.dim();
        let mv_end: Vec<Interval> = (0..n)
            .map(|i| {
                let jac_row = self.jac.get(i);
                let fc = f_c.get(i).copied().unwrap_or(Interval::ENTIRE);
                let ci = c.get(i).copied().unwrap_or(Interval::ENTIRE);
                let ri = rem.get(i).copied().unwrap_or(Interval::ENTIRE);
                // `J_φ[i][k] = δ_ik + δ·J_cl[i][k]` must be formed *before*
                // multiplying by the deviation: a stabilizing feedback makes
                // |1 + δ·J_cl| < 1, which separate `dev + δ·J·dev` terms
                // (widths add, never cancel) would destroy.
                let spread = (0..n).fold(Interval::ZERO, |acc, kk| {
                    let dfx = jac_row
                        .and_then(|row| row.get(kk))
                        .map_or(Interval::ENTIRE, |p| p.eval_interval(&xu));
                    let dfu = j_k.iter().enumerate().fold(Interval::ZERO, |a, (l, jrow)| {
                        let dful = jac_row
                            .and_then(|row| row.get(n + l))
                            .map_or(Interval::ENTIRE, |p| p.eval_interval(&xu));
                        let dkl = jrow.get(kk).copied().unwrap_or(Interval::ENTIRE);
                        a + dful * dkl // dwv-lint: allow(float-hygiene) -- Interval operator arithmetic (outward-rounded)
                    });
                    let ident = if kk == i {
                        Interval::point(1.0)
                    } else {
                        Interval::ZERO
                    };
                    let devk = dev.get(kk).copied().unwrap_or(Interval::ENTIRE);
                    acc + (ident + d * (dfx + dfu)) * devk // dwv-lint: allow(float-hygiene) -- Interval operator arithmetic (outward-rounded)
                });
                ci + d * fc + spread + ri // dwv-lint: allow(float-hygiene) -- Interval operator arithmetic (outward-rounded)
            })
            .collect();

        // Intersect (a), (b), and the sweep — all three enclose the true
        // set, so their intersection does too (an empty pairwise
        // intersection is impossible for sound enclosures of a non-empty
        // set; `unwrap_or` keeps the wider box if rounding ever disagrees).
        let end: Vec<Interval> = taylor_end
            .iter()
            .zip(mv_end.iter().zip(&sweep))
            .map(|(te, (mv, si))| {
                let e = te.intersection(mv).unwrap_or(*te);
                e.intersection(si).unwrap_or(e)
            })
            .collect();
        Ok((IntervalBox::new(sweep), IntervalBox::new(end)))
    }

    /// The field's range over a joint `(x, u)` box, component by component:
    /// mixed-monotone corner evaluation where the interval Jacobian row has
    /// stable signs, plain interval extension otherwise.
    fn eval_field(&self, z: &[Interval]) -> Vec<Interval> {
        self.rhs
            .field()
            .iter()
            .zip(&self.jac)
            .map(|(f, jac_row)| tight_range(f, jac_row, z))
            .collect()
    }
}

/// Inflation pad for the a-priori iteration: a small absolute floor plus a
/// few percent of the candidate's width (heuristic only — soundness comes
/// from the containment recheck).
fn widen_pad(c: &Interval) -> f64 {
    (Interval::point(c.width()) * 0.04 + Interval::point(1e-12)).hi()
}

/// Range of one polynomial component over `z`: two corner evaluations when
/// every partial derivative has stable sign over `z` (the mixed-monotone
/// decomposition degenerates to coordinatewise monotonicity), else the
/// plain interval extension.
fn tight_range(f: &Polynomial, jac_row: &[Polynomial], z: &[Interval]) -> Interval {
    let mut lower = Vec::with_capacity(z.len());
    let mut upper = Vec::with_capacity(z.len());
    for (dk, zk) in jac_row.iter().zip(z) {
        if zk.is_point() {
            lower.push(*zk);
            upper.push(*zk);
            continue;
        }
        let s = dk.eval_interval(z);
        if s.lo() >= 0.0 {
            lower.push(Interval::point(zk.lo()));
            upper.push(Interval::point(zk.hi()));
        } else if s.hi() <= 0.0 {
            lower.push(Interval::point(zk.hi()));
            upper.push(Interval::point(zk.lo()));
        } else {
            return f.eval_interval(z);
        }
    }
    // The true extrema sit at the two selected corners; the outward-rounded
    // point evaluations bracket them. A NaN endpoint (overflowing field)
    // widens to the sound ENTIRE, which the divergence guard then rejects.
    let lo = f.eval_interval(&lower).lo();
    let hi = f.eval_interval(&upper).hi();
    Interval::try_new(lo, hi).unwrap_or(Interval::ENTIRE)
}

impl<C: ControlEnclosure + Sync> Verifier<C> for IntervalReach {
    fn name(&self) -> &'static str {
        "interval"
    }

    fn cost_class(&self) -> CostClass {
        CostClass::Interval
    }

    fn reach(&self, controller: &C) -> Result<Flowpipe, ReachError> {
        IntervalReach::reach(self, controller)
    }

    fn reach_from(&self, x0: &IntervalBox, controller: &C) -> Result<Flowpipe, ReachError> {
        IntervalReach::reach_from(self, x0, controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::{acc, oscillator, Controller, LinearController, NnController};
    use dwv_nn::{Activation, Network};

    /// RK4 oracle points must land inside every step's sweep and end box.
    fn assert_flowpipe_contains_rollouts<C: Controller + ?Sized>(
        problem: &ReachAvoidProblem,
        fp: &Flowpipe,
        controller: &C,
    ) {
        let sim = dwv_dynamics::simulate::Simulator::with_substeps(
            std::sync::Arc::clone(&problem.dynamics),
            problem.delta,
            32,
        );
        for start in problem.x0.corners() {
            let traj = sim.rollout(&start, controller, problem.horizon_steps);
            for (k, state) in traj.states.iter().enumerate() {
                let step = &fp.steps()[k];
                assert!(
                    step.end_box.inflate(1e-6).contains_point(state),
                    "step {k}: state {state:?} escapes end box {:?}",
                    step.end_box
                );
            }
        }
    }

    #[test]
    fn acc_linear_enclosure_is_sound() {
        let problem = acc::reach_avoid_problem();
        let v = IntervalReach::for_problem(&problem);
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let fp = v.reach(&k).expect("stable loop encloses");
        assert_eq!(fp.len(), problem.horizon_steps + 1);
        assert_flowpipe_contains_rollouts(&problem, &fp, &k);
    }

    #[test]
    fn oscillator_nn_enclosure_is_sound_over_short_horizon() {
        let mut problem = oscillator::reach_avoid_problem();
        problem.horizon_steps = 5;
        let v = IntervalReach::for_problem(&problem);
        let ctrl = NnController::new(Network::new(
            &[2, 8, 1],
            Activation::ReLU,
            Activation::Tanh,
            3,
        ));
        match v.reach(&ctrl) {
            Ok(fp) => {
                assert_eq!(fp.len(), problem.horizon_steps + 1);
                assert_flowpipe_contains_rollouts(&problem, &fp, &ctrl);
            }
            // Refusing to enclose is sound for the cheap tier.
            Err(ReachError::Diverged { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn unstable_loop_reports_divergence() {
        let problem = acc::reach_avoid_problem();
        let v = IntervalReach::for_problem(&problem).with_max_width(10.0);
        // Positive feedback on both states: exponential blow-up.
        let k = LinearController::new(2, 1, vec![50.0, 50.0]);
        assert!(matches!(v.reach(&k), Err(ReachError::Diverged { .. })));
    }

    #[test]
    fn dimension_mismatch_is_unsupported() {
        let problem = acc::reach_avoid_problem();
        let v = IntervalReach::for_problem(&problem);
        let k = LinearController::new(3, 1, vec![0.0, 0.0, 0.0]);
        assert!(matches!(v.reach(&k), Err(ReachError::Unsupported(_))));
    }

    #[test]
    fn reach_from_cell_matches_reach_with_that_initial_set() {
        let problem = acc::reach_avoid_problem();
        let cell = problem.x0.scale_about_center(0.5);
        let v = IntervalReach::for_problem(&problem);
        let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
        let a = v.reach_from(&cell, &k).expect("encloses");
        let b = v
            .clone()
            .with_initial_set(cell)
            .reach(&k)
            .expect("encloses");
        assert_eq!(a, b, "reach_from must be bit-identical to with_initial_set");
    }

    #[test]
    fn mixed_monotone_is_no_looser_than_plain_extension() {
        // On the affine ACC field every Jacobian entry is constant, so the
        // corner evaluation applies to every component; its range must be
        // contained in the plain interval extension's.
        let problem = acc::reach_avoid_problem();
        let v = IntervalReach::for_problem(&problem);
        let mut z: Vec<Interval> = problem.x0.intervals().to_vec();
        z.push(Interval::new(-1.0, 2.0));
        for (f, row) in v.rhs.field().iter().zip(&v.jac) {
            let tight = tight_range(f, row, &z);
            let plain = f.eval_interval(&z);
            assert!(
                plain.contains(&tight),
                "corner range {tight} not within plain extension {plain}"
            );
        }
    }
}
