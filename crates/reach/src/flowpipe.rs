//! The step-indexed reachable-set enclosure produced by every verifier.

use dwv_geom::ConvexPolygon;
use dwv_interval::IntervalBox;

/// One step of a flowpipe: the reach-set enclosure over a time range.
///
/// The exact linear verifier produces *instantaneous* sets at the sampling
/// times (`t0 == t1`, with an exact 2-D polygon when available); the
/// Taylor-model verifier produces enclosures covering a whole control period
/// (`t1 = t0 + δ`), so safety holds for all continuous times.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEnclosure {
    /// Start of the time range this enclosure covers.
    pub t0: f64,
    /// End of the time range (equal to `t0` for instantaneous sets).
    pub t1: f64,
    /// Box enclosure of the reachable states over the whole time range.
    pub enclosure: IntervalBox,
    /// Instantaneous enclosure at `t1` (equals `enclosure` for
    /// instantaneous sets). This is the set Algorithm 2's goal-containment
    /// check `Ψ(f, X_p, κ_θ)|_t ⊆ X_g` quantifies over — a time *instant*,
    /// not a sweep.
    pub end_box: IntervalBox,
    /// Exact convex polygon (2-D linear verifier only).
    pub polygon: Option<ConvexPolygon>,
}

/// A verifier's output: the reachable set `X_r^T` as a sequence of per-step
/// enclosures (Definition 2: `X_r^T = ⋃_t X_r[t]`).
///
/// # Example
///
/// ```
/// use dwv_reach::Flowpipe;
/// use dwv_interval::IntervalBox;
///
/// let fp = Flowpipe::from_boxes(vec![
///     IntervalBox::from_bounds(&[(0.0, 1.0)]),
///     IntervalBox::from_bounds(&[(0.5, 1.5)]),
/// ], 0.1);
/// assert_eq!(fp.len(), 2);
/// assert_eq!(fp.final_step().enclosure.interval(0).hi(), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Flowpipe {
    steps: Vec<StepEnclosure>,
}

impl Flowpipe {
    /// Creates a flowpipe from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    #[must_use]
    pub fn new(steps: Vec<StepEnclosure>) -> Self {
        assert!(!steps.is_empty(), "flowpipe must have at least one step");
        Self { steps }
    }

    /// Creates an instantaneous-set flowpipe from boxes at sampling times
    /// `0, δ, 2δ, …`.
    ///
    /// # Panics
    ///
    /// Panics if `boxes` is empty.
    #[must_use]
    pub fn from_boxes(boxes: Vec<IntervalBox>, delta: f64) -> Self {
        assert!(!boxes.is_empty(), "flowpipe must have at least one step");
        let steps = boxes
            .into_iter()
            .enumerate()
            .map(|(k, b)| StepEnclosure {
                t0: k as f64 * delta,
                t1: k as f64 * delta,
                end_box: b.clone(),
                enclosure: b,
                polygon: None,
            })
            .collect();
        Self { steps }
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the flowpipe is empty (never true for constructed values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    #[must_use]
    pub fn steps(&self) -> &[StepEnclosure] {
        &self.steps
    }

    /// The step covering the end of the horizon (`X_r[T]` — the set the
    /// Wasserstein metric is computed on).
    #[must_use]
    pub fn final_step(&self) -> &StepEnclosure {
        self.steps.last().expect("flowpipe is non-empty") // dwv-lint: allow(panic-freedom) -- constructor asserts non-emptiness
    }

    /// The state dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.steps[0].enclosure.dim() // dwv-lint: allow(panic-freedom#index) -- constructor asserts non-emptiness
    }

    /// A box enclosing the entire flowpipe.
    #[must_use]
    pub fn bounding_box(&self) -> IntervalBox {
        self.steps
            .iter()
            .skip(1)
            // dwv-lint: allow(panic-freedom#index) -- constructor asserts non-emptiness
            .fold(self.steps[0].enclosure.clone(), |acc, s| {
                acc.hull(&s.enclosure)
            })
    }

    /// Width of the widest component of the final instantaneous enclosure —
    /// a one-number proxy for how much over-approximation the pipe carries
    /// at the end of the horizon (0 for a degenerate point enclosure).
    #[must_use]
    pub fn final_width(&self) -> f64 {
        let end = &self.final_step().end_box;
        (0..end.dim())
            .map(|i| end.interval(i).width())
            .fold(0.0, f64::max)
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> std::slice::Iter<'_, StepEnclosure> {
        self.steps.iter()
    }
}

impl<'a> IntoIterator for &'a Flowpipe {
    type Item = &'a StepEnclosure;
    type IntoIter = std::slice::Iter<'a, StepEnclosure>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes() -> Vec<IntervalBox> {
        vec![
            IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]),
            IntervalBox::from_bounds(&[(1.0, 2.0), (0.5, 1.5)]),
            IntervalBox::from_bounds(&[(2.0, 3.0), (1.0, 2.0)]),
        ]
    }

    #[test]
    fn from_boxes_times() {
        let fp = Flowpipe::from_boxes(boxes(), 0.5);
        assert_eq!(fp.len(), 3);
        assert_eq!(fp.steps()[2].t0, 1.0);
        assert_eq!(fp.steps()[2].t1, 1.0);
        assert_eq!(fp.dim(), 2);
    }

    #[test]
    fn bounding_box_hulls_all() {
        let fp = Flowpipe::from_boxes(boxes(), 0.5);
        let bb = fp.bounding_box();
        assert_eq!(bb, IntervalBox::from_bounds(&[(0.0, 3.0), (0.0, 2.0)]));
    }

    #[test]
    fn final_step_is_last() {
        let fp = Flowpipe::from_boxes(boxes(), 0.5);
        assert_eq!(fp.final_step().enclosure.interval(0).lo(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_rejected() {
        let _ = Flowpipe::from_boxes(vec![], 0.1);
    }

    #[test]
    fn final_width_is_widest_end_component() {
        let fp = Flowpipe::from_boxes(boxes(), 0.5);
        // Final box is [2,3]×[1,2]: both widths 1.
        assert_eq!(fp.final_width(), 1.0);
        let point = Flowpipe::from_boxes(vec![IntervalBox::from_bounds(&[(2.0, 2.0)])], 0.5);
        assert_eq!(point.final_width(), 0.0);
    }

    #[test]
    fn iterates() {
        let fp = Flowpipe::from_boxes(boxes(), 0.5);
        assert_eq!(fp.iter().count(), 3);
        assert_eq!((&fp).into_iter().count(), 3);
    }
}
