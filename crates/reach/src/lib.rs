//! Reachability verifiers — the Ψ(f, X₀, κ_θ) of the paper.
//!
//! Three verifier families, mirroring the tools used in the paper's
//! experiments (§3.1, §4):
//!
//! * [`LinearReach`] — exact polytope recursion for discretized LTI systems
//!   under linear state feedback, `X_r[t+1] = (A_d + B_d θᵀ) X_r[t]`
//!   (the Flow\* stand-in for the ACC example; exact in 2-D via convex
//!   polygons, vertex-propagation in n-D);
//! * [`TaylorReach`] — validated Taylor-model flowpipes for non-linear
//!   (polynomial) dynamics under neural-network control, parameterized by an
//!   [`NnAbstraction`]:
//!   [`TaylorAbstraction`] (POLAR-style: TM propagation through the layers
//!   with symbolic polynomial part and Lagrange remainders) or
//!   [`BernsteinAbstraction`] (ReachNN-style: Bernstein polynomial fit plus
//!   sampled-and-inflated remainder);
//! * [`IntervalReach`] — directed interval / mixed-monotone box propagation,
//!   the cheapest sound enclosure (one field evaluation per step), used as
//!   the fast tier of the verifier portfolio;
//! * [`Flowpipe`] — the step-indexed reach-set enclosure all of them
//!   produce, which the metrics crate measures against goal/unsafe regions.
//!
//! Every backend implements the object-safe [`Verifier`] trait (with
//! [`CostClass`] metadata), and [`PortfolioVerifier`] stacks them into an
//! escalating portfolio: cheap tiers answer clear-cut queries, the rigorous
//! tier remains the sole authority on acceptance.
//!
//! # Example
//!
//! ```
//! use dwv_reach::LinearReach;
//! use dwv_dynamics::{acc, LinearController};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = acc::reach_avoid_problem();
//! let verifier = LinearReach::for_problem(&problem)?;
//! let controller = LinearController::new(2, 1, vec![-2.0, -3.0]);
//! let flowpipe = verifier.reach(&controller)?;
//! assert_eq!(flowpipe.len(), problem.horizon_steps + 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod cache;
mod error;
mod flowpipe;
mod interval_reach;
mod linear;
mod nn_abstraction;
mod portfolio;
mod sweep;
mod taylor_reach;
mod verifier;
mod zonotope_reach;

pub use cache::{
    hash_cell, hash_params, hash_params_tenant, ReachCache, ReachCacheStats, ShardedReachCache,
};
pub use error::ReachError;
pub use flowpipe::{Flowpipe, StepEnclosure};
pub use interval_reach::IntervalReach;
pub use linear::LinearReach;
pub use nn_abstraction::{BernsteinAbstraction, NnAbstraction, TaylorAbstraction};
pub use portfolio::{PortfolioStats, PortfolioVerifier, QueryProvenance};
pub use taylor_reach::{DependencyTracking, TaylorReach, TaylorReachConfig};
pub use verifier::{ControlEnclosure, CostClass, Verifier};
pub use zonotope_reach::ZonotopeReach;
