//! Neural-network output abstractions (paper §3.1).
//!
//! To verify a neural-network controlled system, the network's output over a
//! reach set must be enclosed as `u = κ_θ(x) ∈ G(x) + [−ε, ε]` for a
//! polynomial `G` and remainder `ε` (the paper's Eq. in §3.1). Two
//! abstraction families, mirroring the tools the paper evaluates:
//!
//! * [`TaylorAbstraction`] — POLAR-style: Taylor models are propagated
//!   *through* the layers. Affine layers are exact; smooth activations are
//!   replaced by their truncated Taylor expansion with a Lagrange remainder;
//!   ReLU is handled piecewise (exact on sign-definite ranges, a sound
//!   linear relaxation when the pre-activation range straddles 0).
//! * [`BernsteinAbstraction`] — ReachNN-style: a Bernstein polynomial of the
//!   whole network is fitted on the current state box, with the remainder
//!   estimated by dense sampling and inflated by a Lipschitz term (ReachNN's
//!   sampling-based error bound).

use crate::error::ReachError;
use dwv_dynamics::NnController;
use dwv_interval::{Interval, IntervalBox};
use dwv_nn::Activation;
use dwv_poly::Polynomial;
use dwv_taylor::{TaylorModel, TmVector, TmWorkspace};

/// Sound magnitude bounds for the k-th derivative of tanh on ℝ, k = 0..=5
/// (values slightly rounded up from the analytic extrema).
const TANH_DERIV_BOUNDS: [f64; 6] = [1.0, 1.0, 0.7700, 2.0001, 4.1000, 16.001];

/// Bound on the magnitude of the k-th derivative of an activation over ℝ.
fn activation_derivative_bound(act: Activation, k: usize) -> f64 {
    match act {
        Activation::Identity | Activation::ReLU => 0.0,
        Activation::Tanh => {
            if k < TANH_DERIV_BOUNDS.len() {
                TANH_DERIV_BOUNDS[k] // dwv-lint: allow(panic-freedom#index) -- guarded by the length check above
            } else {
                // tanh(x) = 2σ(2x) − 1 ⇒ |f⁽ᵏ⁾| ≤ 2ᵏ⁺¹·(k!/4) = 2ᵏ⁻¹·k!.
                let mut b = 0.5f64;
                for i in 1..=k {
                    b *= 2.0 * i as f64;
                }
                b
            }
        }
        Activation::Sigmoid => {
            // Crude sound bound |σ⁽ᵏ⁾| ≤ k!/4 for k ≥ 1.
            if k == 0 {
                1.0
            } else {
                let mut b = 0.25f64;
                for i in 2..=k {
                    b *= i as f64;
                }
                b
            }
        }
    }
}

/// An abstraction turning a neural-network controller into Taylor models of
/// its outputs over the current state enclosure.
pub trait NnAbstraction {
    /// A short name for reports ("polar", "bernstein").
    fn name(&self) -> &str;

    /// Encloses `κ_θ(x)` for `x` ranging over the Taylor-model state
    /// enclosure `state` (over `domain`).
    ///
    /// The result is one Taylor model per control input, over the *same*
    /// variables as `state` — so the feedback dependency between state and
    /// input is preserved symbolically.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError`] when the abstraction cannot soundly enclose the
    /// network on the given range.
    fn abstract_network(
        &self,
        controller: &NnController,
        state: &TmVector,
        domain: &[Interval],
    ) -> Result<TmVector, ReachError>;

    /// [`NnAbstraction::abstract_network`] with an explicit workspace, for
    /// callers that propagate many enclosures through the same network (a
    /// reachability loop abstracts the controller once per step). The default
    /// implementation ignores the workspace and delegates.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError`] when the abstraction cannot soundly enclose the
    /// network on the given range.
    fn abstract_network_ws(
        &self,
        controller: &NnController,
        state: &TmVector,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> Result<TmVector, ReachError> {
        let _ = ws;
        self.abstract_network(controller, state, domain)
    }
}

/// POLAR-style layer-by-layer Taylor-model propagation.
#[derive(Debug, Clone, Copy)]
pub struct TaylorAbstraction {
    /// Taylor expansion order for smooth activations (and TM truncation
    /// order for products).
    pub order: u32,
    /// Use Bernstein forms for pre-activation range bounding (tighter, the
    /// "symbolic remainder"-flavoured refinement; slower).
    pub bernstein_ranges: bool,
}

impl Default for TaylorAbstraction {
    fn default() -> Self {
        Self {
            order: 2,
            bernstein_ranges: false,
        }
    }
}

impl TaylorAbstraction {
    /// Creates the abstraction with the given expansion order.
    #[must_use]
    pub fn with_order(order: u32) -> Self {
        Self {
            order,
            ..Self::default()
        }
    }

    /// Encloses one activation applied to a pre-activation Taylor model.
    fn activation_model_ws(
        &self,
        act: Activation,
        z: &TaylorModel,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> TaylorModel {
        let range = if self.bernstein_ranges {
            z.range_bernstein_cached(domain, &mut ws.bern)
        } else {
            z.range(domain)
        };
        match act {
            Activation::Identity => z.clone(),
            Activation::ReLU => {
                if range.lo() >= 0.0 {
                    z.clone()
                } else if range.hi() <= 0.0 {
                    TaylorModel::zero(z.nvars())
                } else {
                    // Sound linear relaxation on [l, h] with l < 0 < h:
                    // relu(x) ∈ λx + [0, −λl] for λ = h/(h−l).
                    let (l, h) = (range.lo(), range.hi());
                    let lambda = h / (h - l);
                    z.scale(lambda)
                        .add_interval(Interval::new(0.0, (-lambda * l) * (1.0 + 1e-12)))
                }
            }
            Activation::Tanh | Activation::Sigmoid => {
                let c = range.mid();
                let r = range.rad();
                let order = self.order as usize;
                let coeffs = act.taylor_coefficients(c, order);
                // Lagrange remainder: |R| ≤ B_{K+1} · r^{K+1} / (K+1)!.
                let mut fact = 1.0;
                for i in 1..=(order + 1) {
                    fact *= i as f64;
                }
                let lagrange =
                    activation_derivative_bound(act, order + 1) * r.powi(order as i32 + 1) / fact;
                let dz = z.add_constant(-c);
                let mut acc = TaylorModel::constant(z.nvars(), coeffs[0]); // dwv-lint: allow(panic-freedom#index) -- series coefficients always include the order-0 term
                let mut pw = TaylorModel::constant(z.nvars(), 1.0);
                for &a in coeffs.iter().skip(1) {
                    pw = pw.mul_truncated(&dz, self.order, domain, ws);
                    if a != 0.0 {
                        acc.add_scaled_assign(&pw, a, ws);
                    }
                }
                let out = acc.add_interval(Interval::symmetric(lagrange));
                // Clamp the remainder to the activation's global range — the
                // enclosure can never leave [-1,1] / [0,1].
                clamp_model(out, act, domain)
            }
        }
    }
}

/// Tightens a model's enclosure against the activation's global output range
/// by shrinking the remainder when the polynomial-plus-remainder range
/// escapes it (sound: intersecting with a known superset of the image).
fn clamp_model(tm: TaylorModel, act: Activation, domain: &[Interval]) -> TaylorModel {
    let bound = match act {
        Activation::Tanh => Interval::new(-1.0, 1.0),
        Activation::Sigmoid => Interval::new(0.0, 1.0),
        _ => return tm,
    };
    let range = tm.range(domain);
    if bound.contains(&range) {
        return tm;
    }
    // For every x: f(x) ∈ bound, so f(x) − p(x) ∈ bound − range(p).
    // Intersecting the remainder with that set is sound and tightens the
    // model when the Lagrange remainder overshoots the activation's image.
    let poly_range = range - tm.remainder();
    let allowed = bound - poly_range;
    match tm.remainder().intersection(&allowed) {
        Some(new_rem) => tm.with_remainder(new_rem),
        None => tm,
    }
}

impl NnAbstraction for TaylorAbstraction {
    fn name(&self) -> &str {
        "polar"
    }

    fn abstract_network(
        &self,
        controller: &NnController,
        state: &TmVector,
        domain: &[Interval],
    ) -> Result<TmVector, ReachError> {
        let mut ws = TmWorkspace::new();
        self.abstract_network_ws(controller, state, domain, &mut ws)
    }

    fn abstract_network_ws(
        &self,
        controller: &NnController,
        state: &TmVector,
        domain: &[Interval],
        ws: &mut TmWorkspace,
    ) -> Result<TmVector, ReachError> {
        let net = controller.network();
        if net.in_dim() != state.dim() {
            return Err(ReachError::Unsupported(format!(
                "network expects {} inputs, state enclosure has {}",
                net.in_dim(),
                state.dim()
            )));
        }
        let mut h: Vec<TaylorModel> = if net.layers().is_empty() {
            state.components().to_vec()
        } else {
            Vec::new()
        };
        for (li, layer) in net.layers().iter().enumerate() {
            // The first layer reads the state models directly (no copy).
            let inputs: &[TaylorModel] = if li == 0 { state.components() } else { &h };
            let mut next = Vec::with_capacity(layer.out_dim());
            for o in 0..layer.out_dim() {
                // Affine part is exact in TM arithmetic.
                let mut z = TaylorModel::constant(state.nvars(), layer.bias()[o]); // dwv-lint: allow(panic-freedom#index) -- o ranges over layer.out_dim()
                for (i, hi) in inputs.iter().enumerate() {
                    let w = layer.weight(o, i);
                    if w != 0.0 {
                        z.add_scaled_assign(hi, w, ws);
                    }
                }
                next.push(self.activation_model_ws(layer.activation(), &z, domain, ws));
            }
            h = next;
        }
        let scale = controller.output_scale();
        Ok(h.into_iter()
            .map(|mut t| {
                t.scale_in_place(scale);
                t
            })
            .collect())
    }
}

/// ReachNN-style Bernstein-fit abstraction.
///
/// The network (as a black-box function) is approximated by a Bernstein
/// polynomial of per-dimension degree [`BernsteinAbstraction::degree`] on the
/// state box; the remainder is estimated on a dense grid and inflated by a
/// Lipschitz term `(L_f + L_g)·h/2` covering the inter-sample gaps, following
/// ReachNN's sampling-based error analysis.
#[derive(Debug, Clone, Copy)]
pub struct BernsteinAbstraction {
    /// Bernstein degree per state dimension.
    pub degree: u32,
    /// Sample-grid resolution per dimension for the remainder estimate.
    pub samples_per_dim: usize,
    /// Truncation order when composing the fitted polynomial with the state
    /// Taylor models (only relevant for symbolic dependency tracking, where
    /// state models are non-affine).
    pub compose_order: u32,
}

impl Default for BernsteinAbstraction {
    fn default() -> Self {
        Self {
            degree: 3,
            samples_per_dim: 9,
            compose_order: 8,
        }
    }
}

impl BernsteinAbstraction {
    /// Creates the abstraction with the given per-dimension degree.
    #[must_use]
    pub fn with_degree(degree: u32) -> Self {
        Self {
            degree,
            ..Self::default()
        }
    }
}

impl NnAbstraction for BernsteinAbstraction {
    fn name(&self) -> &str {
        "bernstein"
    }

    fn abstract_network(
        &self,
        controller: &NnController,
        state: &TmVector,
        domain: &[Interval],
    ) -> Result<TmVector, ReachError> {
        let net = controller.network();
        if net.in_dim() != state.dim() {
            return Err(ReachError::Unsupported(format!(
                "network expects {} inputs, state enclosure has {}",
                net.in_dim(),
                state.dim()
            )));
        }
        let bx = state.range_box(domain);
        // Guard against degenerate boxes (Bernstein needs positive widths).
        let bx = ensure_positive_widths(&bx);
        let n = bx.dim();
        let scale = controller.output_scale();
        // Fit in *normalized* coordinates y = (x − c)/r ∈ [−1, 1]ⁿ: fitting
        // in original coordinates over a tiny reach box produces power-basis
        // coefficients of magnitude (1/width)^degree whose cancellation
        // destroys all precision.
        let centers: Vec<f64> = bx.center();
        let radii: Vec<f64> = bx.radii();
        let unit = IntervalBox::from_bounds(&vec![(-1.0, 1.0); n]);
        let denorm = |y: &[f64]| -> Vec<f64> {
            y.iter()
                .enumerate()
                .map(|(i, &v)| centers[i] + radii[i] * v) // dwv-lint: allow(panic-freedom#index) -- i enumerates the state dimension
                .collect()
        };
        // Normalized state models y_i = (x_i − c_i)/r_i over the original
        // variables: the composition arguments.
        let y_models: Vec<TaylorModel> = state
            .components()
            .iter()
            .enumerate()
            .map(|(i, x)| x.add_constant(-centers[i]).scale(1.0 / radii[i])) // dwv-lint: allow(panic-freedom#index) -- i enumerates the state dimension
            .collect();
        let lip_f = local_lipschitz_bound(net, &bx)
            * scale.abs()
            * radii.iter().fold(0.0f64, |m, &r| m.max(r));
        let mut out = Vec::with_capacity(net.out_dim());
        for o in 0..net.out_dim() {
            let f = |y: &[f64]| net.forward(&denorm(y))[o] * scale; // dwv-lint: allow(panic-freedom#index) -- o ranges over net.out_dim()
            let g = dwv_poly::bernstein::approximate(f, &vec![self.degree; n], &unit);
            // Sampled remainder + Lipschitz inflation over grid gaps.
            let mut eps = 0.0f64;
            for p in unit.grid(self.samples_per_dim) {
                eps = eps.max((f(&p) - g.eval(&p)).abs());
            }
            let grid_h = 2.0 / (self.samples_per_dim.max(2) - 1) as f64;
            let lip_g = gradient_bound(&g, &unit);
            eps += 0.5 * (lip_f + lip_g) * grid_h * (n as f64).sqrt();
            let g_tm = TaylorModel::new(g, Interval::symmetric(eps));
            let composed = g_tm.compose(&y_models, self.compose_order, domain);
            out.push(composed);
        }
        Ok(TmVector::new(out))
    }
}

/// A bound on the network's local Lipschitz constant over a box, via an
/// interval Jacobian: activation-derivative ranges are chained through the
/// layers with interval matrix products. Far tighter than the global
/// product-of-norms bound on small boxes (ReLU units that are provably
/// inactive contribute zero), which is what makes the sampled Bernstein
/// remainder usable on the 3-D benchmark.
fn local_lipschitz_bound(net: &dwv_nn::Network, bx: &IntervalBox) -> f64 {
    let n = bx.dim();
    // Running interval Jacobian (rows: current layer units, cols: inputs).
    let mut jac: Vec<Vec<Interval>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        Interval::ONE
                    } else {
                        Interval::ZERO
                    }
                })
                .collect()
        })
        .collect();
    let mut h: Vec<Interval> = bx.intervals().to_vec();
    for layer in net.layers() {
        let mut new_jac = Vec::with_capacity(layer.out_dim());
        let mut new_h = Vec::with_capacity(layer.out_dim());
        for o in 0..layer.out_dim() {
            // Pre-activation range z_o = Σ w h + b.
            let mut z = Interval::point(layer.bias()[o]); // dwv-lint: allow(panic-freedom#index) -- o ranges over layer.out_dim()
            for (k, hk) in h.iter().enumerate() {
                z += *hk * layer.weight(o, k);
            }
            let dz = activation_derivative_range(layer.activation(), z);
            let row: Vec<Interval> = (0..n)
                .map(|i| {
                    let mut acc = Interval::ZERO;
                    for (k, jrow) in jac.iter().enumerate() {
                        acc += jrow[i] * layer.weight(o, k); // dwv-lint: allow(panic-freedom#index) -- Jacobian rows are n-wide by construction
                    }
                    acc * dz
                })
                .collect();
            new_jac.push(row);
            new_h.push(activation_range(layer.activation(), z));
        }
        jac = new_jac;
        h = new_h;
    }
    jac.iter()
        .map(|row| row.iter().map(|iv| iv.mag().powi(2)).sum::<f64>().sqrt())
        .fold(0.0, f64::max)
}

/// Range of an activation over a pre-activation interval.
fn activation_range(act: Activation, z: Interval) -> Interval {
    match act {
        Activation::Identity => z,
        Activation::ReLU => z.relu(),
        Activation::Tanh => z.tanh(),
        Activation::Sigmoid => z.sigmoid(),
    }
}

/// Range of an activation's derivative over a pre-activation interval.
fn activation_derivative_range(act: Activation, z: Interval) -> Interval {
    match act {
        Activation::Identity => Interval::ONE,
        Activation::ReLU => {
            if z.lo() > 0.0 {
                Interval::ONE
            } else if z.hi() <= 0.0 {
                Interval::ZERO
            } else {
                Interval::new(0.0, 1.0)
            }
        }
        Activation::Tanh => {
            // σ' = 1 − tanh²(z), decreasing in |z|.
            let t = z.abs().mig();
            let hi = 1.0 - t.tanh().powi(2);
            let m = z.mag();
            let lo = 1.0 - m.tanh().powi(2);
            Interval::new((lo - 1e-12).max(0.0), (hi + 1e-12).min(1.0))
        }
        Activation::Sigmoid => {
            // σ' = σ(1−σ) ≤ 1/4, decreasing in |z|.
            let s = |x: f64| 1.0 / (1.0 + (-x).exp());
            let t = z.abs().mig();
            let hi = s(t) * (1.0 - s(t));
            let m = z.mag();
            let lo = s(m) * (1.0 - s(m));
            Interval::new((lo - 1e-12).max(0.0), (hi + 1e-12).min(0.25))
        }
    }
}

/// A bound on `‖∇g‖₂` over the box via interval evaluation of the partials.
fn gradient_bound(g: &Polynomial, bx: &IntervalBox) -> f64 {
    (0..g.nvars())
        .map(|i| {
            let d = g.partial_derivative(i);
            d.eval_interval(bx.intervals()).mag().powi(2)
        })
        .sum::<f64>()
        .sqrt()
}

/// Inflates zero-width dimensions so the Bernstein machinery has a valid
/// domain.
fn ensure_positive_widths(b: &IntervalBox) -> IntervalBox {
    let dims = b
        .intervals()
        .iter()
        .map(|iv| {
            if iv.width() > 0.0 {
                *iv
            } else {
                iv.inflate(1e-9)
            }
        })
        .collect();
    IntervalBox::new(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_nn::Network;
    use dwv_taylor::unit_domain;

    fn small_net(seed: u64) -> NnController {
        NnController::new(Network::new(
            &[2, 6, 1],
            Activation::ReLU,
            Activation::Tanh,
            seed,
        ))
    }

    /// Checks that the abstraction's enclosure contains the true network
    /// output on a dense grid of concrete states.
    fn assert_sound<A: NnAbstraction>(abs: &A, ctrl: &NnController, bx: &IntervalBox) {
        let state = TmVector::from_box(bx);
        let dom = unit_domain(bx.dim());
        let u = abs
            .abstract_network(ctrl, &state, &dom)
            .expect("abstraction succeeds");
        // Evaluate at normalized grid points a; map to concrete x.
        let grid = IntervalBox::from_bounds(&vec![(-1.0, 1.0); bx.dim()]).grid(7);
        for a in grid {
            let x: Vec<f64> = (0..bx.dim())
                .map(|i| bx.interval(i).mid() + bx.interval(i).rad() * a[i])
                .collect();
            let truth = ctrl.network().forward(&x)[0] * ctrl.output_scale();
            let enc = u.component(0).eval(&a);
            assert!(
                enc.inflate(1e-9).contains_value(truth),
                "{} misses truth {truth} at x={x:?} (enc {enc})",
                abs.name()
            );
        }
    }

    #[test]
    fn taylor_abstraction_sound_on_relu_tanh_net() {
        let ctrl = small_net(11);
        let bx = IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]);
        assert_sound(&TaylorAbstraction::default(), &ctrl, &bx);
    }

    #[test]
    fn taylor_abstraction_sound_on_wider_box() {
        let ctrl = small_net(13);
        let bx = IntervalBox::from_bounds(&[(-1.0, 0.0), (0.0, 1.0)]);
        assert_sound(&TaylorAbstraction::with_order(3), &ctrl, &bx);
    }

    #[test]
    fn bernstein_abstraction_sound() {
        let ctrl = small_net(17);
        let bx = IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]);
        assert_sound(&BernsteinAbstraction::default(), &ctrl, &bx);
    }

    #[test]
    fn bernstein_abstraction_sound_with_scale() {
        let ctrl = NnController::with_output_scale(
            Network::new(&[2, 5, 1], Activation::ReLU, Activation::Tanh, 3),
            10.0,
        );
        let bx = IntervalBox::from_bounds(&[(0.2, 0.4), (-0.1, 0.1)]);
        assert_sound(&BernsteinAbstraction::default(), &ctrl, &bx);
    }

    #[test]
    fn taylor_tighter_than_trivial_bound() {
        // The enclosure width should be far below the trivial ±scale bound
        // on small boxes.
        let ctrl = small_net(19);
        let bx = IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]);
        let state = TmVector::from_box(&bx);
        let dom = unit_domain(2);
        let u = TaylorAbstraction::default()
            .abstract_network(&ctrl, &state, &dom)
            .unwrap();
        let w = u.component(0).range(&dom).width();
        assert!(w < 0.5, "enclosure width {w} not tight");
    }

    #[test]
    fn relu_straddling_relaxation_sound() {
        // A 1-layer net engineered so the pre-activation straddles zero.
        let layer = dwv_nn::Layer::from_params(1, 1, vec![1.0], vec![0.0], Activation::ReLU);
        let out = dwv_nn::Layer::from_params(1, 1, vec![1.0], vec![0.0], Activation::Identity);
        let ctrl = NnController::new(Network::from_layers(vec![layer, out]));
        let bx = IntervalBox::from_bounds(&[(-1.0, 2.0)]);
        assert_sound(&TaylorAbstraction::default(), &ctrl, &bx);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let ctrl = small_net(1);
        let state = TmVector::from_box(&IntervalBox::from_bounds(&[(0.0, 1.0)]));
        let res = TaylorAbstraction::default().abstract_network(&ctrl, &state, &unit_domain(1));
        assert!(matches!(res, Err(ReachError::Unsupported(_))));
    }

    #[test]
    fn derivative_bounds_monotone_fallback() {
        // Fallback formula kicks in beyond the table.
        let b6 = activation_derivative_bound(Activation::Tanh, 6);
        assert!(b6 > TANH_DERIV_BOUNDS[5]);
        assert_eq!(activation_derivative_bound(Activation::ReLU, 3), 0.0);
    }
}
