//! Exact reachability for discretized LTI systems under linear feedback —
//! the Flow\* stand-in used for the ACC benchmark (paper §3.1).
//!
//! For `ẋ = Ax + Bu + c` discretized with zero-order hold at period `δ`,
//! the closed loop under `u = Θx` is the affine recursion
//!
//! ```text
//! X_r[t+1] = (A_d + B_d Θ) X_r[t] ⊕ {c_d},   X_r[0] = X₀
//! ```
//!
//! The affine image of a convex polytope is exactly the convex hull of the
//! mapped vertices, so the reach sets are computed *exactly* (up to f64
//! rounding): in 2-D as convex polygons, in general as propagated vertex
//! clouds with tight bounding boxes.

use crate::error::ReachError;
use crate::flowpipe::{Flowpipe, StepEnclosure};
use crate::sweep::affine_sweep_box_chord;
use dwv_dynamics::linalg::{discretize, Matrix};
use dwv_dynamics::{LinearController, ReachAvoidProblem};
use dwv_geom::{ConvexPolygon, Vec2};
use dwv_interval::{Interval, IntervalBox};

/// Exact polytope-recursion verifier for LTI systems with linear controllers.
///
/// # Example
///
/// ```
/// use dwv_reach::LinearReach;
/// use dwv_dynamics::{acc, LinearController};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = acc::reach_avoid_problem();
/// let verifier = LinearReach::for_problem(&problem)?;
/// let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
/// let fp = verifier.reach(&k)?;
/// assert_eq!(fp.len(), problem.horizon_steps + 1);
/// // Every step of the 2-D recursion carries an exact polygon.
/// assert!(fp.steps().iter().all(|s| s.polygon.is_some()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearReach {
    ad: Matrix,
    bd: Matrix,
    cd: Vec<f64>,
    // Continuous-time parts, kept for the inter-sample sweep enclosures.
    a: Matrix,
    b: Matrix,
    c: Vec<f64>,
    x0: IntervalBox,
    steps: usize,
    delta: f64,
}

impl LinearReach {
    /// Builds the verifier for a problem whose dynamics are affine.
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::Unsupported`] when the dynamics do not expose
    /// `(A, B, c)` parts.
    pub fn for_problem(problem: &ReachAvoidProblem) -> Result<Self, ReachError> {
        let (a, b, c) = problem.dynamics.linear_parts().ok_or_else(|| {
            ReachError::Unsupported(format!(
                "dynamics '{}' are not affine; use the Taylor-model verifier",
                problem.dynamics.name()
            ))
        })?;
        Ok(Self::new(
            &a,
            &b,
            &c,
            problem.x0.clone(),
            problem.delta,
            problem.horizon_steps,
        ))
    }

    /// Builds the verifier from explicit affine parts `ẋ = Ax + Bu + c`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or a non-finite initial box.
    #[must_use]
    pub fn new(
        a: &Matrix,
        b: &Matrix,
        c: &[f64],
        x0: IntervalBox,
        delta: f64,
        steps: usize,
    ) -> Self {
        assert_eq!(a.nrows(), x0.dim(), "A dimension must match X0");
        assert_eq!(c.len(), a.nrows(), "affine term length mismatch");
        assert!(x0.is_finite(), "initial box must be bounded");
        // Discretize [B | c] together so c_d = ∫ e^{At} c dt comes for free.
        let c_col = Matrix::from_rows(c.iter().map(|&v| vec![v]).collect());
        let b_aug = b.hcat(&c_col);
        let (ad, bd_aug) = discretize(a, &b_aug, delta);
        let m = b.ncols();
        let bd = bd_aug.block(0, 0, a.nrows(), m);
        let cd_m = bd_aug.block(0, m, a.nrows(), 1);
        let cd = (0..a.nrows()).map(|i| cd_m.get(i, 0)).collect();
        Self {
            ad,
            bd,
            cd,
            a: a.clone(),
            b: b.clone(),
            c: c.to_vec(),
            x0,
            steps,
            delta,
        }
    }

    /// The discretized closed-loop map `M = A_d + B_d Θ`.
    #[must_use]
    pub fn closed_loop_matrix(&self, controller: &LinearController) -> Matrix {
        let n = self.ad.nrows();
        let m = self.bd.ncols();
        let mut k = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                k.set(i, j, controller.gain(i, j));
            }
        }
        self.ad.add(&self.bd.matmul(&k))
    }

    /// Replaces the initial set (the Algorithm 2 per-cell entry point).
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch or a non-finite box.
    #[must_use]
    pub fn with_initial_set(mut self, x0: IntervalBox) -> Self {
        assert_eq!(x0.dim(), self.ad.nrows(), "X0 dimension must match A");
        assert!(x0.is_finite(), "initial box must be bounded");
        self.x0 = x0;
        self
    }

    /// Computes the reachable sets.
    ///
    /// Step 0 is the initial set at `t = 0` (exact); step `k ≥ 1` covers
    /// the control period `[(k−1)δ, kδ]`: its `end_box`/`polygon` are the
    /// *exact* instantaneous set at `kδ` from the vertex recursion, and its
    /// `enclosure` additionally covers the inter-sample trajectory sweep
    /// (a sound chord-plus-curvature derivative-bound enclosure), so
    /// safety judgements hold for *all* continuous times (Definition 1).
    ///
    /// # Errors
    ///
    /// Returns [`ReachError::Diverged`] if the recursion produces non-finite
    /// coordinates (an unstable closed loop blowing past f64 range).
    pub fn reach(&self, controller: &LinearController) -> Result<Flowpipe, ReachError> {
        let _run = dwv_obs::span("reach.run");
        let n = self.x0.dim();
        let m = self.closed_loop_matrix(controller);
        let mut vertices: Vec<Vec<f64>> = self.x0.corners();
        let mut steps = Vec::with_capacity(self.steps + 1);
        steps.push(StepEnclosure {
            t0: 0.0,
            t1: 0.0,
            enclosure: self.x0.clone(),
            end_box: self.x0.clone(),
            polygon: instant_polygon(&vertices, n),
        });
        for t in 1..=self.steps {
            let prev_box: IntervalBox = vertex_box(&vertices, n);
            let u_box: Vec<Interval> = (0..self.bd.ncols())
                .map(|i| {
                    let mut acc = Interval::ZERO;
                    for j in 0..n {
                        acc += prev_box.interval(j) * controller.gain(i, j);
                    }
                    acc
                })
                .collect();
            vertices = vertices
                .iter()
                .map(|v| {
                    let mut x = m.matvec(v);
                    for (xi, cdi) in x.iter_mut().zip(&self.cd) {
                        *xi += cdi;
                    }
                    x
                })
                .collect();
            if vertices.iter().any(|v| v.iter().any(|x| !x.is_finite())) {
                return Err(ReachError::Diverged {
                    step: t,
                    source: dwv_taylor::FlowpipeError::Diverged {
                        last_radius: f64::INFINITY,
                    },
                });
            }
            let end_box = vertex_box(&vertices, n);
            let sweep = affine_sweep_box_chord(
                &self.a, &self.b, &self.c, &prev_box, &end_box, &u_box, self.delta,
            );
            steps.push(StepEnclosure {
                t0: (t - 1) as f64 * self.delta,
                t1: t as f64 * self.delta,
                enclosure: sweep,
                end_box,
                polygon: instant_polygon(&vertices, n),
            });
        }
        Ok(Flowpipe::new(steps))
    }
}

impl crate::verifier::Verifier<LinearController> for LinearReach {
    fn name(&self) -> &'static str {
        "linear-exact"
    }

    fn cost_class(&self) -> crate::verifier::CostClass {
        crate::verifier::CostClass::Exact
    }

    fn reach(&self, controller: &LinearController) -> Result<Flowpipe, ReachError> {
        LinearReach::reach(self, controller)
    }

    fn reach_from(
        &self,
        x0: &IntervalBox,
        controller: &LinearController,
    ) -> Result<Flowpipe, ReachError> {
        self.clone().with_initial_set(x0.clone()).reach(controller)
    }
}

fn vertex_box(vertices: &[Vec<f64>], n: usize) -> IntervalBox {
    (0..n)
        .map(|i| {
            Interval::hull_of_values(vertices.iter().map(|v| v[i])) // dwv-lint: allow(panic-freedom#index) -- vertex coordinates are n-wide by construction
                .expect("vertex cloud is non-empty") // dwv-lint: allow(panic-freedom) -- the box vertex enumeration is non-empty
        })
        .collect()
}

fn instant_polygon(vertices: &[Vec<f64>], n: usize) -> Option<ConvexPolygon> {
    if n == 2 {
        // dwv-lint: allow(panic-freedom#index) -- guarded by n == 2
        ConvexPolygon::from_points(vertices.iter().map(|v| Vec2::new(v[0], v[1])).collect()).ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_dynamics::acc;
    use dwv_dynamics::simulate::Simulator;
    use dwv_dynamics::Controller;

    fn stable_gain() -> LinearController {
        // Equilibrium at (150, 40): 150a + 40b = 8.
        LinearController::new(2, 1, vec![0.5867, -2.0])
    }

    #[test]
    fn reach_contains_simulated_boundary_states() {
        let p = acc::reach_avoid_problem();
        let v = LinearReach::for_problem(&p).unwrap();
        let k = stable_gain();
        let fp = v.reach(&k).unwrap();
        // Simulate several initial corners/centers; sampled states must lie
        // inside the per-step enclosures (discretization differences between
        // the exact ZOH map and RK4 are ~1e-10).
        let sim = Simulator::new(p.dynamics.clone(), p.delta);
        for x0 in [[122.0, 48.0], [124.0, 52.0], [123.0, 50.0], [122.5, 51.0]] {
            let traj = sim.rollout(&x0, &k, p.horizon_steps);
            for (t, x) in traj.states.iter().enumerate() {
                let enc = &fp.steps()[t].enclosure.inflate(1e-6);
                assert!(
                    enc.contains_point(x),
                    "t={t}: state {x:?} outside enclosure {enc}"
                );
            }
        }
    }

    #[test]
    fn polygon_area_contracts_for_stable_loop() {
        let p = acc::reach_avoid_problem();
        let v = LinearReach::for_problem(&p).unwrap();
        let fp = v.reach(&stable_gain()).unwrap();
        let first = fp.steps()[0].polygon.as_ref().unwrap().area();
        let last = fp.final_step().polygon.as_ref().unwrap().area();
        assert!(
            last < first,
            "stable loop should contract: {first} -> {last}"
        );
    }

    #[test]
    fn instability_detected_or_finite() {
        // A destabilizing gain: positive feedback on v.
        let p = acc::reach_avoid_problem();
        let v = LinearReach::for_problem(&p).unwrap();
        let k = LinearController::new(2, 1, vec![0.0, 500.0]);
        match v.reach(&k) {
            Ok(fp) => {
                // Blow-up without overflow: the final box must be enormous.
                assert!(fp.final_step().enclosure.volume() > 1e12);
            }
            Err(ReachError::Diverged { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn zero_steps_is_initial_set_only() {
        let p = acc::reach_avoid_problem();
        let mut v = LinearReach::for_problem(&p).unwrap();
        v.steps = 0;
        let fp = v.reach(&stable_gain()).unwrap();
        assert_eq!(fp.len(), 1);
        assert!(fp.steps()[0].enclosure.contains(&p.x0));
    }

    #[test]
    fn nonlinear_system_rejected() {
        let p = dwv_dynamics::oscillator::reach_avoid_problem();
        assert!(matches!(
            LinearReach::for_problem(&p),
            Err(ReachError::Unsupported(_))
        ));
    }

    #[test]
    fn closed_loop_matrix_matches_manual_computation() {
        let p = acc::reach_avoid_problem();
        let v = LinearReach::for_problem(&p).unwrap();
        let k = stable_gain();
        let m = v.closed_loop_matrix(&k);
        // M = Ad + Bd*K elementwise.
        for i in 0..2 {
            for j in 0..2 {
                let manual = v.ad.get(i, j) + v.bd.get(i, 0) * k.params()[j];
                assert!((m.get(i, j) - manual).abs() < 1e-14);
            }
        }
    }
}
