//! Property-based tests for the reachability layer: flowpipe containment of
//! simulated trajectories under randomized systems, controllers and initial
//! sets.

use dwv_dynamics::linalg::Matrix;
use dwv_dynamics::{acc, oscillator, LinearController, NnController};
use dwv_interval::IntervalBox;
use dwv_nn::{Activation, Network};
use dwv_reach::{
    DependencyTracking, LinearReach, TaylorAbstraction, TaylorReach, TaylorReachConfig,
    ZonotopeReach,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random stable-ish gains on random sub-boxes of the ACC initial set:
    /// the exact linear recursion contains the discrete closed-loop orbit of
    /// every corner.
    #[test]
    fn linear_reach_contains_discrete_orbits(
        g0 in 0.0..1.0f64, g1 in -4.0..-0.5f64,
        fx in 0.0..0.5f64, fy in 0.0..0.5f64,
    ) {
        let p = acc::reach_avoid_problem();
        // A sub-box of X0.
        let x0 = IntervalBox::from_bounds(&[
            (122.0 + fx, 123.0 + fx),
            (48.0 + fy * 4.0, 50.0 + fy * 4.0),
        ]);
        let (a, b, c) = p.dynamics.linear_parts().expect("affine");
        let v = LinearReach::new(&a, &b, &c, x0.clone(), p.delta, 40);
        let k = LinearController::new(2, 1, vec![g0, g1]);
        let fp = v.reach(&k).expect("finite");
        // Discrete closed-loop orbit from each corner via the same map.
        let m = v.closed_loop_matrix(&k);
        let cd = discretized_affine_term(&a, &b, &c, p.delta);
        for corner in x0.corners() {
            let mut x = corner.clone();
            for t in 1..=40usize {
                let mut nx = m.matvec(&x);
                nx[0] += cd[0];
                nx[1] += cd[1];
                x = nx;
                prop_assert!(
                    fp.steps()[t].end_box.inflate(1e-7).contains_point(&x),
                    "step {t}: corner orbit {x:?} escapes end box"
                );
            }
        }
    }

    /// The zonotope verifier is always at least as large as the vertex
    /// recursion (it over-approximates through order reduction).
    #[test]
    fn zonotope_encloses_vertex_recursion(g0 in 0.0..1.0f64, g1 in -4.0..-0.5f64, order in 1.0..8.0f64) {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![g0, g1]);
        let lr = LinearReach::for_problem(&p).expect("affine").reach(&k).expect("finite");
        let zr = ZonotopeReach::for_problem(&p)
            .expect("affine")
            .with_max_order(order)
            .reach(&k)
            .expect("finite");
        for (z, l) in zr.steps().iter().zip(lr.steps()) {
            prop_assert!(z.end_box.inflate(1e-7).contains(&l.end_box));
        }
    }

    /// Short Taylor flowpipes contain the RK4 endpoint of the box center for
    /// random small networks.
    #[test]
    fn taylor_reach_contains_center_trajectory(seed in 0u64..500) {
        let mut p = oscillator::reach_avoid_problem();
        p.horizon_steps = 4;
        let ctrl = NnController::new(Network::new(
            &[2, 6, 1],
            Activation::ReLU,
            Activation::Tanh,
            seed,
        ));
        let v = TaylorReach::new(
            &p,
            TaylorAbstraction::default(),
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        );
        let fp = v.reach(&ctrl).expect("short horizon verifies");
        let sim = dwv_dynamics::simulate::Simulator::new(p.dynamics.clone(), p.delta);
        let traj = sim.rollout(&[-0.5, 0.5], &ctrl, p.horizon_steps);
        for (t, x) in traj.states.iter().enumerate().skip(1) {
            prop_assert!(
                fp.steps()[t].end_box.inflate(1e-7).contains_point(x),
                "step {t}: {x:?} escapes"
            );
        }
    }
}

/// `c_d = ∫₀^δ e^{At} c dt` via the same augmented-exponential trick the
/// verifier uses (re-derived here so the test is independent).
fn discretized_affine_term(a: &Matrix, b: &Matrix, c: &[f64], delta: f64) -> Vec<f64> {
    let c_col = Matrix::from_rows(c.iter().map(|&v| vec![v]).collect());
    let b_aug = b.hcat(&c_col);
    let (_, bd_aug) = dwv_dynamics::linalg::discretize(a, &b_aug, delta);
    let m = b.ncols();
    (0..a.nrows()).map(|i| bd_aug.get(i, m)).collect()
}
