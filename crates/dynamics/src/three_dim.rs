//! The 3-D numerical benchmark (paper §4, originally from ReachNN/Verisig).
//!
//! ```text
//! ẋ₁ = x₃³ − x₂
//! ẋ₂ = x₃
//! ẋ₃ = u
//! ```
//!
//! with `δ = 0.2`, `X₀ = [0.38,0.4] × [0.45,0.47] × [0.25,0.27]`,
//! `X_g : x₁ ∈ [−0.5,−0.28], x₂ ∈ [0,0.28]`,
//! `X_u : x₁ ∈ [−0.1,0.2], x₂ ∈ [0.55,0.6]` (x₃ unconstrained in both).

use crate::system::{Dynamics, ReachAvoidProblem};
use dwv_geom::Region;
use dwv_interval::IntervalBox;
use dwv_poly::Polynomial;
use dwv_taylor::OdeRhs;
use std::sync::Arc;

/// The sampling period `δ`.
pub const DELTA: f64 = 0.2;

/// Control steps in the verification horizon (`T = 2 s`).
pub const HORIZON_STEPS: usize = 10;

/// The 3-D system dynamics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeDim;

impl Dynamics for ThreeDim {
    fn name(&self) -> &str {
        "three-dim"
    }

    fn n_state(&self) -> usize {
        3
    }

    fn n_input(&self) -> usize {
        1
    }

    fn deriv(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        vec![x[2] * x[2] * x[2] - x[1], x[2], u[0]]
    }

    fn deriv_into(&self, x: &[f64], u: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.push(x[2] * x[2] * x[2] - x[1]);
        out.push(x[2]);
        out.push(u[0]);
    }

    fn vector_field(&self) -> OdeRhs {
        // Variables: (x1, x2, x3, u).
        let x2 = Polynomial::var(4, 1);
        let x3 = Polynomial::var(4, 2);
        let u = Polynomial::var(4, 3);
        OdeRhs::new(
            3,
            1,
            vec![x3.clone() * x3.clone() * x3.clone() - x2.clone(), x3, u],
        )
    }
}

/// The paper's 3-D reach-avoid problem instance.
#[must_use]
pub fn reach_avoid_problem() -> ReachAvoidProblem {
    ReachAvoidProblem {
        dynamics: Arc::new(ThreeDim),
        x0: IntervalBox::from_bounds(&[(0.38, 0.4), (0.45, 0.47), (0.25, 0.27)]),
        unsafe_region: Region::box_constraints(&[(-0.1, 0.2), (0.55, 0.6)], 3),
        goal_region: Region::box_constraints(&[(-0.5, -0.28), (0.0, 0.28)], 3),
        delta: DELTA,
        horizon_steps: HORIZON_STEPS,
        universe: IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0), (-2.0, 2.0)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deriv_matches_field_polynomials() {
        let sys = ThreeDim;
        let f = sys.vector_field();
        for (x, u) in [([0.39, 0.46, 0.26], 0.5), ([-0.2, 0.1, -0.5], -1.0)] {
            let d1 = sys.deriv(&x, &[u]);
            let d2 = f.eval(&[x[0], x[1], x[2], u]);
            for i in 0..3 {
                assert!((d1[i] - d2[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cubic_term_present() {
        let sys = ThreeDim;
        let d = sys.deriv(&[0.0, 0.0, 2.0], &[0.0]);
        assert_eq!(d[0], 8.0);
        assert_eq!(sys.vector_field().degree(), 3);
    }

    #[test]
    fn regions_unconstrained_in_x3() {
        let p = reach_avoid_problem();
        assert!(p.goal_region.contains_point(&[-0.4, 0.1, 100.0]));
        assert!(p.unsafe_region.contains_point(&[0.0, 0.57, -100.0]));
        assert!(!p.goal_region.contains_point(&[0.0, 0.1, 0.0]));
    }
}
