//! Linear adaptive cruise control (ACC) benchmark (paper §4, Fig. 3).
//!
//! Two vehicles: the front vehicle drives at `v_f = 40`; the ego vehicle
//! controls its acceleration. With state `x = (s, v)` (relative distance and
//! ego velocity):
//!
//! ```text
//! ṡ = v_f − v
//! v̇ = k·v + u          (k = −0.2)
//! ```
//!
//! Sets (from the paper): `X₀ = [122,124] × [48,52]`, `X_u = {s ≤ 120}`,
//! `X_g = [145,155] × [39.5,40.5]`, sampling period `δ = 0.1`.
//!
//! The ego starts *faster* than the front vehicle (v ≈ 50 > 40), so the gap
//! initially shrinks toward the unsafe region; the controller must brake
//! below `v_f` to re-open the gap and then settle at `v ≈ 40` inside the
//! goal window — the reach-avoid tension that makes this a good benchmark.

use crate::linalg::Matrix;
use crate::system::{Dynamics, ReachAvoidProblem};
use dwv_geom::{HalfSpace, Region};
use dwv_interval::IntervalBox;
use dwv_poly::Polynomial;
use dwv_taylor::OdeRhs;
use std::sync::Arc;

/// The front-vehicle velocity `v_f`.
pub const V_FRONT: f64 = 40.0;

/// The velocity damping coefficient `k`.
pub const K_DAMP: f64 = -0.2;

/// The sampling period `δ`.
pub const DELTA: f64 = 0.1;

/// Control steps in the verification horizon (`T = 12 s`), long enough for
/// the gap to re-open from ≈123 and settle into the goal window around
/// `(150, 40)` (a pure-linear feedback has one slow closed-loop pole once
/// the equilibrium is pinned to the goal, so settling takes ≈10 s).
pub const HORIZON_STEPS: usize = 120;

/// The ACC dynamics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Acc;

impl Dynamics for Acc {
    fn name(&self) -> &str {
        "acc"
    }

    fn n_state(&self) -> usize {
        2
    }

    fn n_input(&self) -> usize {
        1
    }

    fn deriv(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        vec![V_FRONT - x[1], K_DAMP * x[1] + u[0]]
    }

    fn deriv_into(&self, x: &[f64], u: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.push(V_FRONT - x[1]);
        out.push(K_DAMP * x[1] + u[0]);
    }

    fn vector_field(&self) -> OdeRhs {
        // Variables: (s, v, u).
        let v = Polynomial::var(3, 1);
        let u = Polynomial::var(3, 2);
        OdeRhs::new(
            2,
            1,
            vec![
                Polynomial::constant(3, V_FRONT) - v.clone(),
                v.scale(K_DAMP) + u,
            ],
        )
    }

    fn linear_parts(&self) -> Option<(Matrix, Matrix, Vec<f64>)> {
        Some((
            Matrix::from_rows(vec![vec![0.0, -1.0], vec![0.0, K_DAMP]]),
            Matrix::from_rows(vec![vec![0.0], vec![1.0]]),
            vec![V_FRONT, 0.0],
        ))
    }
}

/// The paper's ACC reach-avoid problem instance.
#[must_use]
pub fn reach_avoid_problem() -> ReachAvoidProblem {
    ReachAvoidProblem {
        dynamics: Arc::new(Acc),
        x0: IntervalBox::from_bounds(&[(122.0, 124.0), (48.0, 52.0)]),
        unsafe_region: Region::from_halfspace(HalfSpace::new(vec![1.0, 0.0], 120.0)),
        goal_region: Region::from_box(IntervalBox::from_bounds(&[(145.0, 155.0), (39.5, 40.5)])),
        delta: DELTA,
        horizon_steps: HORIZON_STEPS,
        universe: IntervalBox::from_bounds(&[(80.0, 220.0), (0.0, 80.0)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deriv_matches_field_polynomials() {
        let acc = Acc;
        let f = acc.vector_field();
        for (x, u) in [([123.0, 50.0], 2.0), ([150.0, 40.0], -1.0)] {
            let d1 = acc.deriv(&x, &[u]);
            let d2 = f.eval(&[x[0], x[1], u]);
            assert!((d1[0] - d2[0]).abs() < 1e-12);
            assert!((d1[1] - d2[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_parts_reproduce_deriv() {
        let acc = Acc;
        let (a, b, c) = acc.linear_parts().unwrap();
        let x = [123.0, 50.0];
        let u = [1.5];
        let ax = a.matvec(&x);
        let bu = b.matvec(&u);
        let d = acc.deriv(&x, &u);
        for i in 0..2 {
            assert!((ax[i] + bu[i] + c[i] - d[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn problem_sets_match_paper() {
        let p = reach_avoid_problem();
        assert_eq!(p.n_state(), 2);
        assert!(p.x0.contains_point(&[123.0, 50.0]));
        assert!(p.unsafe_region.contains_point(&[119.0, 40.0]));
        assert!(!p.unsafe_region.contains_point(&[121.0, 40.0]));
        assert!(p.goal_region.contains_point(&[150.0, 40.0]));
        assert!((p.horizon() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn gap_initially_shrinks() {
        // The benchmark's tension: with v > v_f the distance decreases.
        let acc = Acc;
        let d = acc.deriv(&[123.0, 50.0], &[0.0]);
        assert!(d[0] < 0.0);
    }
}
