//! Monte-Carlo estimation of the paper's SC / GR rates.
//!
//! Table 1 reports the *safe control rate* (SC) and *goal-reaching rate*
//! (GR): the fraction of trajectories, from initial states sampled uniformly
//! in `X₀`, that stay clear of `X_u` for the whole horizon and that visit
//! `X_g` within it (the paper uses 500 samples; so do we by default).

use crate::simulate::Simulator;
use crate::system::{Controller, ReachAvoidProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SC / GR estimates from simulated rollouts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateReport {
    /// Fraction of trajectories that never enter the unsafe region.
    pub safe_rate: f64,
    /// Fraction of trajectories that reach the goal region within the
    /// horizon.
    pub goal_rate: f64,
    /// Fraction that do both (the empirical reach-avoid rate).
    pub reach_avoid_rate: f64,
    /// Number of sampled initial states.
    pub n_samples: usize,
}

impl RateReport {
    /// Whether both rates are 100%.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.safe_rate >= 1.0 && self.goal_rate >= 1.0
    }
}

/// Estimates SC and GR for `controller` on `problem` from `n_samples`
/// uniformly sampled initial states (deterministic in `seed`).
///
/// Safety is checked on every integrator sub-step (Definition 1 quantifies
/// over all `t`); goal-reaching is checked at sub-step resolution too.
///
/// # Example
///
/// ```
/// use dwv_dynamics::{acc, eval::rates, LinearController};
///
/// let p = acc::reach_avoid_problem();
/// let bad = LinearController::zeros(2, 1); // no braking: will go unsafe
/// let r = rates(&p, &bad, 100, 7);
/// assert!(r.safe_rate < 1.0);
/// ```
#[must_use]
pub fn rates<C: Controller + ?Sized>(
    problem: &ReachAvoidProblem,
    controller: &C,
    n_samples: usize,
    seed: u64,
) -> RateReport {
    assert!(n_samples > 0, "need at least one sample");
    let sim = Simulator::new(problem.dynamics.clone(), problem.delta);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut safe = 0usize;
    let mut goal = 0usize;
    let mut both = 0usize;
    let mut x0 = vec![0.0; problem.x0.dim()];
    for _ in 0..n_samples {
        for (i, xi) in x0.iter_mut().enumerate() {
            let iv = problem.x0.interval(i);
            *xi = rng.gen_range(iv.lo()..=iv.hi());
        }
        // Stream the fine trajectory instead of materialising it: the
        // region predicates fold into flags on the fly, so a 500-sample
        // estimate performs no per-state allocation at all.
        let mut is_safe = true;
        let mut reaches = false;
        sim.rollout_visit(&x0, controller, problem.horizon_steps, |x| {
            is_safe = is_safe && !problem.unsafe_region.contains_point(x);
            reaches = reaches || problem.goal_region.contains_point(x);
        });
        safe += usize::from(is_safe);
        goal += usize::from(reaches);
        both += usize::from(is_safe && reaches);
    }
    RateReport {
        safe_rate: safe as f64 / n_samples as f64,
        goal_rate: goal as f64 / n_samples as f64,
        reach_avoid_rate: both as f64 / n_samples as f64,
        n_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc;
    use crate::system::LinearController;

    #[test]
    fn uncontrolled_acc_is_unsafe() {
        // v ≈ 50 > v_f: with no braking the gap closes below 120.
        let p = acc::reach_avoid_problem();
        let k = LinearController::zeros(2, 1);
        let r = rates(&p, &k, 50, 1);
        assert!(r.safe_rate < 0.5, "expected mostly unsafe, got {r:?}");
        assert!(!r.is_perfect());
    }

    #[test]
    fn deterministic_in_seed() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.5, -2.0]);
        let a = rates(&p, &k, 30, 9);
        let b = rates(&p, &k, 30, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn rates_bounded() {
        let p = acc::reach_avoid_problem();
        let k = LinearController::new(2, 1, vec![0.2, -1.0]);
        let r = rates(&p, &k, 20, 3);
        assert!((0.0..=1.0).contains(&r.safe_rate));
        assert!((0.0..=1.0).contains(&r.goal_rate));
        assert!(r.reach_avoid_rate <= r.safe_rate.min(r.goal_rate));
    }
}
