//! Small dense linear algebra for system discretization.
//!
//! The verifiers need the zero-order-hold discretization of continuous LTI
//! systems: `A_d = e^{Aδ}`, `B_d = ∫₀^δ e^{At} B dt` (paper §3.1). State
//! dimensions in the benchmarks are ≤ 3, so a simple dense implementation is
//! appropriate — no external linear-algebra crate is needed.

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use dwv_dynamics::linalg::Matrix;
///
/// let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![-1.0, 0.0]]);
/// let e = a.expm();
/// // e^{A} for the rotation generator is a rotation by 1 radian.
/// assert!((e.get(0, 0) - 1.0f64.cos()).abs() < 1e-9);
/// assert!((e.get(0, 1) - 1.0f64.sin()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The `n × n` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the matrix is empty.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "rows must have equal lengths"
        );
        let r = rows.len();
        Self {
            rows: r,
            cols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Scalar multiple.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ncols`.
    #[must_use]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * v[j]).sum())
            .collect()
    }

    /// The max-row-sum (infinity) norm.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j).abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Matrix exponential by scaling-and-squaring with a Taylor series.
    ///
    /// Accurate to near machine precision for the well-conditioned, small
    /// matrices produced by benchmark discretization.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn expm(&self) -> Matrix {
        assert_eq!(self.rows, self.cols, "expm requires a square matrix");
        // Scale so the norm is below 0.5, square back afterwards.
        let norm = self.norm_inf();
        let s = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let a = self.scale(0.5f64.powi(s as i32));
        // Taylor series to order 18 (overkill for ‖A‖ ≤ 0.5).
        let mut term = Matrix::identity(self.rows);
        let mut acc = Matrix::identity(self.rows);
        for k in 1..=18 {
            term = term.matmul(&a).scale(1.0 / k as f64);
            acc = acc.add(&term);
        }
        for _ in 0..s {
            acc = acc.matmul(&acc);
        }
        acc
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    #[must_use]
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(i, j, self.get(i, j));
            }
            for j in 0..rhs.cols {
                out.set(i, self.cols + j, rhs.get(i, j));
            }
        }
        out
    }

    /// The sub-matrix `rows × cols` starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    #[must_use]
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of range"
        );
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                out.set(i, j, self.get(r0 + i, c0 + j));
            }
        }
        out
    }
}

/// Zero-order-hold discretization of `ẋ = Ax + Bu` with period `delta`:
/// returns `(A_d, B_d)` with `A_d = e^{Aδ}` and `B_d = ∫₀^δ e^{At} B dt`.
///
/// Computed via the augmented-matrix trick:
/// `exp(δ·[[A, B],[0, 0]]) = [[A_d, B_d],[0, I]]`.
///
/// # Panics
///
/// Panics if `a` is not square or `b`'s row count differs from `a`'s.
#[must_use]
pub fn discretize(a: &Matrix, b: &Matrix, delta: f64) -> (Matrix, Matrix) {
    assert_eq!(a.nrows(), a.ncols(), "A must be square");
    assert_eq!(b.nrows(), a.nrows(), "B row count must match A");
    let n = a.nrows();
    let m = b.ncols();
    let mut aug = Matrix::zeros(n + m, n + m);
    for i in 0..n {
        for j in 0..n {
            aug.set(i, j, a.get(i, j) * delta);
        }
        for j in 0..m {
            aug.set(i, n + j, b.get(i, j) * delta);
        }
    }
    let e = aug.expm();
    (e.block(0, 0, n, n), e.block(0, n, n, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_matmul() {
        let i = Matrix::identity(3);
        let a = Matrix::from_rows(vec![
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, -1.0],
            vec![3.0, 0.0, 1.0],
        ]);
        assert_eq!(i.matmul(&a), a);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_values() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(2, 2);
        assert_eq!(z.expm(), Matrix::identity(2));
    }

    #[test]
    fn expm_diagonal() {
        let a = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, -2.0]]);
        let e = a.expm();
        assert!((e.get(0, 0) - 1.0f64.exp()).abs() < 1e-10);
        assert!((e.get(1, 1) - (-2.0f64).exp()).abs() < 1e-10);
        assert!(e.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn expm_rotation() {
        let a = Matrix::from_rows(vec![vec![0.0, -2.0], vec![2.0, 0.0]]);
        let e = a.expm();
        assert!((e.get(0, 0) - 2.0f64.cos()).abs() < 1e-9);
        assert!((e.get(1, 0) - 2.0f64.sin()).abs() < 1e-9);
    }

    #[test]
    fn discretize_acc_matches_series() {
        // ACC: A = [[0, -1], [0, -0.2]], B = [[0], [1]], δ = 0.1.
        let a = Matrix::from_rows(vec![vec![0.0, -1.0], vec![0.0, -0.2]]);
        let b = Matrix::from_rows(vec![vec![0.0], vec![1.0]]);
        let (ad, bd) = discretize(&a, &b, 0.1);
        // Check A_d against a dense Taylor series of e^{Aδ}.
        let mut truth = Matrix::identity(2);
        let mut term = Matrix::identity(2);
        for k in 1..=20 {
            term = term.matmul(&a).scale(0.1 / k as f64);
            truth = truth.add(&term);
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!((ad.get(i, j) - truth.get(i, j)).abs() < 1e-10);
            }
        }
        // B_d ≈ ∫₀^δ e^{At}B dt by numerical quadrature.
        let quad = |row: usize| {
            let steps = 10_000;
            let mut acc = 0.0;
            for i in 0..steps {
                let t = 0.1 * (i as f64 + 0.5) / steps as f64;
                let eat = a.scale(t).expm();
                acc += eat.get(row, 1) * 1.0 * (0.1 / steps as f64);
            }
            acc
        };
        assert!((bd.get(0, 0) - quad(0)).abs() < 1e-6);
        assert!((bd.get(1, 0) - quad(1)).abs() < 1e-6);
    }

    #[test]
    fn block_and_hcat() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(vec![vec![5.0], vec![6.0]]);
        let c = a.hcat(&b);
        assert_eq!(c.ncols(), 3);
        assert_eq!(c.block(0, 2, 2, 1), b);
    }
}
