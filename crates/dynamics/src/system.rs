//! Dynamics and controller abstractions, and the reach-avoid problem tuple.

use crate::linalg::Matrix;
use dwv_geom::Region;
use dwv_interval::IntervalBox;
use dwv_nn::Network;
use dwv_taylor::OdeRhs;
use std::fmt;
use std::sync::Arc;

/// A continuous control system `ẋ = f(x, u)` (Eq. 1 of the paper).
///
/// All benchmark systems have polynomial vector fields, which
/// [`Dynamics::vector_field`] exposes for the Taylor-model verifier; linear
/// (affine) systems additionally expose their `(A, B, c)` parts for the exact
/// linear verifier.
pub trait Dynamics: Send + Sync {
    /// A short human-readable name ("acc", "oscillator", …).
    fn name(&self) -> &str;

    /// State dimension `n`.
    fn n_state(&self) -> usize;

    /// Input dimension `m`.
    fn n_input(&self) -> usize;

    /// The derivative `f(x, u)`.
    fn deriv(&self, x: &[f64], u: &[f64]) -> Vec<f64>;

    /// Writes `f(x, u)` into a reused buffer (cleared first).
    ///
    /// The default delegates to [`Dynamics::deriv`]; benchmark systems
    /// override it to skip the per-call allocation, which dominates the
    /// Monte-Carlo rate estimation (500 rollouts × thousands of RK4 stages).
    /// Overrides must be bit-identical to `deriv`.
    fn deriv_into(&self, x: &[f64], u: &[f64], out: &mut Vec<f64>) {
        let d = self.deriv(x, u);
        out.clear();
        out.extend_from_slice(&d);
    }

    /// The polynomial vector field in `(x, u)` variables.
    fn vector_field(&self) -> OdeRhs;

    /// For affine systems `ẋ = Ax + Bu + c`: the `(A, B, c)` triple.
    /// `None` for genuinely non-linear systems.
    fn linear_parts(&self) -> Option<(Matrix, Matrix, Vec<f64>)> {
        None
    }
}

/// A state-feedback controller `u = κ_θ(x)` with a flat parameter vector `θ`.
pub trait Controller {
    /// Expected state dimension.
    fn n_state(&self) -> usize;

    /// Produced input dimension.
    fn n_input(&self) -> usize;

    /// Computes the control input for a state.
    fn control(&self, x: &[f64]) -> Vec<f64>;

    /// Writes the control input into a reused buffer (cleared first).
    ///
    /// The default delegates to [`Controller::control`]; implementations may
    /// override it to avoid the per-call allocation. Overrides must be
    /// bit-identical to `control`.
    fn control_into(&self, x: &[f64], out: &mut Vec<f64>) {
        let u = self.control(x);
        out.clear();
        out.extend_from_slice(&u);
    }

    /// The flat parameter vector `θ`.
    fn params(&self) -> Vec<f64>;

    /// Overwrites `θ`.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len()` differs from `params().len()`.
    fn set_params(&mut self, theta: &[f64]);
}

/// A linear state-feedback controller `u = Θ x` (`Θ ∈ R^{m×n}`, row-major).
///
/// # Example
///
/// ```
/// use dwv_dynamics::{Controller, LinearController};
///
/// let k = LinearController::new(2, 1, vec![0.5, -1.0]);
/// assert_eq!(k.control(&[2.0, 1.0]), vec![0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearController {
    n_state: usize,
    n_input: usize,
    gains: Vec<f64>,
}

impl LinearController {
    /// Creates a controller from row-major gains.
    ///
    /// # Panics
    ///
    /// Panics if `gains.len() != n_state * n_input`.
    #[must_use]
    pub fn new(n_state: usize, n_input: usize, gains: Vec<f64>) -> Self {
        assert_eq!(gains.len(), n_state * n_input, "gain matrix size mismatch");
        Self {
            n_state,
            n_input,
            gains,
        }
    }

    /// The zero controller.
    #[must_use]
    pub fn zeros(n_state: usize, n_input: usize) -> Self {
        Self::new(n_state, n_input, vec![0.0; n_state * n_input])
    }

    /// The gain matrix, row-major `[input][state]`.
    #[must_use]
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// The gain from state `j` to input `i`.
    #[must_use]
    pub fn gain(&self, i: usize, j: usize) -> f64 {
        self.gains[i * self.n_state + j]
    }
}

impl Controller for LinearController {
    fn n_state(&self) -> usize {
        self.n_state
    }

    fn n_input(&self) -> usize {
        self.n_input
    }

    fn control(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_state, "state dimension mismatch");
        (0..self.n_input)
            .map(|i| (0..self.n_state).map(|j| self.gain(i, j) * x[j]).sum())
            .collect()
    }

    fn control_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.n_state, "state dimension mismatch");
        out.clear();
        out.extend((0..self.n_input).map(|i| {
            (0..self.n_state)
                .map(|j| self.gain(i, j) * x[j])
                .sum::<f64>()
        }));
    }

    fn params(&self) -> Vec<f64> {
        self.gains.clone()
    }

    fn set_params(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), self.gains.len(), "parameter count mismatch");
        self.gains.copy_from_slice(theta);
    }
}

/// A neural-network controller wrapping a [`Network`].
///
/// An optional output scale multiplies the (Tanh-bounded) network output so
/// controllers can produce inputs outside `[-1, 1]` — the ACC system, for
/// example, needs braking forces of magnitude ≈ 10.
#[derive(Debug, Clone, PartialEq)]
pub struct NnController {
    net: Network,
    output_scale: f64,
}

impl NnController {
    /// Wraps a network with unit output scale.
    #[must_use]
    pub fn new(net: Network) -> Self {
        Self {
            net,
            output_scale: 1.0,
        }
    }

    /// Wraps a network with an output scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    #[must_use]
    pub fn with_output_scale(net: Network, scale: f64) -> Self {
        assert!(scale > 0.0, "output scale must be positive");
        Self {
            net,
            output_scale: scale,
        }
    }

    /// The wrapped network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network (for baseline training).
    #[must_use]
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The output scale.
    #[must_use]
    pub fn output_scale(&self) -> f64 {
        self.output_scale
    }
}

impl Controller for NnController {
    fn n_state(&self) -> usize {
        self.net.in_dim()
    }

    fn n_input(&self) -> usize {
        self.net.out_dim()
    }

    fn control(&self, x: &[f64]) -> Vec<f64> {
        self.net
            .forward(x)
            .into_iter()
            .map(|v| v * self.output_scale)
            .collect()
    }

    fn params(&self) -> Vec<f64> {
        self.net.params()
    }

    fn set_params(&mut self, theta: &[f64]) {
        self.net.set_params(theta);
    }
}

/// The reach-avoid control problem of Problem 1: the system tuple
/// `(X, U, f, κ_θ, X₀, δ)` plus the property sets `X_u`, `X_g` and horizon
/// `T = horizon_steps · δ`.
#[derive(Clone)]
pub struct ReachAvoidProblem {
    /// The continuous dynamics `f`.
    pub dynamics: Arc<dyn Dynamics>,
    /// The initial set `X₀`.
    pub x0: IntervalBox,
    /// The unsafe region `X_u`.
    pub unsafe_region: Region,
    /// The goal region `X_g`.
    pub goal_region: Region,
    /// The sampling (control) period `δ`.
    pub delta: f64,
    /// The number of control steps in the horizon (`T = horizon_steps · δ`).
    pub horizon_steps: usize,
    /// A bounding box of the relevant state space, used to clip unbounded
    /// regions before measuring intersections (see `dwv_geom::Region`).
    pub universe: IntervalBox,
}

impl ReachAvoidProblem {
    /// The state dimension.
    #[must_use]
    pub fn n_state(&self) -> usize {
        self.dynamics.n_state()
    }

    /// The input dimension.
    #[must_use]
    pub fn n_input(&self) -> usize {
        self.dynamics.n_input()
    }

    /// The continuous horizon `T`.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.delta * self.horizon_steps as f64
    }
}

impl fmt::Debug for ReachAvoidProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReachAvoidProblem")
            .field("dynamics", &self.dynamics.name())
            .field("x0", &self.x0)
            .field("delta", &self.delta)
            .field("horizon_steps", &self.horizon_steps)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_nn::Activation;

    #[test]
    fn linear_controller_control_law() {
        let k = LinearController::new(3, 2, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.0]);
        let u = k.control(&[2.0, 4.0, 6.0]);
        assert_eq!(u, vec![2.0 - 6.0, 1.0 + 2.0]);
        assert_eq!(k.gain(1, 0), 0.5);
    }

    #[test]
    fn linear_controller_params_roundtrip() {
        let mut k = LinearController::zeros(2, 1);
        k.set_params(&[3.0, -4.0]);
        assert_eq!(k.params(), vec![3.0, -4.0]);
        assert_eq!(k.control(&[1.0, 1.0]), vec![-1.0]);
    }

    #[test]
    fn nn_controller_scale() {
        let net = Network::new(&[2, 4, 1], Activation::ReLU, Activation::Tanh, 1);
        let c = NnController::with_output_scale(net.clone(), 10.0);
        let raw = net.forward(&[0.3, 0.3])[0];
        assert!((c.control(&[0.3, 0.3])[0] - 10.0 * raw).abs() < 1e-12);
        assert_eq!(c.n_state(), 2);
        assert_eq!(c.n_input(), 1);
    }

    #[test]
    fn nn_controller_params_passthrough() {
        let net = Network::new(&[2, 3, 1], Activation::ReLU, Activation::Tanh, 5);
        let mut c = NnController::new(net);
        let mut p = c.params();
        p[0] += 1.0;
        c.set_params(&p);
        assert_eq!(c.params()[0], p[0]);
    }
}
