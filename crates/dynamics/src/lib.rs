//! Benchmark control systems and closed-loop simulation.
//!
//! The DAC'22 paper evaluates on three systems (§4); this crate implements
//! them together with the simulation infrastructure the experiments need:
//!
//! * [`acc`] — linear adaptive cruise control (`ṡ = v_f − v`, `v̇ = kv + u`),
//! * [`oscillator`] — Van der Pol's oscillator (non-linear 2-D),
//! * [`three_dim`] — the 3-D numerical system from Verisig/ReachNN,
//! * [`Dynamics`] — the continuous-dynamics trait, including the polynomial
//!   vector field used by the Taylor-model verifier,
//! * [`Controller`], [`LinearController`], [`NnController`] — state-feedback
//!   controllers `u = κ_θ(x)` with a flat parameter vector `θ`,
//! * [`simulate`] — RK4 integration under zero-order-hold control and
//!   Monte-Carlo estimation of the paper's SC (safe control) and GR
//!   (goal-reaching) rates,
//! * [`ReachAvoidProblem`] — the tuple `(f, X₀, X_u, X_g, T, δ)` of
//!   Problem 1.
//!
//! # Example
//!
//! ```
//! use dwv_dynamics::{acc, Controller, LinearController, simulate::Simulator};
//!
//! let problem = acc::reach_avoid_problem();
//! let controller = LinearController::new(2, 1, vec![-2.0, -3.0]);
//! let sim = Simulator::new(problem.dynamics.clone(), problem.delta);
//! let traj = sim.rollout(&[123.0, 50.0], &controller, problem.horizon_steps);
//! assert_eq!(traj.states.len(), problem.horizon_steps + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acc;
pub mod eval;
pub mod linalg;
pub mod oscillator;
pub mod simulate;
pub mod system;
pub mod three_dim;

pub use eval::{rates, RateReport};
pub use system::{Controller, Dynamics, LinearController, NnController, ReachAvoidProblem};
