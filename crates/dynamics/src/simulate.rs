//! Closed-loop simulation with zero-order-hold control.

use crate::system::{Controller, Dynamics};
use std::sync::Arc;

/// A simulated closed-loop trajectory.
///
/// `states[k]` is the state at control boundary `t = k·δ`;
/// `fine_states` additionally records every RK4 sub-step (used for safety
/// checks, which per Definition 1 must hold for *all* `t`, not only at
/// sampling instants). `inputs[k]` is the input held during `[kδ, (k+1)δ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// States at control boundaries (length = steps + 1).
    pub states: Vec<Vec<f64>>,
    /// Held inputs per control period (length = steps).
    pub inputs: Vec<Vec<f64>>,
    /// All integrator sub-step states, including the boundaries.
    pub fine_states: Vec<Vec<f64>>,
}

/// Scratch buffers for allocation-free RK4 stepping.
///
/// One set of buffers serves an entire rollout (and can be reused across
/// rollouts); [`Simulator::rk4_step_into`] fills the four stage slopes and
/// the intermediate stage state here instead of allocating five vectors per
/// sub-step.
#[derive(Debug, Clone, Default)]
pub struct Rk4Buffers {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    xt: Vec<f64>,
}

impl Rk4Buffers {
    /// Creates buffers sized for an `n`-dimensional state.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            k1: Vec::with_capacity(n),
            k2: Vec::with_capacity(n),
            k3: Vec::with_capacity(n),
            k4: Vec::with_capacity(n),
            xt: Vec::with_capacity(n),
        }
    }
}

/// RK4 closed-loop simulator with zero-order hold.
///
/// # Example
///
/// ```
/// use dwv_dynamics::{acc, LinearController, simulate::Simulator};
///
/// let p = acc::reach_avoid_problem();
/// let sim = Simulator::new(p.dynamics.clone(), p.delta);
/// let k = LinearController::new(2, 1, vec![0.1, -1.0]);
/// let traj = sim.rollout(&[123.0, 50.0], &k, 10);
/// assert_eq!(traj.states.len(), 11);
/// assert_eq!(traj.inputs.len(), 10);
/// ```
#[derive(Clone)]
pub struct Simulator {
    dynamics: Arc<dyn Dynamics>,
    delta: f64,
    substeps: usize,
}

impl Simulator {
    /// Creates a simulator with the default 10 RK4 sub-steps per control
    /// period.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0`.
    #[must_use]
    pub fn new(dynamics: Arc<dyn Dynamics>, delta: f64) -> Self {
        Self::with_substeps(dynamics, delta, 10)
    }

    /// Creates a simulator with an explicit sub-step count.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` or `substeps == 0`.
    #[must_use]
    pub fn with_substeps(dynamics: Arc<dyn Dynamics>, delta: f64, substeps: usize) -> Self {
        assert!(delta > 0.0, "sampling period must be positive");
        assert!(substeps > 0, "need at least one sub-step");
        Self {
            dynamics,
            delta,
            substeps,
        }
    }

    /// The sampling period.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Simulates `steps` control periods from `x0` under `controller`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` differs from the state dimension.
    #[must_use]
    pub fn rollout<C: Controller + ?Sized>(
        &self,
        x0: &[f64],
        controller: &C,
        steps: usize,
    ) -> Trajectory {
        assert_eq!(
            x0.len(),
            self.dynamics.n_state(),
            "initial state dimension mismatch"
        );
        let mut states = Vec::with_capacity(steps + 1);
        let mut inputs = Vec::with_capacity(steps);
        let mut fine = Vec::with_capacity(steps * self.substeps + 1);
        let mut x = x0.to_vec();
        let mut next = x0.to_vec();
        let mut buf = Rk4Buffers::new(x0.len());
        states.push(x.clone());
        fine.push(x.clone());
        let h = self.delta / self.substeps as f64;
        for _ in 0..steps {
            let u = controller.control(&x);
            for _ in 0..self.substeps {
                self.rk4_step_into(&x, &u, h, &mut next, &mut buf);
                std::mem::swap(&mut x, &mut next);
                fine.push(x.clone());
            }
            states.push(x.clone());
            inputs.push(u);
        }
        Trajectory {
            states,
            inputs,
            fine_states: fine,
        }
    }

    /// Streams the fine-grained trajectory (initial state, then every RK4
    /// sub-step state in order) to `visit` without materialising it.
    ///
    /// This is the zero-allocation backbone of the Monte-Carlo rate
    /// estimator: state, input and RK4 stage buffers are each allocated once
    /// per rollout, so the per-sub-step cost is pure arithmetic. The visited
    /// states are bit-identical to [`Simulator::rollout`]'s `fine_states`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` differs from the state dimension.
    pub fn rollout_visit<C, F>(&self, x0: &[f64], controller: &C, steps: usize, mut visit: F)
    where
        C: Controller + ?Sized,
        F: FnMut(&[f64]),
    {
        assert_eq!(
            x0.len(),
            self.dynamics.n_state(),
            "initial state dimension mismatch"
        );
        let mut x = x0.to_vec();
        let mut next = x0.to_vec();
        let mut u = Vec::with_capacity(self.dynamics.n_input());
        let mut buf = Rk4Buffers::new(x0.len());
        visit(&x);
        let h = self.delta / self.substeps as f64;
        for _ in 0..steps {
            controller.control_into(&x, &mut u);
            for _ in 0..self.substeps {
                self.rk4_step_into(&x, &u, h, &mut next, &mut buf);
                std::mem::swap(&mut x, &mut next);
                visit(&x);
            }
        }
    }

    /// One explicit RK4 step of length `h` with input held at `u`.
    #[must_use]
    pub fn rk4_step(&self, x: &[f64], u: &[f64], h: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.len());
        let mut buf = Rk4Buffers::new(x.len());
        self.rk4_step_into(x, u, h, &mut out, &mut buf);
        out
    }

    /// One explicit RK4 step written into `out` using scratch `buf`
    /// (bit-identical to [`Simulator::rk4_step`], zero allocations once the
    /// buffers are warm).
    pub fn rk4_step_into(
        &self,
        x: &[f64],
        u: &[f64],
        h: f64,
        out: &mut Vec<f64>,
        buf: &mut Rk4Buffers,
    ) {
        self.dynamics.deriv_into(x, u, &mut buf.k1);
        buf.xt.clear();
        buf.xt
            .extend(x.iter().zip(&buf.k1).map(|(a, k)| a + 0.5 * h * k));
        self.dynamics.deriv_into(&buf.xt, u, &mut buf.k2);
        buf.xt.clear();
        buf.xt
            .extend(x.iter().zip(&buf.k2).map(|(a, k)| a + 0.5 * h * k));
        self.dynamics.deriv_into(&buf.xt, u, &mut buf.k3);
        buf.xt.clear();
        buf.xt.extend(x.iter().zip(&buf.k3).map(|(a, k)| a + h * k));
        self.dynamics.deriv_into(&buf.xt, u, &mut buf.k4);
        out.clear();
        out.extend(x.iter().enumerate().map(|(i, a)| {
            a + h / 6.0 * (buf.k1[i] + 2.0 * buf.k2[i] + 2.0 * buf.k3[i] + buf.k4[i])
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::Acc;
    use crate::oscillator::Oscillator;
    use crate::system::LinearController;

    #[test]
    fn rk4_matches_exponential_decay() {
        // v̇ = -0.2 v with u = 0 and v_f contribution on s.
        let sim = Simulator::new(Arc::new(Acc), 0.1);
        let k = LinearController::zeros(2, 1);
        let traj = sim.rollout(&[123.0, 50.0], &k, 50);
        // v(t) = 50 e^{-0.2 t}; at t = 5: 50 e^{-1}.
        let v_end = traj.states[50][1];
        assert!((v_end - 50.0 * (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn zero_order_hold_freezes_input() {
        // With a feedback controller, the input changes only at boundaries.
        let sim = Simulator::new(Arc::new(Oscillator), 0.1);
        let k = LinearController::new(2, 1, vec![1.0, 1.0]);
        let traj = sim.rollout(&[-0.5, 0.5], &k, 3);
        assert_eq!(traj.inputs.len(), 3);
        // Input at step 0 equals κ(x(0)).
        assert!((traj.inputs[0][0] - 0.0).abs() < 1e-12); // -0.5 + 0.5
                                                          // fine trajectory has substeps*steps + 1 points
        assert_eq!(traj.fine_states.len(), 31);
    }

    #[test]
    fn finer_substeps_converge() {
        let coarse = Simulator::with_substeps(Arc::new(Oscillator), 0.1, 2);
        let fine = Simulator::with_substeps(Arc::new(Oscillator), 0.1, 50);
        let k = LinearController::new(2, 1, vec![-0.5, -0.5]);
        let a = coarse.rollout(&[-0.5, 0.5], &k, 20);
        let b = fine.rollout(&[-0.5, 0.5], &k, 20);
        let d: f64 = a.states[20]
            .iter()
            .zip(&b.states[20])
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(d < 1e-6, "RK4 refinement changed the endpoint by {d}");
    }
}
