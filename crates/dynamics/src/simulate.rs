//! Closed-loop simulation with zero-order-hold control.

use crate::system::{Controller, Dynamics};
use std::sync::Arc;

/// A simulated closed-loop trajectory.
///
/// `states[k]` is the state at control boundary `t = k·δ`;
/// `fine_states` additionally records every RK4 sub-step (used for safety
/// checks, which per Definition 1 must hold for *all* `t`, not only at
/// sampling instants). `inputs[k]` is the input held during `[kδ, (k+1)δ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// States at control boundaries (length = steps + 1).
    pub states: Vec<Vec<f64>>,
    /// Held inputs per control period (length = steps).
    pub inputs: Vec<Vec<f64>>,
    /// All integrator sub-step states, including the boundaries.
    pub fine_states: Vec<Vec<f64>>,
}

/// RK4 closed-loop simulator with zero-order hold.
///
/// # Example
///
/// ```
/// use dwv_dynamics::{acc, LinearController, simulate::Simulator};
///
/// let p = acc::reach_avoid_problem();
/// let sim = Simulator::new(p.dynamics.clone(), p.delta);
/// let k = LinearController::new(2, 1, vec![0.1, -1.0]);
/// let traj = sim.rollout(&[123.0, 50.0], &k, 10);
/// assert_eq!(traj.states.len(), 11);
/// assert_eq!(traj.inputs.len(), 10);
/// ```
#[derive(Clone)]
pub struct Simulator {
    dynamics: Arc<dyn Dynamics>,
    delta: f64,
    substeps: usize,
}

impl Simulator {
    /// Creates a simulator with the default 10 RK4 sub-steps per control
    /// period.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0`.
    #[must_use]
    pub fn new(dynamics: Arc<dyn Dynamics>, delta: f64) -> Self {
        Self::with_substeps(dynamics, delta, 10)
    }

    /// Creates a simulator with an explicit sub-step count.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` or `substeps == 0`.
    #[must_use]
    pub fn with_substeps(dynamics: Arc<dyn Dynamics>, delta: f64, substeps: usize) -> Self {
        assert!(delta > 0.0, "sampling period must be positive");
        assert!(substeps > 0, "need at least one sub-step");
        Self {
            dynamics,
            delta,
            substeps,
        }
    }

    /// The sampling period.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Simulates `steps` control periods from `x0` under `controller`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` differs from the state dimension.
    #[must_use]
    pub fn rollout<C: Controller + ?Sized>(
        &self,
        x0: &[f64],
        controller: &C,
        steps: usize,
    ) -> Trajectory {
        assert_eq!(
            x0.len(),
            self.dynamics.n_state(),
            "initial state dimension mismatch"
        );
        let mut states = Vec::with_capacity(steps + 1);
        let mut inputs = Vec::with_capacity(steps);
        let mut fine = Vec::with_capacity(steps * self.substeps + 1);
        let mut x = x0.to_vec();
        states.push(x.clone());
        fine.push(x.clone());
        let h = self.delta / self.substeps as f64;
        for _ in 0..steps {
            let u = controller.control(&x);
            for _ in 0..self.substeps {
                x = self.rk4_step(&x, &u, h);
                fine.push(x.clone());
            }
            states.push(x.clone());
            inputs.push(u);
        }
        Trajectory {
            states,
            inputs,
            fine_states: fine,
        }
    }

    /// One explicit RK4 step of length `h` with input held at `u`.
    #[must_use]
    pub fn rk4_step(&self, x: &[f64], u: &[f64], h: f64) -> Vec<f64> {
        let f = |x: &[f64]| self.dynamics.deriv(x, u);
        let k1 = f(x);
        let x2: Vec<f64> = x.iter().zip(&k1).map(|(a, k)| a + 0.5 * h * k).collect();
        let k2 = f(&x2);
        let x3: Vec<f64> = x.iter().zip(&k2).map(|(a, k)| a + 0.5 * h * k).collect();
        let k3 = f(&x3);
        let x4: Vec<f64> = x.iter().zip(&k3).map(|(a, k)| a + h * k).collect();
        let k4 = f(&x4);
        x.iter()
            .enumerate()
            .map(|(i, a)| a + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::Acc;
    use crate::oscillator::Oscillator;
    use crate::system::LinearController;

    #[test]
    fn rk4_matches_exponential_decay() {
        // v̇ = -0.2 v with u = 0 and v_f contribution on s.
        let sim = Simulator::new(Arc::new(Acc), 0.1);
        let k = LinearController::zeros(2, 1);
        let traj = sim.rollout(&[123.0, 50.0], &k, 50);
        // v(t) = 50 e^{-0.2 t}; at t = 5: 50 e^{-1}.
        let v_end = traj.states[50][1];
        assert!((v_end - 50.0 * (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn zero_order_hold_freezes_input() {
        // With a feedback controller, the input changes only at boundaries.
        let sim = Simulator::new(Arc::new(Oscillator), 0.1);
        let k = LinearController::new(2, 1, vec![1.0, 1.0]);
        let traj = sim.rollout(&[-0.5, 0.5], &k, 3);
        assert_eq!(traj.inputs.len(), 3);
        // Input at step 0 equals κ(x(0)).
        assert!((traj.inputs[0][0] - 0.0).abs() < 1e-12); // -0.5 + 0.5
                                                          // fine trajectory has substeps*steps + 1 points
        assert_eq!(traj.fine_states.len(), 31);
    }

    #[test]
    fn finer_substeps_converge() {
        let coarse = Simulator::with_substeps(Arc::new(Oscillator), 0.1, 2);
        let fine = Simulator::with_substeps(Arc::new(Oscillator), 0.1, 50);
        let k = LinearController::new(2, 1, vec![-0.5, -0.5]);
        let a = coarse.rollout(&[-0.5, 0.5], &k, 20);
        let b = fine.rollout(&[-0.5, 0.5], &k, 20);
        let d: f64 = a.states[20]
            .iter()
            .zip(&b.states[20])
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(d < 1e-6, "RK4 refinement changed the endpoint by {d}");
    }
}
