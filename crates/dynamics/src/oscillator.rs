//! Van der Pol's oscillator benchmark (paper §4).
//!
//! The controlled 2-D non-linear system
//!
//! ```text
//! ẋ₁ = x₂
//! ẋ₂ = γ(1 − x₁²)x₂ − x₁ + u        (γ = 1)
//! ```
//!
//! with sets `X₀ = [−0.51,−0.49] × [0.49,0.51]`,
//! `X_g = [−0.05,0.05]²`, `X_u = [−0.3,−0.25] × [0.2,0.35]` and `δ = 0.1`.
//!
//! The unsafe box sits near the natural (uncontrolled) trajectory from `X₀`
//! toward the origin, so a goal-only controller easily clips it — the paper's
//! motivation for verification in the loop.

use crate::system::{Dynamics, ReachAvoidProblem};
use dwv_geom::Region;
use dwv_interval::IntervalBox;
use dwv_poly::Polynomial;
use dwv_taylor::OdeRhs;
use std::sync::Arc;

/// The damping coefficient `γ`.
pub const GAMMA: f64 = 1.0;

/// The sampling period `δ`.
pub const DELTA: f64 = 0.1;

/// Control steps in the verification horizon (`T = 3.5 s`).
pub const HORIZON_STEPS: usize = 35;

/// The Van der Pol oscillator dynamics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oscillator;

impl Dynamics for Oscillator {
    fn name(&self) -> &str {
        "oscillator"
    }

    fn n_state(&self) -> usize {
        2
    }

    fn n_input(&self) -> usize {
        1
    }

    fn deriv(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        vec![x[1], GAMMA * (1.0 - x[0] * x[0]) * x[1] - x[0] + u[0]]
    }

    fn deriv_into(&self, x: &[f64], u: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.push(x[1]);
        out.push(GAMMA * (1.0 - x[0] * x[0]) * x[1] - x[0] + u[0]);
    }

    fn vector_field(&self) -> OdeRhs {
        // Variables: (x1, x2, u).
        let x1 = Polynomial::var(3, 0);
        let x2 = Polynomial::var(3, 1);
        let u = Polynomial::var(3, 2);
        OdeRhs::new(
            2,
            1,
            vec![
                x2.clone(),
                x2.clone().scale(GAMMA) - (x1.clone() * x1.clone() * x2).scale(GAMMA) - x1 + u,
            ],
        )
    }
}

/// The paper's oscillator reach-avoid problem instance.
#[must_use]
pub fn reach_avoid_problem() -> ReachAvoidProblem {
    ReachAvoidProblem {
        dynamics: Arc::new(Oscillator),
        x0: IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]),
        unsafe_region: Region::from_box(IntervalBox::from_bounds(&[(-0.3, -0.25), (0.2, 0.35)])),
        goal_region: Region::from_box(IntervalBox::from_bounds(&[(-0.05, 0.05), (-0.05, 0.05)])),
        delta: DELTA,
        horizon_steps: HORIZON_STEPS,
        universe: IntervalBox::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deriv_matches_field_polynomials() {
        let osc = Oscillator;
        let f = osc.vector_field();
        for (x, u) in [([-0.5, 0.5], 0.3), ([1.2, -0.4], -1.0), ([0.0, 0.0], 0.0)] {
            let d1 = osc.deriv(&x, &[u]);
            let d2 = f.eval(&[x[0], x[1], u]);
            assert!((d1[0] - d2[0]).abs() < 1e-12);
            assert!((d1[1] - d2[1]).abs() < 1e-12, "{d1:?} vs {d2:?}");
        }
    }

    #[test]
    fn not_linear() {
        assert!(Oscillator.linear_parts().is_none());
        assert_eq!(Oscillator.vector_field().degree(), 3);
    }

    #[test]
    fn problem_sets_match_paper() {
        let p = reach_avoid_problem();
        assert!(p.x0.contains_point(&[-0.5, 0.5]));
        assert!(p.goal_region.contains_point(&[0.0, 0.0]));
        assert!(p.unsafe_region.contains_point(&[-0.27, 0.3]));
        assert!(!p.unsafe_region.contains_point(&[0.0, 0.0]));
    }
}
