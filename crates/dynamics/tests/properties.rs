//! Property-based tests for the dynamics substrate: discretization
//! consistency, simulator convergence, and benchmark-system invariants.

use dwv_dynamics::linalg::{discretize, Matrix};
use dwv_dynamics::simulate::Simulator;
use dwv_dynamics::{acc, oscillator, three_dim, Dynamics, LinearController};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `e^{A(s+t)} = e^{As} e^{At}` — the semigroup property of the matrix
    /// exponential, on random 2×2 matrices.
    #[test]
    fn expm_semigroup(a00 in -2.0..2.0f64, a01 in -2.0..2.0f64, a10 in -2.0..2.0f64, a11 in -2.0..2.0f64, s in 0.05..0.5f64, t in 0.05..0.5f64) {
        let a = Matrix::from_rows(vec![vec![a00, a01], vec![a10, a11]]);
        let both = a.scale(s + t).expm();
        let split = a.scale(s).expm().matmul(&a.scale(t).expm());
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!(
                    (both.get(i, j) - split.get(i, j)).abs() < 1e-8 * (1.0 + both.get(i, j).abs()),
                    "({i},{j}): {} vs {}",
                    both.get(i, j),
                    split.get(i, j)
                );
            }
        }
    }

    /// ZOH discretization agrees with a fine RK4 simulation of the
    /// continuous system under a held input.
    #[test]
    fn discretization_matches_simulation(u in -5.0..5.0f64, s0 in 120.0..130.0f64, v0 in 40.0..55.0f64) {
        let (a, b, c) = acc::Acc.linear_parts().expect("affine");
        let delta = 0.1;
        let c_col = Matrix::from_rows(c.iter().map(|&v| vec![v]).collect());
        let b_aug = b.hcat(&c_col);
        let (ad, bd_aug) = discretize(&a, &b_aug, delta);
        let x = [s0, v0];
        let mut disc = ad.matvec(&x);
        disc[0] += bd_aug.get(0, 0) * u + bd_aug.get(0, 1);
        disc[1] += bd_aug.get(1, 0) * u + bd_aug.get(1, 1);
        // Fine RK4 with the input held.
        let sim = Simulator::with_substeps(Arc::new(acc::Acc), delta, 100);
        let mut fine = x.to_vec();
        for _ in 0..100 {
            fine = sim.rk4_step(&fine, &[u], delta / 100.0);
        }
        prop_assert!((disc[0] - fine[0]).abs() < 1e-8);
        prop_assert!((disc[1] - fine[1]).abs() < 1e-8);
    }

    /// RK4 rollouts are deterministic and refine consistently: halving the
    /// sub-step size changes the endpoint by O(h⁴).
    #[test]
    fn rk4_refinement_order(x1 in -0.6..-0.4f64, x2 in 0.4..0.6f64, g0 in -1.0..0.0f64, g1 in -1.0..0.0f64) {
        let k = LinearController::new(2, 1, vec![g0, g1]);
        let coarse = Simulator::with_substeps(Arc::new(oscillator::Oscillator), 0.1, 5)
            .rollout(&[x1, x2], &k, 10);
        let fine = Simulator::with_substeps(Arc::new(oscillator::Oscillator), 0.1, 40)
            .rollout(&[x1, x2], &k, 10);
        let scale: f64 = fine.states[10].iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        let d: f64 = coarse.states[10]
            .iter()
            .zip(&fine.states[10])
            .map(|(a, b)| (a - b).abs())
            .sum();
        prop_assert!(d < 1e-6 * scale, "refinement moved endpoint by {d} (scale {scale})");
    }

    /// The three benchmark vector fields agree with their polynomial forms
    /// at random points.
    #[test]
    fn vector_fields_match_polynomials(x1 in -1.0..1.0f64, x2 in -1.0..1.0f64, x3 in -1.0..1.0f64, u in -2.0..2.0f64) {
        let osc = oscillator::Oscillator;
        let d1 = osc.deriv(&[x1, x2], &[u]);
        let d2 = osc.vector_field().eval(&[x1, x2, u]);
        prop_assert!((d1[0] - d2[0]).abs() < 1e-12);
        prop_assert!((d1[1] - d2[1]).abs() < 1e-12);

        let td = three_dim::ThreeDim;
        let e1 = td.deriv(&[x1, x2, x3], &[u]);
        let e2 = td.vector_field().eval(&[x1, x2, x3, u]);
        for i in 0..3 {
            prop_assert!((e1[i] - e2[i]).abs() < 1e-12);
        }

        let ac = acc::Acc;
        let f1 = ac.deriv(&[120.0 + x1, 45.0 + x2], &[u]);
        let f2 = ac.vector_field().eval(&[120.0 + x1, 45.0 + x2, u]);
        prop_assert!((f1[0] - f2[0]).abs() < 1e-12);
        prop_assert!((f1[1] - f2[1]).abs() < 1e-12);
    }

    /// Affine systems: deriv == A x + B u + c everywhere.
    #[test]
    fn linear_parts_consistent(s in 100.0..200.0f64, v in 0.0..80.0f64, u in -20.0..20.0f64) {
        let ac = acc::Acc;
        let (a, b, c) = ac.linear_parts().expect("affine");
        let ax = a.matvec(&[s, v]);
        let bu = b.matvec(&[u]);
        let d = ac.deriv(&[s, v], &[u]);
        for i in 0..2 {
            prop_assert!((ax[i] + bu[i] + c[i] - d[i]).abs() < 1e-12);
        }
    }
}
