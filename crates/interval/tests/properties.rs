//! Property-based tests for interval arithmetic: the inclusion property
//! (every op's result encloses all pointwise results) is the soundness
//! bedrock of every verifier in the workspace.

use dwv_interval::{Interval, IntervalBox};
use proptest::prelude::*;

fn iv() -> impl Strategy<Value = Interval> {
    (-100.0..100.0f64, 0.0..50.0f64).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

fn member(i: Interval, t: f64) -> f64 {
    i.lo() + t * i.width()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sub_encloses(a in iv(), b in iv(), ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        prop_assert!((a - b).contains_value(member(a, ta) - member(b, tb)));
    }

    #[test]
    fn div_encloses_when_denominator_avoids_zero(a in iv(), blo in 0.5..50.0f64, bw in 0.0..10.0f64, ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let b = Interval::new(blo, blo + bw);
        let q = a / b;
        prop_assert!(q.contains_value(member(a, ta) / member(b, tb)));
    }

    #[test]
    fn neg_is_involutive(a in iv()) {
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn powi_encloses(a in iv(), e in 0u32..6, t in 0.0..1.0f64) {
        let x = member(a, t);
        prop_assert!(a.powi(e).inflate(1e-6 * x.abs().max(1.0).powi(e as i32)).contains_value(x.powi(e as i32)));
    }

    #[test]
    fn abs_encloses_and_nonneg(a in iv(), t in 0.0..1.0f64) {
        let e = a.abs();
        prop_assert!(e.lo() >= 0.0);
        prop_assert!(e.contains_value(member(a, t).abs()));
    }

    #[test]
    fn hull_is_commutative_and_associative(a in iv(), b in iv(), c in iv()) {
        prop_assert_eq!(a.hull(&b), b.hull(&a));
        prop_assert_eq!(a.hull(&b).hull(&c), a.hull(&b.hull(&c)));
    }

    #[test]
    fn intersection_commutes(a in iv(), b in iv()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn distance_triangle_like(a in iv(), b in iv()) {
        // distance is zero iff intersecting.
        prop_assert_eq!(a.distance(&b) == 0.0, a.intersects(&b));
        prop_assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn width_additivity_under_add(a in iv(), b in iv()) {
        let s = a + b;
        // Widths add (up to outward rounding).
        prop_assert!(s.width() >= a.width() + b.width() - 1e-9);
        prop_assert!(s.width() <= a.width() + b.width() + 1e-9 * (1.0 + s.mag()));
    }

    #[test]
    fn mul_contains_products_of_endpoints(a in iv(), b in iv()) {
        let p = a * b;
        for x in [a.lo(), a.hi()] {
            for y in [b.lo(), b.hi()] {
                prop_assert!(p.contains_value(x * y));
            }
        }
    }

    #[test]
    fn scale_about_mid_preserves_mid(a in iv(), f in 0.0..3.0f64) {
        let s = a.scale_about_mid(f);
        prop_assert!((s.mid() - a.mid()).abs() < 1e-9 * (1.0 + a.mag()));
        prop_assert!((s.width() - f * a.width()).abs() < 1e-9 * (1.0 + a.width()));
    }

    #[test]
    fn box_partition_tiles(lo in -10.0..10.0f64, w in 0.5..5.0f64, p0 in 1usize..5, p1 in 1usize..5) {
        let b = IntervalBox::from_bounds(&[(lo, lo + w), (0.0, 1.0)]);
        let cells = b.partition(&[p0, p1]);
        prop_assert_eq!(cells.len(), p0 * p1);
        let vol: f64 = cells.iter().map(IntervalBox::volume).sum();
        prop_assert!((vol - b.volume()).abs() < 1e-9 * b.volume().max(1.0));
        // Every cell center is in the box, and in exactly one cell.
        for c in &cells {
            prop_assert!(b.contains_point(&c.center()));
            let hits = cells.iter().filter(|other| other.contains_point(&c.center())).count();
            prop_assert!(hits >= 1);
        }
    }

    #[test]
    fn box_corners_are_members(lo0 in -5.0..5.0f64, lo1 in -5.0..5.0f64, w0 in 0.0..3.0f64, w1 in 0.0..3.0f64) {
        let b = IntervalBox::from_bounds(&[(lo0, lo0 + w0), (lo1, lo1 + w1)]);
        for c in b.corners() {
            prop_assert!(b.contains_point(&c));
        }
    }

    #[test]
    fn box_distance_zero_iff_intersects(lo in -5.0..5.0f64, w in 0.1..2.0f64, shift in -8.0..8.0f64) {
        let a = IntervalBox::from_bounds(&[(lo, lo + w), (0.0, 1.0)]);
        let b = IntervalBox::from_bounds(&[(lo + shift, lo + shift + w), (0.0, 1.0)]);
        prop_assert_eq!(a.distance(&b) == 0.0, a.intersects(&b));
    }
}
