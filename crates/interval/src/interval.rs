//! The scalar closed interval type.

use crate::InvalidIntervalError;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A closed interval `[lo, hi]` of `f64` values with outward-rounded arithmetic.
///
/// Invariants (enforced by every constructor):
/// * `lo <= hi`
/// * neither endpoint is NaN (infinite endpoints are allowed)
///
/// Arithmetic operators (`+`, `-`, `*`, `/`) are implemented with one-ulp
/// outward rounding so the exact real result of the operation over all pairs
/// of operand values is contained in the result.
///
/// # Example
///
/// ```
/// use dwv_interval::Interval;
///
/// let a = Interval::new(1.0, 2.0);
/// let b = Interval::new(-0.5, 0.5);
/// let c = a + b;
/// assert!(c.contains_value(0.5) && c.contains_value(2.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// The degenerate interval `[1, 1]`.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// The whole real line `[-inf, inf]`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN. Use [`Interval::try_new`]
    /// for a fallible constructor.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        // dwv-lint: allow(panic-freedom) -- documented validating constructor; arithmetic uses `sound`
        Self::try_new(lo, hi).expect("invalid interval endpoints")
    }

    /// Creates the interval `[lo, hi]`, returning an error on invalid input.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] if `lo > hi` or either endpoint is NaN.
    pub fn try_new(lo: f64, hi: f64) -> Result<Self, InvalidIntervalError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(InvalidIntervalError::nan());
        }
        if lo > hi {
            return Err(InvalidIntervalError::empty());
        }
        Ok(Self { lo, hi })
    }

    /// Infallible constructor for arithmetic results.
    ///
    /// A NaN endpoint can only arise from `inf - inf`-shaped operand
    /// combinations (e.g. `ENTIRE + ENTIRE`); widening it to the
    /// corresponding infinity keeps the result a sound enclosure of the true
    /// range without a panic path in operator code.
    #[inline]
    pub(crate) fn sound(lo: f64, hi: f64) -> Self {
        let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
        let hi = if hi.is_nan() { f64::INFINITY } else { hi };
        debug_assert!(
            lo <= hi,
            "arithmetic produced inverted interval [{lo}, {hi}]"
        );
        Self { lo, hi }
    }

    /// Creates the degenerate (point) interval `[v, v]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    #[must_use]
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// Creates the symmetric interval `[-r, r]`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 0` or `r` is NaN.
    #[must_use]
    pub fn symmetric(r: f64) -> Self {
        assert!(r >= 0.0, "symmetric radius must be non-negative");
        Self::new(-r, r)
    }

    /// Creates the interval from an unordered pair of endpoints.
    #[must_use]
    pub fn from_unordered(a: f64, b: f64) -> Self {
        if a <= b {
            Self::new(a, b)
        } else {
            Self::new(b, a)
        }
    }

    /// Creates the smallest interval containing all values in `iter`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn hull_of_values<I: IntoIterator<Item = f64>>(iter: I) -> Option<Self> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for v in iter {
            lo = lo.min(v);
            hi = hi.max(v);
            any = true;
        }
        any.then(|| Self::new(lo, hi))
    }

    /// The lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The midpoint `(lo + hi) / 2`.
    ///
    /// For infinite intervals the midpoint saturates to a finite value (0 for
    /// [`Interval::ENTIRE`]).
    #[must_use]
    pub fn mid(&self) -> f64 {
        if self.lo.is_infinite() && self.hi.is_infinite() {
            0.0
        } else if self.lo.is_infinite() {
            self.hi
        } else if self.hi.is_infinite() {
            self.lo
        } else {
            0.5 * (self.lo + self.hi)
        }
    }

    /// The radius `(hi - lo) / 2` (half the width).
    #[must_use]
    pub fn rad(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// The width `hi - lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The magnitude: largest absolute value of any element.
    #[must_use]
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// The mignitude: smallest absolute value of any element.
    #[must_use]
    pub fn mig(&self) -> f64 {
        if self.contains_value(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains_value(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` is entirely contained in `self`.
    #[must_use]
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether `other` is contained in the *interior* of `self`.
    ///
    /// Used by Picard-iteration remainder validation, which needs strict
    /// containment for the contraction argument.
    #[must_use]
    pub fn contains_strictly(&self, other: &Interval) -> bool {
        self.lo < other.lo && other.hi < self.hi
    }

    /// Whether the two intervals share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection, or `None` when disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// The convex hull (smallest interval containing both).
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Inflates both endpoints outward by `eps` (absolute).
    ///
    /// # Panics
    ///
    /// Panics if `eps < 0`.
    #[must_use]
    pub fn inflate(&self, eps: f64) -> Interval {
        assert!(eps >= 0.0, "inflation must be non-negative");
        Interval::new(self.lo - eps, self.hi + eps)
    }

    /// Scales the interval about its midpoint by `factor >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 0`.
    #[must_use]
    pub fn scale_about_mid(&self, factor: f64) -> Interval {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let m = self.mid();
        let r = self.rad() * factor;
        Interval::new(m - r, m + r)
    }

    /// Distance between two intervals: 0 when they intersect, otherwise the
    /// gap between the closest endpoints.
    #[must_use]
    pub fn distance(&self, other: &Interval) -> f64 {
        if self.intersects(other) {
            0.0
        } else if self.hi < other.lo {
            other.lo - self.hi
        } else {
            self.lo - other.hi
        }
    }

    /// Range-exact square of the interval (never negative, unlike `x * x`).
    #[must_use]
    pub fn sqr(&self) -> Interval {
        let a = self.lo * self.lo;
        let b = self.hi * self.hi;
        let hi = outward_hi(a.max(b));
        let lo = if self.contains_value(0.0) {
            0.0
        } else {
            outward_lo(a.min(b))
        };
        Interval::new(lo, hi)
    }

    /// Integer power with range-exact handling of even exponents.
    #[must_use]
    pub fn powi(&self, n: u32) -> Interval {
        match n {
            0 => Interval::ONE,
            1 => *self,
            2 => self.sqr(),
            _ => {
                if n.is_multiple_of(2) {
                    self.sqr().powi(n / 2)
                } else {
                    // Odd power is monotone.
                    let lo = outward_lo(self.lo.powi(n as i32));
                    let hi = outward_hi(self.hi.powi(n as i32));
                    Interval::new(lo, hi)
                }
            }
        }
    }

    /// Absolute-value image of the interval.
    #[must_use]
    pub fn abs(&self) -> Interval {
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            -*self
        } else {
            Interval::new(0.0, self.mag())
        }
    }

    /// Reciprocal `1 / self`.
    ///
    /// Returns [`Interval::ENTIRE`] when the interval contains zero (division
    /// is then unbounded); callers that need to detect this should test
    /// [`Interval::contains_value`] first.
    #[must_use]
    pub fn recip(&self) -> Interval {
        if self.contains_value(0.0) {
            Interval::ENTIRE
        } else {
            Interval::new(outward_lo(1.0 / self.hi), outward_hi(1.0 / self.lo))
        }
    }

    /// Whether both endpoints are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Whether the interval is a single point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }
}

impl Default for Interval {
    fn default() -> Self {
        Self::ZERO
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl From<f64> for Interval {
    fn from(v: f64) -> Self {
        Interval::point(v)
    }
}

/// Nudges a computed lower bound downward by one ulp (identity on infinities).
#[inline]
pub(crate) fn outward_lo(v: f64) -> f64 {
    if v.is_finite() {
        v.next_down()
    } else {
        v
    }
}

/// Nudges a computed upper bound upward by one ulp (identity on infinities).
#[inline]
pub(crate) fn outward_hi(v: f64) -> f64 {
    if v.is_finite() {
        v.next_up()
    } else {
        v
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval::sound(outward_lo(self.lo + rhs.lo), outward_hi(self.hi + rhs.hi))
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        Interval::sound(outward_lo(self.lo - rhs.hi), outward_hi(self.hi - rhs.lo))
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval::sound(-self.hi, -self.lo)
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in candidates {
            // 0 * inf produces NaN; in interval semantics that product is 0.
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::sound(outward_lo(lo), outward_hi(hi))
    }
}

impl Div for Interval {
    type Output = Interval;

    // Division is defined as multiplication by the enclosure of the
    // reciprocal — the standard interval-arithmetic formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Interval) -> Interval {
        self * rhs.recip()
    }
}

impl Add<f64> for Interval {
    type Output = Interval;

    fn add(self, rhs: f64) -> Interval {
        self + Interval::point(rhs)
    }
}

impl Sub<f64> for Interval {
    type Output = Interval;

    fn sub(self, rhs: f64) -> Interval {
        self - Interval::point(rhs)
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;

    fn mul(self, rhs: f64) -> Interval {
        self * Interval::point(rhs)
    }
}

impl Add<Interval> for f64 {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval::point(self) + rhs
    }
}

impl Mul<Interval> for f64 {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        Interval::point(self) * rhs
    }
}

impl AddAssign for Interval {
    fn add_assign(&mut self, rhs: Interval) {
        *self = *self + rhs;
    }
}

impl SubAssign for Interval {
    fn sub_assign(&mut self, rhs: Interval) {
        *self = *self - rhs;
    }
}

impl MulAssign for Interval {
    fn mul_assign(&mut self, rhs: Interval) {
        *self = *self * rhs;
    }
}

impl std::iter::Sum for Interval {
    fn sum<I: Iterator<Item = Interval>>(iter: I) -> Interval {
        iter.fold(Interval::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted() {
        assert!(Interval::try_new(2.0, 1.0).is_err());
        assert!(Interval::try_new(f64::NAN, 1.0).is_err());
        assert!(Interval::try_new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn point_and_accessors() {
        let p = Interval::point(3.5);
        assert_eq!(p.lo(), 3.5);
        assert_eq!(p.hi(), 3.5);
        assert!(p.is_point());
        assert_eq!(p.width(), 0.0);
    }

    #[test]
    fn add_encloses() {
        let a = Interval::new(0.1, 0.2);
        let b = Interval::new(0.3, 0.4);
        let c = a + b;
        assert!(c.lo() <= 0.4 && c.hi() >= 0.6);
    }

    #[test]
    fn sub_antisymmetric() {
        let a = Interval::new(1.0, 2.0);
        let d = a - a;
        assert!(d.contains_value(0.0));
        assert!(d.lo() <= -1.0 && d.hi() >= 1.0);
    }

    #[test]
    fn mul_sign_cases() {
        let pos = Interval::new(1.0, 2.0);
        let neg = Interval::new(-3.0, -2.0);
        let mixed = Interval::new(-1.0, 4.0);
        let pn = pos * neg;
        assert!(pn.lo() <= -6.0 && pn.hi() >= -2.0);
        let mm = mixed * mixed;
        assert!(mm.lo() <= -4.0 && mm.hi() >= 16.0);
    }

    #[test]
    fn mul_with_zero_and_infinity() {
        let z = Interval::ZERO;
        let e = Interval::ENTIRE;
        let p = z * e;
        assert!(p.contains_value(0.0));
    }

    #[test]
    fn entire_arithmetic_stays_sound() {
        // `-inf + inf` endpoint combinations produce NaN in raw f64; the
        // sound constructor must widen them back to the enclosing infinity
        // instead of panicking or yielding an invalid interval.
        let e = Interval::ENTIRE;
        for r in [e + e, e - e, e * e, -e] {
            assert_eq!(r, Interval::ENTIRE);
        }
        let half = Interval::new(0.0, f64::INFINITY);
        let d = half - half;
        assert!(d.lo() == f64::NEG_INFINITY && d.hi() == f64::INFINITY);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "inverted interval")]
    fn sound_constructor_guards_inversion_in_debug() {
        let _ = Interval::sound(2.0, 1.0);
    }

    #[test]
    fn sqr_is_nonnegative() {
        let x = Interval::new(-2.0, 1.0);
        let s = x.sqr();
        assert!(s.lo() >= -1e-300);
        assert!(s.hi() >= 4.0);
    }

    #[test]
    fn powi_even_odd() {
        let x = Interval::new(-2.0, 1.0);
        let c = x.powi(3);
        assert!(c.lo() <= -8.0 && c.hi() >= 1.0);
        let q = x.powi(4);
        assert!(q.lo() >= -1e-300 && q.hi() >= 16.0);
    }

    #[test]
    fn recip_through_zero_is_entire() {
        let x = Interval::new(-1.0, 1.0);
        assert_eq!(x.recip(), Interval::ENTIRE);
        let y = Interval::new(2.0, 4.0);
        let r = y.recip();
        assert!(r.lo() <= 0.25 && r.hi() >= 0.5);
    }

    #[test]
    fn hull_and_intersection() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert!(a.intersection(&b).is_none());
        let c = Interval::new(0.5, 2.5);
        assert_eq!(a.intersection(&c), Some(Interval::new(0.5, 1.0)));
    }

    #[test]
    fn distance_cases() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 2.0);
        assert_eq!(b.distance(&a), 2.0);
        assert_eq!(a.distance(&Interval::new(0.5, 0.6)), 0.0);
    }

    #[test]
    fn strict_containment() {
        let outer = Interval::new(-1.0, 1.0);
        let inner = Interval::new(-0.5, 0.5);
        assert!(outer.contains_strictly(&inner));
        assert!(!outer.contains_strictly(&outer));
    }

    #[test]
    fn abs_cases() {
        assert_eq!(Interval::new(1.0, 2.0).abs(), Interval::new(1.0, 2.0));
        assert_eq!(Interval::new(-2.0, -1.0).abs(), Interval::new(1.0, 2.0));
        let m = Interval::new(-3.0, 2.0).abs();
        assert_eq!(m, Interval::new(0.0, 3.0));
    }

    #[test]
    fn mig_mag() {
        let x = Interval::new(-3.0, 2.0);
        assert_eq!(x.mag(), 3.0);
        assert_eq!(x.mig(), 0.0);
        let y = Interval::new(1.0, 5.0);
        assert_eq!(y.mig(), 1.0);
    }

    #[test]
    fn hull_of_values_works() {
        let h = Interval::hull_of_values([1.0, -2.0, 0.5]).unwrap();
        assert_eq!(h, Interval::new(-2.0, 1.0));
        assert!(Interval::hull_of_values(std::iter::empty()).is_none());
    }

    #[test]
    fn scale_about_mid() {
        let x = Interval::new(1.0, 3.0);
        let s = x.scale_about_mid(2.0);
        assert_eq!(s, Interval::new(0.0, 4.0));
    }
}
