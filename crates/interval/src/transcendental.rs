//! Conservative enclosures of transcendental functions.
//!
//! Rust's `f64` math functions are correctly rounded to within 1 ulp on the
//! platforms we target, so we widen each computed endpoint by a few ulps to
//! obtain conservative bounds. Monotone functions (exp, tanh, sigmoid, atan)
//! are evaluated at the endpoints; sin/cos additionally check for interior
//! extrema.

use crate::interval::{outward_hi, outward_lo, Interval};

/// Extra widening (in ulps) applied on top of the libm result to absorb any
/// platform deviation from correct rounding.
fn widen_lo(v: f64) -> f64 {
    outward_lo(outward_lo(v))
}

fn widen_hi(v: f64) -> f64 {
    outward_hi(outward_hi(v))
}

impl Interval {
    /// Enclosure of `exp` over the interval (monotone increasing).
    #[must_use]
    pub fn exp(&self) -> Interval {
        Interval::new(
            widen_lo(self.lo().exp()).max(0.0),
            widen_hi(self.hi().exp()),
        )
    }

    /// Enclosure of the natural logarithm.
    ///
    /// The domain is clamped to positive values; if the interval contains
    /// non-positive values the lower bound of the result is `-inf`.
    #[must_use]
    pub fn ln(&self) -> Interval {
        let lo = if self.lo() <= 0.0 {
            f64::NEG_INFINITY
        } else {
            widen_lo(self.lo().ln())
        };
        let hi = if self.hi() <= 0.0 {
            f64::NEG_INFINITY
        } else {
            widen_hi(self.hi().ln())
        };
        Interval::new(lo, hi.max(lo))
    }

    /// Enclosure of `tanh` (monotone increasing, range ⊂ [-1, 1]).
    #[must_use]
    pub fn tanh(&self) -> Interval {
        let lo = widen_lo(self.lo().tanh()).max(-1.0);
        let hi = widen_hi(self.hi().tanh()).min(1.0);
        Interval::new(lo, hi.max(lo))
    }

    /// Enclosure of the logistic sigmoid `1 / (1 + exp(-x))` (monotone).
    #[must_use]
    pub fn sigmoid(&self) -> Interval {
        let s = |x: f64| 1.0 / (1.0 + (-x).exp());
        let lo = widen_lo(s(self.lo())).max(0.0);
        let hi = widen_hi(s(self.hi())).min(1.0);
        Interval::new(lo, hi.max(lo))
    }

    /// Enclosure of the rectified linear unit `max(x, 0)`.
    #[must_use]
    pub fn relu(&self) -> Interval {
        Interval::new(self.lo().max(0.0), self.hi().max(0.0))
    }

    /// Enclosure of `atan` (monotone increasing).
    #[must_use]
    pub fn atan(&self) -> Interval {
        Interval::new(widen_lo(self.lo().atan()), widen_hi(self.hi().atan()))
    }

    /// Enclosure of `sin` over the interval.
    #[must_use]
    pub fn sin(&self) -> Interval {
        if self.width() >= 2.0 * std::f64::consts::PI {
            return Interval::new(-1.0, 1.0);
        }
        let mut lo = widen_lo(self.lo().sin().min(self.hi().sin()));
        let mut hi = widen_hi(self.lo().sin().max(self.hi().sin()));
        // Interior extrema of sin at pi/2 + k*pi.
        let half_pi = std::f64::consts::FRAC_PI_2;
        let pi = std::f64::consts::PI;
        let k_min = ((self.lo() - half_pi) / pi).ceil() as i64;
        let k_max = ((self.hi() - half_pi) / pi).floor() as i64;
        for k in k_min..=k_max {
            if k % 2 == 0 {
                hi = 1.0;
            } else {
                lo = -1.0;
            }
        }
        Interval::new(lo.max(-1.0), hi.min(1.0))
    }

    /// Enclosure of `cos` over the interval.
    #[must_use]
    pub fn cos(&self) -> Interval {
        (*self + Interval::point(std::f64::consts::FRAC_PI_2)).sin()
    }

    /// Enclosure of `sqrt`; the domain is clamped at zero.
    #[must_use]
    pub fn sqrt(&self) -> Interval {
        let lo = widen_lo(self.lo().max(0.0).sqrt()).max(0.0);
        let hi = widen_hi(self.hi().max(0.0).sqrt());
        Interval::new(lo, hi.max(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_encloses<F: Fn(f64) -> f64>(iv: Interval, enc: Interval, f: F) {
        let n = 257;
        for i in 0..=n {
            let x = iv.lo() + (iv.hi() - iv.lo()) * (i as f64) / (n as f64);
            let y = f(x);
            assert!(
                enc.contains_value(y),
                "f({x}) = {y} escapes enclosure {enc} of {iv}"
            );
        }
    }

    #[test]
    fn exp_encloses() {
        let iv = Interval::new(-2.0, 1.5);
        assert_encloses(iv, iv.exp(), f64::exp);
    }

    #[test]
    fn tanh_encloses_and_stays_in_unit() {
        let iv = Interval::new(-5.0, 5.0);
        let e = iv.tanh();
        assert_encloses(iv, e, f64::tanh);
        assert!(e.lo() >= -1.0 && e.hi() <= 1.0);
    }

    #[test]
    fn sigmoid_encloses() {
        let iv = Interval::new(-4.0, 4.0);
        assert_encloses(iv, iv.sigmoid(), |x| 1.0 / (1.0 + (-x).exp()));
    }

    #[test]
    fn relu_cases() {
        assert_eq!(Interval::new(-1.0, 2.0).relu(), Interval::new(0.0, 2.0));
        assert_eq!(Interval::new(-3.0, -1.0).relu(), Interval::ZERO);
        assert_eq!(Interval::new(1.0, 2.0).relu(), Interval::new(1.0, 2.0));
    }

    #[test]
    fn sin_with_interior_max() {
        let iv = Interval::new(0.0, 3.0); // contains pi/2
        let e = iv.sin();
        assert!(e.hi() >= 1.0);
        assert_encloses(iv, e, f64::sin);
    }

    #[test]
    fn sin_wide_interval_is_unit() {
        let iv = Interval::new(0.0, 10.0);
        assert_eq!(iv.sin(), Interval::new(-1.0, 1.0));
    }

    #[test]
    fn cos_encloses() {
        let iv = Interval::new(-1.0, 2.0);
        assert_encloses(iv, iv.cos(), f64::cos);
    }

    #[test]
    fn sqrt_encloses() {
        let iv = Interval::new(0.25, 9.0);
        assert_encloses(iv, iv.sqrt(), f64::sqrt);
    }

    #[test]
    fn ln_with_nonpositive_lower() {
        let iv = Interval::new(-1.0, 2.0);
        let e = iv.ln();
        assert_eq!(e.lo(), f64::NEG_INFINITY);
        assert!(e.hi() >= std::f64::consts::LN_2);
    }
}
