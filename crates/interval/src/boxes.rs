//! Axis-aligned interval boxes (hyperrectangles).
// dwv-lint: allow-file(panic-freedom#index) -- dimension indices are asserted or loop-bounded by construction

use crate::Interval;
use std::fmt;
use std::ops::Index;

/// An n-dimensional axis-aligned box: the Cartesian product of [`Interval`]s.
///
/// `IntervalBox` is the primitive reach-set representation used throughout the
/// verifiers: initial sets, Taylor-model domains, per-step flowpipe
/// enclosures, and goal/unsafe regions are all boxes (the paper's benchmark
/// sets are boxes or half-spaces; half-spaces are handled by clipping against
/// a universe box in `dwv-geom`).
///
/// # Example
///
/// ```
/// use dwv_interval::{Interval, IntervalBox};
///
/// let b = IntervalBox::from_bounds(&[(0.0, 1.0), (2.0, 4.0)]);
/// assert_eq!(b.dim(), 2);
/// assert_eq!(b.volume(), 2.0);
/// assert!(b.contains_point(&[0.5, 3.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalBox {
    dims: Vec<Interval>,
}

impl IntervalBox {
    /// Creates a box from per-dimension intervals.
    #[must_use]
    pub fn new(dims: Vec<Interval>) -> Self {
        Self { dims }
    }

    /// Creates a box from `(lo, hi)` bounds per dimension.
    ///
    /// # Panics
    ///
    /// Panics if any pair has `lo > hi` or NaN endpoints.
    #[must_use]
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Self {
        Self {
            dims: bounds.iter().map(|&(l, h)| Interval::new(l, h)).collect(),
        }
    }

    /// Creates the degenerate box containing exactly `point`.
    #[must_use]
    pub fn from_point(point: &[f64]) -> Self {
        Self {
            dims: point.iter().map(|&v| Interval::point(v)).collect(),
        }
    }

    /// Creates a box centered at `center` with per-dimension radius `rad`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or any radius is negative.
    #[must_use]
    pub fn from_center_radius(center: &[f64], rad: &[f64]) -> Self {
        assert_eq!(center.len(), rad.len(), "center/radius length mismatch");
        Self {
            dims: center
                .iter()
                .zip(rad)
                .map(|(&c, &r)| {
                    assert!(r >= 0.0, "radius must be non-negative");
                    // dwv-lint: allow(float-hygiene) -- the rounded endpoints *are* the specified set
                    Interval::new(c - r, c + r)
                })
                .collect(),
        }
    }

    /// The number of dimensions.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension intervals.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// The interval of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[must_use]
    pub fn interval(&self, i: usize) -> Interval {
        self.dims[i]
    }

    /// The center point.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.dims.iter().map(Interval::mid).collect()
    }

    /// Per-dimension radii.
    #[must_use]
    pub fn radii(&self) -> Vec<f64> {
        self.dims.iter().map(Interval::rad).collect()
    }

    /// The volume (product of widths). Zero-dimensional boxes have volume 1.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.dims.iter().map(Interval::width).product()
    }

    /// The widest dimension's index and width. `None` for 0-dimensional boxes.
    #[must_use]
    pub fn widest_dim(&self) -> Option<(usize, f64)> {
        self.dims
            .iter()
            .map(Interval::width)
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Whether `p` lies inside the box.
    #[must_use]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        p.len() == self.dim() && self.dims.iter().zip(p).all(|(iv, &v)| iv.contains_value(v))
    }

    /// Whether `other` is entirely contained in `self`.
    #[must_use]
    pub fn contains(&self, other: &IntervalBox) -> bool {
        self.dim() == other.dim()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.contains(b))
    }

    /// Whether `other` is contained in the interior of `self` in every
    /// dimension (used by remainder-validation contraction checks).
    #[must_use]
    pub fn contains_strictly(&self, other: &IntervalBox) -> bool {
        self.dim() == other.dim()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.contains_strictly(b))
    }

    /// Whether the two boxes share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &IntervalBox) -> bool {
        self.dim() == other.dim()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.intersects(b))
    }

    /// The intersection box, or `None` when disjoint (or dimension mismatch).
    #[must_use]
    pub fn intersection(&self, other: &IntervalBox) -> Option<IntervalBox> {
        if self.dim() != other.dim() {
            return None;
        }
        let mut dims = Vec::with_capacity(self.dim());
        for (a, b) in self.dims.iter().zip(&other.dims) {
            dims.push(a.intersection(b)?);
        }
        Some(IntervalBox::new(dims))
    }

    /// The smallest box containing both.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn hull(&self, other: &IntervalBox) -> IntervalBox {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        IntervalBox::new(
            self.dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        )
    }

    /// Inflates every dimension outward by `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps < 0`.
    #[must_use]
    pub fn inflate(&self, eps: f64) -> IntervalBox {
        IntervalBox::new(self.dims.iter().map(|iv| iv.inflate(eps)).collect())
    }

    /// Scales every dimension about its midpoint by `factor >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 0`.
    #[must_use]
    pub fn scale_about_center(&self, factor: f64) -> IntervalBox {
        IntervalBox::new(
            self.dims
                .iter()
                .map(|iv| iv.scale_about_mid(factor))
                .collect(),
        )
    }

    /// Euclidean distance between the boxes (0 when they intersect).
    #[must_use]
    pub fn distance(&self, other: &IntervalBox) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| {
                let d = a.distance(b);
                d * d // dwv-lint: allow(float-hygiene) -- separation metric, not a verified bound
            })
            .sum::<f64>()
            // dwv-lint: allow(float-hygiene) -- separation metric, not a verified bound
            .sqrt()
    }

    /// Euclidean distance from the box to a point (0 when inside).
    #[must_use]
    pub fn distance_to_point(&self, p: &[f64]) -> f64 {
        assert_eq!(self.dim(), p.len(), "dimension mismatch");
        self.dims
            .iter()
            .zip(p)
            .map(|(iv, &v)| {
                let d = if v < iv.lo() {
                    iv.lo() - v // dwv-lint: allow(float-hygiene) -- separation metric, not a verified bound
                } else if v > iv.hi() {
                    v - iv.hi() // dwv-lint: allow(float-hygiene) -- separation metric, not a verified bound
                } else {
                    0.0
                };
                d * d // dwv-lint: allow(float-hygiene) -- separation metric, not a verified bound
            })
            .sum::<f64>()
            // dwv-lint: allow(float-hygiene) -- separation metric, not a verified bound
            .sqrt()
    }

    /// Splits the box in half along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.dim()`.
    #[must_use]
    pub fn bisect(&self, dim: usize) -> (IntervalBox, IntervalBox) {
        let iv = self.dims[dim];
        let m = iv.mid();
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims[dim] = Interval::new(iv.lo(), m);
        right.dims[dim] = Interval::new(m, iv.hi());
        (left, right)
    }

    /// Partitions the box into a uniform grid with `parts[i]` cells along
    /// dimension `i`, returned in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `parts.len() != self.dim()` or any count is zero.
    #[must_use]
    pub fn partition(&self, parts: &[usize]) -> Vec<IntervalBox> {
        assert_eq!(parts.len(), self.dim(), "partition count length mismatch");
        assert!(parts.iter().all(|&p| p > 0), "partition counts must be > 0");
        let total: usize = parts.iter().product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; self.dim()];
        for _ in 0..total {
            let dims = self
                .dims
                .iter()
                .enumerate()
                .map(|(d, iv)| {
                    // Adjacent cells evaluate the *identical* float expression
                    // for their shared seam, so the union of cells covers the
                    // box exactly — no gap can open between `hi` of cell k and
                    // `lo` of cell k+1.
                    // dwv-lint: allow(float-hygiene) -- seams share one expression; outer endpoints are exact
                    let w = iv.width() / parts[d] as f64;
                    // dwv-lint: allow(float-hygiene) -- seams share one expression; outer endpoints are exact
                    let lo = iv.lo() + w * idx[d] as f64;
                    let hi = if idx[d] + 1 == parts[d] {
                        iv.hi()
                    } else {
                        // dwv-lint: allow(float-hygiene) -- seams share one expression; outer endpoints are exact
                        iv.lo() + w * (idx[d] + 1) as f64
                    };
                    Interval::new(lo, hi)
                })
                .collect();
            out.push(IntervalBox::new(dims));
            // Increment the mixed-radix counter.
            for d in (0..self.dim()).rev() {
                idx[d] += 1;
                if idx[d] < parts[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// The corner points of the box (2^n points).
    ///
    /// # Panics
    ///
    /// Panics if `self.dim() > 30` (corner count would overflow practical
    /// memory; reach sets in this crate family are ≤ 3-dimensional).
    #[must_use]
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let n = self.dim();
        assert!(n <= 30, "too many dimensions for corner enumeration");
        let count = 1usize << n;
        let mut out = Vec::with_capacity(count);
        for mask in 0..count {
            let p = self
                .dims
                .iter()
                .enumerate()
                .map(|(d, iv)| {
                    if mask & (1 << d) == 0 {
                        iv.lo()
                    } else {
                        iv.hi()
                    }
                })
                .collect();
            out.push(p);
        }
        out
    }

    /// Samples a uniform grid of points, `per_dim` points along each axis
    /// (endpoints included when `per_dim > 1`).
    #[must_use]
    pub fn grid(&self, per_dim: usize) -> Vec<Vec<f64>> {
        assert!(per_dim > 0, "grid resolution must be positive");
        let n = self.dim();
        let total = per_dim.pow(n as u32);
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; n];
        for _ in 0..total {
            let p = self
                .dims
                .iter()
                .enumerate()
                .map(|(d, iv)| {
                    if per_dim == 1 {
                        iv.mid()
                    } else {
                        // dwv-lint: allow(float-hygiene) -- sample-point heuristic, not a verified bound
                        iv.lo() + iv.width() * idx[d] as f64 / (per_dim - 1) as f64
                    }
                })
                .collect();
            out.push(p);
            for d in (0..n).rev() {
                idx[d] += 1;
                if idx[d] < per_dim {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// Whether every dimension is a finite interval.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.dims.iter().all(Interval::is_finite)
    }
}

impl Index<usize> for IntervalBox {
    type Output = Interval;

    fn index(&self, i: usize) -> &Interval {
        &self.dims[i]
    }
}

impl fmt::Display for IntervalBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, iv) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<Interval> for IntervalBox {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalBox::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit2() -> IntervalBox {
        IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn volume_and_center() {
        let b = IntervalBox::from_bounds(&[(0.0, 2.0), (1.0, 4.0)]);
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.center(), vec![1.0, 2.5]);
    }

    #[test]
    fn containment_and_intersection() {
        let b = unit2();
        let inner = IntervalBox::from_bounds(&[(0.25, 0.75), (0.25, 0.75)]);
        assert!(b.contains(&inner));
        assert!(b.contains_strictly(&inner));
        assert!(!inner.contains(&b));
        let shifted = IntervalBox::from_bounds(&[(0.5, 1.5), (0.5, 1.5)]);
        let ix = b.intersection(&shifted).unwrap();
        assert_eq!(ix, IntervalBox::from_bounds(&[(0.5, 1.0), (0.5, 1.0)]));
        let disjoint = IntervalBox::from_bounds(&[(2.0, 3.0), (0.0, 1.0)]);
        assert!(b.intersection(&disjoint).is_none());
    }

    #[test]
    fn distance_between_boxes() {
        let a = unit2();
        let b = IntervalBox::from_bounds(&[(4.0, 5.0), (0.0, 1.0)]);
        assert_eq!(a.distance(&b), 3.0);
        let diag = IntervalBox::from_bounds(&[(4.0, 5.0), (5.0, 6.0)]);
        assert!((a.distance(&diag) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_point() {
        let b = unit2();
        assert_eq!(b.distance_to_point(&[0.5, 0.5]), 0.0);
        assert!((b.distance_to_point(&[4.0, 5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bisect_covers() {
        let b = unit2();
        let (l, r) = b.bisect(0);
        assert_eq!(l.hull(&r), b);
        assert!((l.volume() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partition_grid_covers_volume() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 2.0)]);
        let cells = b.partition(&[2, 4]);
        assert_eq!(cells.len(), 8);
        let total: f64 = cells.iter().map(IntervalBox::volume).sum();
        assert!((total - b.volume()).abs() < 1e-9);
        for c in &cells {
            assert!(b.contains(&c.clone()));
        }
    }

    #[test]
    fn corners_count() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (2.0, 3.0), (4.0, 5.0)]);
        let cs = b.corners();
        assert_eq!(cs.len(), 8);
        assert!(cs.contains(&vec![0.0, 2.0, 4.0]));
        assert!(cs.contains(&vec![1.0, 3.0, 5.0]));
    }

    #[test]
    fn grid_count_and_bounds() {
        let b = unit2();
        let g = b.grid(3);
        assert_eq!(g.len(), 9);
        for p in &g {
            assert!(b.contains_point(p));
        }
        let single = b.grid(1);
        assert_eq!(single, vec![vec![0.5, 0.5]]);
    }

    #[test]
    fn widest_dim_found() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 3.0)]);
        assert_eq!(b.widest_dim(), Some((1, 3.0)));
    }
}
