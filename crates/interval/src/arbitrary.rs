//! Seed-driven generators for falsification harnesses (`dwv-check`).
//!
//! Every function consumes entropy from a caller-supplied `next: &mut impl
//! FnMut() -> u64` word source, so the same seed stream always produces the
//! same value — the property the replay/shrink machinery of `dwv-check`
//! depends on. The mapping helpers ([`unit_f64`], [`f64_in`], [`index`]) live
//! here, at the bottom of the workspace dependency stack, so every other
//! crate's `arbitrary` module can share them.

use crate::{Interval, IntervalBox};

/// Maps one entropy word to `[0, 1)` using the top 53 bits (the standard
/// uniform-double construction).
#[must_use]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Maps one entropy word to a float uniformly in `[lo, hi)`.
#[must_use]
pub fn f64_in(bits: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * unit_f64(bits)
}

/// Maps one entropy word to an index in `0..n` (`0` when `n == 0`).
#[must_use]
pub fn index(bits: u64, n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (bits % n as u64) as usize
    }
}

/// A random finite interval with endpoints of magnitude at most `mag`.
pub fn interval(next: &mut impl FnMut() -> u64, mag: f64) -> Interval {
    let a = f64_in(next(), -mag, mag);
    let b = f64_in(next(), -mag, mag);
    Interval::from_unordered(a, b)
}

/// A random finite interval of width at most `max_width`, centered at a
/// point of magnitude at most `mag`.
pub fn narrow_interval(next: &mut impl FnMut() -> u64, mag: f64, max_width: f64) -> Interval {
    let c = f64_in(next(), -mag, mag);
    let r = 0.5 * max_width * unit_f64(next());
    Interval::from_unordered(c - r, c + r)
}

/// A random finite `dim`-dimensional box with endpoints of magnitude at most
/// `mag`.
pub fn interval_box(next: &mut impl FnMut() -> u64, dim: usize, mag: f64) -> IntervalBox {
    IntervalBox::new((0..dim).map(|_| interval(next, mag)).collect())
}

/// A random finite box of per-dimension width at most `max_width`.
pub fn narrow_box(
    next: &mut impl FnMut() -> u64,
    dim: usize,
    mag: f64,
    max_width: f64,
) -> IntervalBox {
    IntervalBox::new(
        (0..dim)
            .map(|_| narrow_interval(next, mag, max_width))
            .collect(),
    )
}

/// A random point inside `b`: one entropy word per dimension, each mapped
/// onto the corresponding interval (endpoints included via clamping).
pub fn point_in_box(next: &mut impl FnMut() -> u64, b: &IntervalBox) -> Vec<f64> {
    b.intervals()
        .iter()
        .map(|iv| {
            let t = unit_f64(next());
            let v = iv.lo() + iv.width() * t;
            v.clamp(iv.lo(), iv.hi())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = stream(7);
        let mut b = stream(7);
        assert_eq!(interval(&mut a, 3.0), interval(&mut b, 3.0));
        assert_eq!(interval_box(&mut a, 3, 2.0), interval_box(&mut b, 3, 2.0));
    }

    #[test]
    fn points_stay_inside() {
        let mut s = stream(42);
        let b = interval_box(&mut s, 4, 5.0);
        for _ in 0..100 {
            let p = point_in_box(&mut s, &b);
            assert!(b.contains_point(&p));
        }
    }

    #[test]
    fn helpers_are_in_range() {
        let mut s = stream(3);
        for _ in 0..100 {
            let u = unit_f64(s());
            assert!((0.0..1.0).contains(&u));
            let v = f64_in(s(), -2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
            assert!(index(s(), 7) < 7);
        }
        assert_eq!(index(1234, 0), 0);
    }
}
