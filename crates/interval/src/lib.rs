//! Conservative interval arithmetic for reachability analysis.
//!
//! This crate provides the numeric foundation of the Design-while-Verify
//! reproduction: closed floating-point intervals ([`Interval`]) and their
//! n-dimensional products ([`IntervalBox`]).
//!
//! All arithmetic is *outward rounded*: every operation nudges the computed
//! lower endpoint down and the computed upper endpoint up by one ulp using
//! [`f64::next_down`] / [`f64::next_up`], so the true real-valued result set
//! is always contained in the returned interval. This is the property that
//! every verifier built on top of this crate (linear polytope recursion,
//! Taylor-model flowpipes, Bernstein/Taylor neural-network abstractions)
//! relies on for soundness.
//!
//! # Example
//!
//! ```
//! use dwv_interval::Interval;
//!
//! let x = Interval::new(-1.0, 2.0);
//! let y = x * x; // [0, 4] is the true range but interval mult gives [-2, 4]
//! assert!(y.contains_value(0.0));
//! assert!(y.lo() <= -2.0 && y.hi() >= 4.0);
//! // `sqr` is range-exact for the square:
//! assert!(x.sqr().lo() <= 0.0 && x.sqr().hi() >= 4.0 && x.sqr().lo() >= -1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
mod boxes;
mod interval;
mod transcendental;

pub use boxes::IntervalBox;
pub use interval::Interval;

/// Error produced when constructing an interval with invalid endpoints.
///
/// Returned by [`Interval::try_new`] when `lo > hi` or either endpoint is NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidIntervalError {
    kind: InvalidIntervalKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InvalidIntervalKind {
    /// `lo > hi`.
    Empty,
    /// An endpoint was NaN.
    Nan,
}

impl InvalidIntervalError {
    pub(crate) fn empty() -> Self {
        Self {
            kind: InvalidIntervalKind::Empty,
        }
    }

    pub(crate) fn nan() -> Self {
        Self {
            kind: InvalidIntervalKind::Nan,
        }
    }
}

impl std::fmt::Display for InvalidIntervalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            InvalidIntervalKind::Empty => write!(f, "interval lower bound exceeds upper bound"),
            InvalidIntervalKind::Nan => write!(f, "interval endpoint is NaN"),
        }
    }
}

impl std::error::Error for InvalidIntervalError {}
