//! Seed-driven sparse-polynomial generators for falsification harnesses.
//!
//! Entropy comes from a caller-supplied `next: &mut impl FnMut() -> u64`
//! word source (see `dwv_interval::arbitrary` for the shared mapping
//! helpers), so generation is a pure function of the seed stream.

use crate::Polynomial;
use dwv_interval::arbitrary::{f64_in, index};

/// A random sparse polynomial over `nvars` variables.
///
/// Each of the at most `max_terms` terms draws an exponent vector of total
/// degree at most `max_degree` and a coefficient of magnitude at most
/// `coeff_mag`. Duplicate monomials are merged by construction (via
/// [`Polynomial::from_terms`]); the zero polynomial can be produced when all
/// coefficients round to cancellation.
pub fn polynomial(
    next: &mut impl FnMut() -> u64,
    nvars: usize,
    max_degree: u32,
    max_terms: usize,
    coeff_mag: f64,
) -> Polynomial {
    let n_terms = 1 + index(next(), max_terms.max(1));
    let terms = (0..n_terms).map(|_| {
        let mut budget = max_degree;
        let exps: Vec<u32> = (0..nvars)
            .map(|_| {
                let e = index(next(), budget as usize + 1) as u32;
                budget -= e;
                e
            })
            .collect();
        let c = f64_in(next(), -coeff_mag, coeff_mag);
        (exps, c)
    });
    Polynomial::from_terms(nvars, terms)
}

/// A random affine polynomial `c0 + Σ cᵢ xᵢ` with coefficients of magnitude
/// at most `coeff_mag` (useful as a well-conditioned composition argument).
pub fn affine(next: &mut impl FnMut() -> u64, nvars: usize, coeff_mag: f64) -> Polynomial {
    let terms = (0..=nvars).map(|i| {
        let exps: Vec<u32> = (0..nvars).map(|j| u32::from(i > 0 && j + 1 == i)).collect();
        (exps, f64_in(next(), -coeff_mag, coeff_mag))
    });
    Polynomial::from_terms(nvars, terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn deterministic_and_degree_bounded() {
        let mut a = stream(11);
        let mut b = stream(11);
        let p = polynomial(&mut a, 3, 5, 8, 10.0);
        let q = polynomial(&mut b, 3, 5, 8, 10.0);
        assert_eq!(p, q);
        assert!(p.degree() <= 5);
        assert_eq!(p.nvars(), 3);
    }

    #[test]
    fn affine_is_degree_one() {
        let mut s = stream(5);
        let p = affine(&mut s, 4, 2.0);
        assert!(p.degree() <= 1);
    }
}
