//! Designated SIMD zone: chunked coefficient kernels for the flat-term
//! storage.
// dwv-lint: allow-file(panic-freedom#index) -- fixed-stride kernel loops; every offset is bounded by the chunk arithmetic directly above it, covered by the bitwise reference tests
//!
//! Every kernel here operates on plain `f64`/`u64` slices — the
//! structure-of-arrays coefficient storage of [`crate::Polynomial`] — in a
//! fixed chunked order so the loops autovectorize to `f64x4` on any target.
//! The **scalar chunked implementation is the semantic reference**: the
//! opt-in `core::arch` x86_64 path (feature `simd`) performs exactly the
//! same lane operations in exactly the same combine order, so vectorized
//! and scalar results are bit-for-bit identical (asserted by the in-module
//! tests and the `simd` dwv-check family).
//!
//! Soundness note: nothing in this module performs rounding-sensitive
//! *endpoint* arithmetic. Interval endpoints are only ever produced by the
//! directed-rounding primitives in `dwv-interval`; these kernels handle the
//! coefficient side (elementwise products/sums whose values are identical
//! under any vector width) and fixed-order reductions whose chunked
//! summation order is part of their documented contract.

/// Lane count of the chunked kernels (matches `f64x4`/AVX2).
pub const LANES: usize = 4;

/// `dst[i] *= s` for all `i` — elementwise, so any vector width produces
/// identical bits.
pub fn scale_slice(dst: &mut [f64], s: f64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU at
        // runtime; `scale_slice_avx2` has no other preconditions.
        unsafe { avx2::scale_slice_avx2(dst, s) };
        return;
    }
    for c in dst {
        *c *= s;
    }
}

/// `dst ← src * s` (elementwise), reusing `dst`'s buffer.
pub fn scale_into(dst: &mut Vec<f64>, src: &[f64], s: f64) {
    dst.clear();
    dst.reserve(src.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU at
        // runtime; `scale_into_avx2` has no other preconditions.
        unsafe { avx2::scale_into_avx2(dst, src, s) };
        return;
    }
    dst.extend(src.iter().map(|&c| c * s));
}

/// `dst[i] = src[i] * s` (elementwise) into an existing equal-length slice.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn scale_into_slice(dst: &mut [f64], src: &[f64], s: f64) {
    assert_eq!(dst.len(), src.len(), "scale length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU at
        // runtime; slice lengths were checked equal above.
        unsafe { avx2::scale_into_slice_avx2(dst, src, s) };
        return;
    }
    for (d, &c) in dst.iter_mut().zip(src) {
        *d = c * s;
    }
}

/// `dst ← src + k` (elementwise `u64` add): offsets a sorted key run by a
/// packed monomial key, the key half of staging one row of a polynomial
/// product.
pub fn offset_keys_into(dst: &mut Vec<u64>, src: &[u64], k: u64) {
    dst.clear();
    dst.reserve(src.len());
    // Integer elementwise add: autovectorizes; any width is exact.
    dst.extend(src.iter().map(|&key| key + k));
}

/// Degree-filtered staging row of a truncated product: for exactly the `j`
/// with `bdeg[j] <= rem` (in ascending `j`), appends `ka + bkeys[j]` to
/// `keys` and `ca · bcoeffs[j]` to `coeffs`. The coefficient product is the
/// same scalar multiply [`scale_into_slice`] performs per element, so the
/// surviving pairs are bit-identical to unfiltered staging; filtering before
/// the sort shrinks the sort/merge working set by the overflow fraction.
///
/// # Panics
///
/// Panics if the `b`-side slice lengths differ.
#[allow(clippy::too_many_arguments)] // one flat staging row: two outputs, the a-term, the three b-side columns, the budget
pub fn stage_row_filtered(
    keys: &mut Vec<u64>,
    coeffs: &mut Vec<f64>,
    ka: u64,
    ca: f64,
    bkeys: &[u64],
    bcoeffs: &[f64],
    bdeg: &[u32],
    rem: u32,
) {
    assert_eq!(bkeys.len(), bcoeffs.len(), "staging length mismatch");
    assert_eq!(bkeys.len(), bdeg.len(), "staging length mismatch");
    // Upper bound on the appended run; a no-op when the caller pre-reserved.
    keys.reserve(bkeys.len());
    coeffs.reserve(bkeys.len());
    for j in 0..bkeys.len() {
        if bdeg[j] <= rem {
            keys.push(ka + bkeys[j]);
            coeffs.push(ca * bcoeffs[j]);
        }
    }
}

/// `dst[i] += a * src[i]` for all `i` — elementwise fused update (separate
/// multiply and add, never FMA-contracted, so every path rounds twice
/// identically).
pub fn axpy(dst: &mut [f64], a: f64, src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU at
        // runtime; slice lengths were checked equal above.
        unsafe { avx2::axpy_avx2(dst, a, src) };
        return;
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d += a * x;
    }
}

/// Chunked dot product with the documented 4-lane reduction order.
///
/// Semantics (the scalar reference, reproduced exactly by the SIMD path):
/// partial sums `lane[j] = Σ_i a[4i+j]·b[4i+j]` accumulate independently,
/// the lanes combine as `(lane0 + lane2) + (lane1 + lane3)`, and the tail
/// (`len % 4` trailing elements) is added sequentially afterwards.
#[must_use]
pub fn dot_chunked(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let chunks = a.len() / LANES;
    let split = chunks * LANES;
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU at
        // runtime; slice lengths were checked equal above.
        let head = unsafe { avx2::dot_body_avx2(&a[..split], &b[..split]) };
        return add_tail_dot(head, &a[split..], &b[split..]);
    }
    let mut lane = [0.0f64; LANES];
    for i in 0..chunks {
        let base = i * LANES;
        for j in 0..LANES {
            lane[j] += a[base + j] * b[base + j];
        }
    }
    add_tail_dot(combine_lanes(lane), &a[split..], &b[split..])
}

/// Chunked sum of absolute values, same 4-lane reduction order as
/// [`dot_chunked`].
#[must_use]
pub fn abs_sum_chunked(xs: &[f64]) -> f64 {
    let chunks = xs.len() / LANES;
    let split = chunks * LANES;
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU at
        // runtime; `abs_sum_body_avx2` has no other preconditions.
        let head = unsafe { avx2::abs_sum_body_avx2(&xs[..split]) };
        return add_tail_abs(head, &xs[split..]);
    }
    let mut lane = [0.0f64; LANES];
    for i in 0..chunks {
        let base = i * LANES;
        for j in 0..LANES {
            lane[j] += xs[base + j].abs();
        }
    }
    add_tail_abs(combine_lanes(lane), &xs[split..])
}

/// The fixed lane-combine order shared by the scalar and SIMD reduction
/// paths: `(lane0 + lane2) + (lane1 + lane3)`.
#[inline]
fn combine_lanes(lane: [f64; LANES]) -> f64 {
    (lane[0] + lane[2]) + (lane[1] + lane[3])
}

#[inline]
fn add_tail_dot(mut acc: f64, a: &[f64], b: &[f64]) -> f64 {
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

#[inline]
fn add_tail_abs(mut acc: f64, xs: &[f64]) -> f64 {
    for &x in xs {
        acc += x.abs();
    }
    acc
}

/// Whether the opt-in AVX2 path is compiled in *and* supported by the
/// running CPU. With the `simd` feature off this is always `false` and the
/// scalar reference runs everywhere.
#[must_use]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        avx2_enabled()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx2_enabled() -> bool {
    // SAFETY: detection only, no intrinsics — `is_x86_feature_detected!` is a
    // safe macro; std caches the cpuid result behind a relaxed atomic, so
    // this is one load on the hot path after the first call.
    std::arch::is_x86_feature_detected!("avx2")
}

/// The `core::arch` x86_64 path. Every function performs exactly the lane
/// operations of its scalar-reference counterpart — same products, same
/// per-lane accumulation, same `(0+2)+(1+3)` combine — so results are
/// bit-identical by construction. No FMA: multiply and add round separately,
/// matching the scalar path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::LANES;
    // SAFETY: importing intrinsics is safe by itself; every call site below
    // sits in a `#[target_feature(enable = "avx2")]` fn reached only through
    // the `avx2_enabled()` dispatch wrappers.
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_andnot_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd,
    };

    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2.
    // SAFETY: contract above; the only callers are the dispatch wrappers, which verify AVX2 via `avx2_enabled()` first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_slice_avx2(dst: &mut [f64], s: f64) {
        let n = dst.len();
        let chunks = n / LANES;
        // SAFETY: AVX2 is available (caller contract); all pointer offsets
        // stay within `dst` because `i * LANES + LANES <= n` for i < chunks.
        unsafe {
            let vs = _mm256_set1_pd(s);
            let p = dst.as_mut_ptr();
            for i in 0..chunks {
                let q = p.add(i * LANES);
                _mm256_storeu_pd(q, _mm256_mul_pd(_mm256_loadu_pd(q), vs));
            }
        }
        for c in &mut dst[chunks * LANES..] {
            *c *= s;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2. `dst` must be empty
    /// with capacity ≥ `src.len()` reserved.
    // SAFETY: contract above; the only callers are the dispatch wrappers, which verify AVX2 via `avx2_enabled()` first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_into_avx2(dst: &mut Vec<f64>, src: &[f64], s: f64) {
        // Elementwise products are width-independent, so delegating the body
        // through an extend keeps the append safe while the multiply loop
        // vectorizes under the enabled target feature.
        dst.extend(src.iter().map(|&c| c * s));
    }

    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2 and
    /// `dst.len() == src.len()`.
    // SAFETY: contract above; the only callers are the dispatch wrappers, which verify AVX2 via `avx2_enabled()` first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_into_slice_avx2(dst: &mut [f64], src: &[f64], s: f64) {
        let n = dst.len();
        let chunks = n / LANES;
        // SAFETY: AVX2 is available (caller contract); offsets stay within
        // both slices, whose lengths the caller checked equal.
        unsafe {
            let vs = _mm256_set1_pd(s);
            let d = dst.as_mut_ptr();
            let x = src.as_ptr();
            for i in 0..chunks {
                _mm256_storeu_pd(
                    d.add(i * LANES),
                    _mm256_mul_pd(_mm256_loadu_pd(x.add(i * LANES)), vs),
                );
            }
        }
        let split = chunks * LANES;
        for (d, &c) in dst[split..].iter_mut().zip(&src[split..]) {
            *d = c * s;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2 and
    /// `dst.len() == src.len()`.
    // SAFETY: contract above; the only callers are the dispatch wrappers, which verify AVX2 via `avx2_enabled()` first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(dst: &mut [f64], a: f64, src: &[f64]) {
        let n = dst.len();
        let chunks = n / LANES;
        // SAFETY: AVX2 is available (caller contract); offsets stay within
        // both slices, whose lengths the caller checked equal.
        unsafe {
            let va = _mm256_set1_pd(a);
            let d = dst.as_mut_ptr();
            let x = src.as_ptr();
            for i in 0..chunks {
                let q = d.add(i * LANES);
                let prod = _mm256_mul_pd(va, _mm256_loadu_pd(x.add(i * LANES)));
                _mm256_storeu_pd(q, _mm256_add_pd(_mm256_loadu_pd(q), prod));
            }
        }
        let split = chunks * LANES;
        for (d, &x) in dst[split..].iter_mut().zip(&src[split..]) {
            *d += a * x;
        }
    }

    /// Chunked-body dot: `a.len() == b.len()` must be a multiple of 4.
    ///
    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2 and equal slice
    /// lengths divisible by [`LANES`].
    // SAFETY: contract above; the only caller is the dispatch wrapper, which verifies AVX2 via `avx2_enabled()` first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_body_avx2(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / LANES;
        // SAFETY: AVX2 is available (caller contract); offsets stay within
        // both slices by the length contract.
        let lane: [f64; LANES] = unsafe {
            let mut acc = _mm256_setzero_pd();
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            for i in 0..chunks {
                let prod = _mm256_mul_pd(
                    _mm256_loadu_pd(pa.add(i * LANES)),
                    _mm256_loadu_pd(pb.add(i * LANES)),
                );
                acc = _mm256_add_pd(acc, prod);
            }
            std::mem::transmute::<__m256d, [f64; LANES]>(acc)
        };
        super::combine_lanes(lane)
    }

    /// Chunked-body abs-sum: `xs.len()` must be a multiple of 4.
    ///
    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2 and a slice length
    /// divisible by [`LANES`].
    // SAFETY: contract above; the only caller is the dispatch wrapper, which verifies AVX2 via `avx2_enabled()` first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn abs_sum_body_avx2(xs: &[f64]) -> f64 {
        let chunks = xs.len() / LANES;
        // SAFETY: AVX2 is available (caller contract); offsets stay within
        // the slice by the length contract. The andnot mask clears the sign
        // bit — exactly `f64::abs`.
        let lane: [f64; LANES] = unsafe {
            let sign = _mm256_set1_pd(-0.0);
            let mut acc = _mm256_setzero_pd();
            let p = xs.as_ptr();
            for i in 0..chunks {
                let v = _mm256_andnot_pd(sign, _mm256_loadu_pd(p.add(i * LANES)));
                acc = _mm256_add_pd(acc, v);
            }
            std::mem::transmute::<__m256d, [f64; LANES]>(acc)
        };
        super::combine_lanes(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 - 1.4) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect()
    }

    /// The scalar reference semantics, written independently of the kernel
    /// bodies, so the dispatched implementations (scalar chunked *or* AVX2)
    /// are checked against the documented contract.
    fn dot_reference(a: &[f64], b: &[f64]) -> f64 {
        let chunks = a.len() / LANES;
        let mut lane = [0.0f64; LANES];
        for i in 0..chunks {
            for j in 0..LANES {
                lane[j] += a[i * LANES + j] * b[i * LANES + j];
            }
        }
        let mut acc = (lane[0] + lane[2]) + (lane[1] + lane[3]);
        for k in chunks * LANES..a.len() {
            acc += a[k] * b[k];
        }
        acc
    }

    #[test]
    fn dot_matches_reference_bitwise() {
        for n in [0, 1, 3, 4, 7, 8, 64, 129] {
            let a = data(n);
            let b: Vec<f64> = data(n).iter().map(|x| x * 0.5 + 1.0).collect();
            assert_eq!(
                dot_chunked(&a, &b).to_bits(),
                dot_reference(&a, &b).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn scale_matches_elementwise_bitwise() {
        for n in [0, 1, 5, 32, 101] {
            let src = data(n);
            let mut in_place = src.clone();
            scale_slice(&mut in_place, -0.3125);
            let mut into = Vec::new();
            scale_into(&mut into, &src, -0.3125);
            for i in 0..n {
                let expect = (src[i] * -0.3125).to_bits();
                assert_eq!(in_place[i].to_bits(), expect);
                assert_eq!(into[i].to_bits(), expect);
            }
        }
    }

    #[test]
    fn axpy_matches_elementwise_bitwise() {
        for n in [0, 2, 4, 9, 65] {
            let src = data(n);
            let mut dst = data(n).iter().map(|x| x + 0.25).collect::<Vec<_>>();
            let expect: Vec<u64> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &x)| (d + 1.75 * x).to_bits())
                .collect();
            axpy(&mut dst, 1.75, &src);
            let got: Vec<u64> = dst.iter().map(|d| d.to_bits()).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn abs_sum_matches_reference_bitwise() {
        for n in [0, 1, 4, 6, 40, 131] {
            let xs = data(n);
            let chunks = n / LANES;
            let mut lane = [0.0f64; LANES];
            for i in 0..chunks {
                for j in 0..LANES {
                    lane[j] += xs[i * LANES + j].abs();
                }
            }
            let mut expect = (lane[0] + lane[2]) + (lane[1] + lane[3]);
            for x in &xs[chunks * LANES..] {
                expect += x.abs();
            }
            assert_eq!(abs_sum_chunked(&xs).to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn offset_keys_adds_exactly() {
        let src = [0u64, 1 << 8, (2 << 16) | 3, u64::from(u32::MAX)];
        let mut dst = Vec::new();
        offset_keys_into(&mut dst, &src, 1 << 24);
        assert_eq!(dst, src.iter().map(|k| k + (1 << 24)).collect::<Vec<_>>());
    }
}
