//! Sparse multivariate polynomials.

use dwv_interval::Interval;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Coefficients with absolute value below this threshold are dropped after
/// ring operations; they are numerically indistinguishable from rounding
/// noise and would otherwise accumulate without bound during Picard
/// iteration.
const COEFF_EPS: f64 = 0.0;

/// A sparse multivariate polynomial with `f64` coefficients.
///
/// Terms are keyed by their exponent vectors (length = number of variables).
/// All ring operations are exact up to floating-point rounding of the
/// coefficients themselves; *enclosure* of rounding effects is the
/// responsibility of the Taylor-model layer, which evaluates discarded /
/// truncated parts with interval arithmetic.
///
/// # Example
///
/// ```
/// use dwv_poly::Polynomial;
///
/// let x = Polynomial::var(2, 0);
/// let y = Polynomial::var(2, 1);
/// let p = x.clone() * x.clone() + 3.0 * y.clone(); // x² + 3y
/// assert_eq!(p.eval(&[2.0, 1.0]), 7.0);
/// assert_eq!(p.partial_derivative(0).eval(&[2.0, 1.0]), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    nvars: usize,
    /// exponent vector → coefficient; zero coefficients are never stored.
    terms: BTreeMap<Vec<u32>, f64>,
}

impl Polynomial {
    /// The zero polynomial in `nvars` variables.
    #[must_use]
    pub fn zero(nvars: usize) -> Self {
        Self {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `c`.
    #[must_use]
    pub fn constant(nvars: usize, c: f64) -> Self {
        let mut p = Self::zero(nvars);
        if c != 0.0 {
            p.terms.insert(vec![0; nvars], c);
        }
        p
    }

    /// The polynomial `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    #[must_use]
    pub fn var(nvars: usize, i: usize) -> Self {
        assert!(i < nvars, "variable index out of range");
        let mut exps = vec![0; nvars];
        exps[i] = 1;
        let mut p = Self::zero(nvars);
        p.terms.insert(exps, 1.0);
        p
    }

    /// The monomial `c · x^exps`.
    ///
    /// # Panics
    ///
    /// Panics if `exps.len() != nvars`.
    #[must_use]
    pub fn monomial(nvars: usize, exps: Vec<u32>, c: f64) -> Self {
        assert_eq!(exps.len(), nvars, "exponent vector length mismatch");
        let mut p = Self::zero(nvars);
        if c != 0.0 {
            p.terms.insert(exps, c);
        }
        p
    }

    /// Builds a polynomial from `(exponents, coefficient)` pairs, summing
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any exponent vector has the wrong length.
    #[must_use]
    pub fn from_terms<I>(nvars: usize, terms: I) -> Self
    where
        I: IntoIterator<Item = (Vec<u32>, f64)>,
    {
        let mut p = Self::zero(nvars);
        for (exps, c) in terms {
            assert_eq!(exps.len(), nvars, "exponent vector length mismatch");
            p.add_term(exps, c);
        }
        p
    }

    /// The number of variables.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The number of stored (non-zero) terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(exponents, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], f64)> {
        self.terms.iter().map(|(e, &c)| (e.as_slice(), c))
    }

    /// The total degree (max over terms of the exponent sum); 0 for the zero
    /// polynomial.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|e| e.iter().sum())
            .max()
            .unwrap_or(0)
    }

    /// The coefficient of the constant term.
    #[must_use]
    pub fn constant_term(&self) -> f64 {
        self.terms.get(&vec![0; self.nvars]).copied().unwrap_or(0.0)
    }

    /// The coefficient of `x^exps` (0 when absent).
    #[must_use]
    pub fn coefficient(&self, exps: &[u32]) -> f64 {
        self.terms.get(exps).copied().unwrap_or(0.0)
    }

    fn add_term(&mut self, exps: Vec<u32>, c: f64) {
        if c == 0.0 {
            return;
        }
        match self.terms.entry(exps) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let sum = *o.get() + c;
                if sum.abs() <= COEFF_EPS {
                    o.remove();
                } else {
                    *o.get_mut() = sum;
                }
            }
        }
    }

    /// Scales all coefficients by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Polynomial {
        if s == 0.0 {
            return Polynomial::zero(self.nvars);
        }
        Polynomial {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(e, &c)| (e.clone(), c * s)).collect(),
        }
    }

    /// Evaluates at the point `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nvars()`.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.nvars, "evaluation point dimension mismatch");
        self.terms
            .iter()
            .map(|(exps, &c)| {
                c * exps
                    .iter()
                    .zip(x)
                    .map(|(&e, &xi)| xi.powi(e as i32))
                    .product::<f64>()
            })
            .sum()
    }

    /// Conservative interval enclosure of the range over the box `domain`.
    ///
    /// Monomial-wise interval evaluation with range-exact integer powers;
    /// tighter enclosures are available via Bernstein form
    /// ([`crate::bernstein::range_enclosure`]).
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    #[must_use]
    pub fn eval_interval(&self, domain: &[Interval]) -> Interval {
        assert_eq!(domain.len(), self.nvars, "domain dimension mismatch");
        self.terms
            .iter()
            .map(|(exps, &c)| {
                let mut m = Interval::point(c);
                for (&e, iv) in exps.iter().zip(domain) {
                    if e > 0 {
                        m *= iv.powi(e);
                    }
                }
                m
            })
            .sum()
    }

    /// The partial derivative with respect to variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    #[must_use]
    pub fn partial_derivative(&self, i: usize) -> Polynomial {
        assert!(i < self.nvars, "variable index out of range");
        let mut out = Polynomial::zero(self.nvars);
        for (exps, &c) in &self.terms {
            if exps[i] == 0 {
                continue;
            }
            let mut e = exps.clone();
            let k = e[i];
            e[i] -= 1;
            out.add_term(e, c * k as f64);
        }
        out
    }

    /// The antiderivative with respect to variable `i` (zero constant).
    ///
    /// Used by Picard iteration: `∫₀^t f(x(s)) ds` in the time variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    #[must_use]
    pub fn antiderivative(&self, i: usize) -> Polynomial {
        assert!(i < self.nvars, "variable index out of range");
        let mut out = Polynomial::zero(self.nvars);
        for (exps, &c) in &self.terms {
            let mut e = exps.clone();
            e[i] += 1;
            let k = e[i];
            out.add_term(e, c / k as f64);
        }
        out
    }

    /// Splits the polynomial into terms with total degree ≤ `max_degree`
    /// (kept) and the rest (overflow).
    #[must_use]
    pub fn split_at_degree(&self, max_degree: u32) -> (Polynomial, Polynomial) {
        let mut low = Polynomial::zero(self.nvars);
        let mut high = Polynomial::zero(self.nvars);
        for (exps, &c) in &self.terms {
            let d: u32 = exps.iter().sum();
            if d <= max_degree {
                low.add_term(exps.clone(), c);
            } else {
                high.add_term(exps.clone(), c);
            }
        }
        (low, high)
    }

    /// Substitutes `subs[i]` for variable `i` (exact composition).
    ///
    /// All substituted polynomials must share a variable count, which becomes
    /// the variable count of the result.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.nvars()`, if `subs` is empty while the
    /// polynomial is non-constant, or if the substituted polynomials disagree
    /// on their variable count.
    #[must_use]
    pub fn compose(&self, subs: &[Polynomial]) -> Polynomial {
        assert_eq!(subs.len(), self.nvars, "substitution count mismatch");
        let out_vars = subs.first().map_or(0, Polynomial::nvars);
        assert!(
            subs.iter().all(|s| s.nvars() == out_vars),
            "substituted polynomials must share a variable count"
        );
        let mut out = Polynomial::zero(out_vars);
        for (exps, &c) in &self.terms {
            let mut term = Polynomial::constant(out_vars, c);
            for (i, &e) in exps.iter().enumerate() {
                for _ in 0..e {
                    term = term * subs[i].clone();
                }
            }
            out += term;
        }
        out
    }

    /// Applies the per-variable affine substitution `x_i ← a_i + b_i·y_i`
    /// (same variable count; used to re-express a polynomial on a different
    /// box, e.g. normalizing to `[-1, 1]ⁿ`).
    ///
    /// # Panics
    ///
    /// Panics if the slices don't match the variable count.
    #[must_use]
    pub fn affine_substitution(&self, a: &[f64], b: &[f64]) -> Polynomial {
        assert_eq!(a.len(), self.nvars, "offset length mismatch");
        assert_eq!(b.len(), self.nvars, "scale length mismatch");
        let subs: Vec<Polynomial> = (0..self.nvars)
            .map(|i| {
                Polynomial::constant(self.nvars, a[i]) + Polynomial::var(self.nvars, i).scale(b[i])
            })
            .collect();
        self.compose(&subs)
    }

    /// Extends the polynomial to `new_nvars` variables (the added trailing
    /// variables do not occur).
    ///
    /// # Panics
    ///
    /// Panics if `new_nvars < self.nvars()`.
    #[must_use]
    pub fn extend_vars(&self, new_nvars: usize) -> Polynomial {
        assert!(new_nvars >= self.nvars, "cannot shrink variable count");
        let mut out = Polynomial::zero(new_nvars);
        for (exps, &c) in &self.terms {
            let mut e = exps.clone();
            e.resize(new_nvars, 0);
            out.add_term(e, c);
        }
        out
    }

    /// Drops trailing variables (which must not occur in any term).
    ///
    /// # Panics
    ///
    /// Panics if a dropped variable occurs with non-zero exponent, or if
    /// `new_nvars > self.nvars()`.
    #[must_use]
    pub fn shrink_vars(&self, new_nvars: usize) -> Polynomial {
        assert!(new_nvars <= self.nvars, "cannot grow variable count");
        let mut out = Polynomial::zero(new_nvars);
        for (exps, &c) in &self.terms {
            assert!(
                exps[new_nvars..].iter().all(|&e| e == 0),
                "dropped variable occurs in polynomial"
            );
            out.add_term(exps[..new_nvars].to_vec(), c);
        }
        out
    }

    /// The L1 norm of the coefficient vector.
    #[must_use]
    pub fn coeff_l1_norm(&self) -> f64 {
        self.terms.values().map(|c| c.abs()).sum()
    }
}

impl Add for Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        let mut out = self;
        for (exps, c) in rhs.terms {
            out.add_term(exps, c);
        }
        out
    }
}

impl AddAssign for Polynomial {
    fn add_assign(&mut self, rhs: Polynomial) {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        for (exps, c) in rhs.terms {
            self.add_term(exps, c);
        }
    }
}

impl Sub for Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: Polynomial) -> Polynomial {
        self + (-rhs)
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        let mut out = Polynomial::zero(self.nvars);
        for (ea, &ca) in &self.terms {
            for (eb, &cb) in &rhs.terms {
                let exps: Vec<u32> = ea.iter().zip(eb).map(|(&a, &b)| a + b).collect();
                out.add_term(exps, ca * cb);
            }
        }
        out
    }
}

impl Mul<f64> for Polynomial {
    type Output = Polynomial;

    fn mul(self, s: f64) -> Polynomial {
        self.scale(s)
    }
}

impl Mul<Polynomial> for f64 {
    type Output = Polynomial;

    fn mul(self, p: Polynomial) -> Polynomial {
        p.scale(self)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (exps, &c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}")?;
            for (i, &e) in exps.iter().enumerate() {
                match e {
                    0 => {}
                    1 => write!(f, "·x{i}")?,
                    _ => write!(f, "·x{i}^{e}")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_interval::Interval;

    fn p_xy() -> Polynomial {
        // 2 + x - 3 x y^2
        Polynomial::from_terms(
            2,
            vec![
                (vec![0, 0], 2.0),
                (vec![1, 0], 1.0),
                (vec![1, 2], -3.0),
            ],
        )
    }

    #[test]
    fn constructors_and_accessors() {
        let p = p_xy();
        assert_eq!(p.nvars(), 2);
        assert_eq!(p.num_terms(), 3);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.constant_term(), 2.0);
        assert_eq!(p.coefficient(&[1, 2]), -3.0);
        assert_eq!(p.coefficient(&[5, 5]), 0.0);
        assert!(Polynomial::zero(3).is_zero());
        assert!(Polynomial::constant(3, 0.0).is_zero());
    }

    #[test]
    fn eval_matches_formula() {
        let p = p_xy();
        let f = |x: f64, y: f64| 2.0 + x - 3.0 * x * y * y;
        for &(x, y) in &[(0.0, 0.0), (1.0, 2.0), (-1.5, 0.7)] {
            assert!((p.eval(&[x, y]) - f(x, y)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_and_cancel() {
        let p = p_xy();
        let q = p.clone() - p.clone();
        assert!(q.is_zero());
        let r = p.clone() + Polynomial::constant(2, -2.0);
        assert_eq!(r.constant_term(), 0.0);
        assert_eq!(r.num_terms(), 2);
    }

    #[test]
    fn mul_degree_adds() {
        let x = Polynomial::var(1, 0);
        let p = (x.clone() + Polynomial::constant(1, 1.0)) * (x.clone() - Polynomial::constant(1, 1.0));
        // (x+1)(x-1) = x^2 - 1
        assert_eq!(p.coefficient(&[2]), 1.0);
        assert_eq!(p.constant_term(), -1.0);
        assert_eq!(p.coefficient(&[1]), 0.0);
    }

    #[test]
    fn derivative_and_antiderivative_are_inverse() {
        let p = p_xy();
        let d = p.antiderivative(0).partial_derivative(0);
        for &(x, y) in &[(0.3, -0.2), (1.0, 1.0)] {
            assert!((d.eval(&[x, y]) - p.eval(&[x, y])).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_formula() {
        let p = p_xy(); // d/dy = -6xy
        let d = p.partial_derivative(1);
        assert!((d.eval(&[2.0, 3.0]) + 36.0).abs() < 1e-12);
    }

    #[test]
    fn interval_eval_encloses_samples() {
        let p = p_xy();
        let dom = [Interval::new(-1.0, 1.0), Interval::new(-2.0, 0.5)];
        let enc = p.eval_interval(&dom);
        for i in 0..=20 {
            for j in 0..=20 {
                let x = -1.0 + 2.0 * i as f64 / 20.0;
                let y = -2.0 + 2.5 * j as f64 / 20.0;
                assert!(enc.contains_value(p.eval(&[x, y])));
            }
        }
    }

    #[test]
    fn split_at_degree() {
        let p = p_xy();
        let (low, high) = p.split_at_degree(1);
        assert_eq!(low.num_terms(), 2);
        assert_eq!(high.num_terms(), 1);
        let back = low + high;
        assert_eq!(back, p);
    }

    #[test]
    fn compose_univariate() {
        // p(x) = x^2 + 1, q(t) = 2t - 1; p(q(t)) = 4t^2 - 4t + 2
        let x = Polynomial::var(1, 0);
        let p = x.clone() * x.clone() + Polynomial::constant(1, 1.0);
        let q = Polynomial::var(1, 0).scale(2.0) + Polynomial::constant(1, -1.0);
        let c = p.compose(&[q]);
        for t in [-1.0, 0.0, 0.5, 2.0] {
            let expected = (2.0 * t - 1.0f64).powi(2) + 1.0;
            assert!((c.eval(&[t]) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_changes_variable_count() {
        // p(x, y) = x*y composed with x = s+t, y = s-t  →  s^2 - t^2
        let p = Polynomial::var(2, 0) * Polynomial::var(2, 1);
        let s_plus_t = Polynomial::var(2, 0) + Polynomial::var(2, 1);
        let s_minus_t = Polynomial::var(2, 0) - Polynomial::var(2, 1);
        let c = p.compose(&[s_plus_t, s_minus_t]);
        assert!((c.eval(&[3.0, 2.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn affine_substitution_rescales_domain() {
        // p(x) = x on [0, 2] becomes 1 + y on y in [-1, 1]
        let p = Polynomial::var(1, 0);
        let q = p.affine_substitution(&[1.0], &[1.0]);
        assert!((q.eval(&[-1.0]) - 0.0).abs() < 1e-12);
        assert!((q.eval(&[1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extend_and_shrink_vars() {
        let p = Polynomial::var(1, 0);
        let e = p.extend_vars(3);
        assert_eq!(e.nvars(), 3);
        assert_eq!(e.eval(&[2.0, 9.0, -9.0]), 2.0);
        let s = e.shrink_vars(1);
        assert_eq!(s, p);
    }

    #[test]
    #[should_panic(expected = "dropped variable occurs")]
    fn shrink_vars_rejects_used_variable() {
        let p = Polynomial::var(2, 1);
        let _ = p.shrink_vars(1);
    }

    #[test]
    fn display_nonempty() {
        let p = p_xy();
        let s = format!("{p}");
        assert!(s.contains("x0"));
        assert_eq!(format!("{}", Polynomial::zero(1)), "0");
    }
}
