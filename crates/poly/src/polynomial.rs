//! Sparse multivariate polynomials on flat, sorted, stride-friendly storage.
// dwv-lint: allow-file(panic-freedom#index) -- kernel offsets maintained by sorted-merge invariants, property-tested against the map reference
//!
//! Terms live in parallel arrays sorted by monomial, not in a `BTreeMap`:
//! the ring operations that dominate Taylor-model arithmetic (`add`, `mul`,
//! `compose`) become cache-friendly merges over contiguous memory instead of
//! pointer-chasing tree walks. Monomials of up to [`PACK_VARS`] variables
//! with per-variable exponents up to [`PACK_MAX_EXP`] are packed into a
//! single `u64` key — one byte per variable, variable 0 in the most
//! significant byte — so comparing or multiplying monomials is integer
//! arithmetic with **no allocation**. Big-endian packing makes the numeric
//! `u64` order coincide with lexicographic order on exponent vectors, which
//! keeps term iteration order identical to the previous `BTreeMap<Vec<u32>,
//! f64>` representation. Polynomials beyond the packed limits (more than 8
//! variables, or a product whose total degree could exceed 255) fall back to
//! boxed exponent-vector keys transparently.
//!
//! # Storage layout
//!
//! Packed terms are stored structure-of-arrays ([`PackedTerms`]): one
//! contiguous `Vec<u64>` of monomial keys and one contiguous `Vec<f64>` of
//! coefficients. Coefficient-side inner loops (scaling, product staging,
//! norms) run over the bare `f64` array through the chunked kernels in
//! [`crate::kernels`], which autovectorize to `f64x4` (and have an opt-in
//! `core::arch` path behind the `simd` feature). Rounding-sensitive
//! *interval* work — term ranges, truncation remainders — never goes
//! through those kernels: every interval endpoint is produced by the
//! directed-rounding primitives in `dwv-interval`, one term at a time, in a
//! fixed documented order (see [`Polynomial::eval_interval`]).

use crate::kernels;
use crate::workspace::PolyWorkspace;
use dwv_interval::Interval;
use std::fmt;
use std::ops::{Add, AddAssign, Deref, Mul, Neg, Sub};

/// Maximum variable count the packed `u64` monomial key supports.
pub const PACK_VARS: usize = 8;
/// Maximum per-variable exponent one packed-key byte supports.
pub const PACK_MAX_EXP: u32 = 255;

/// Bit shift of variable `i`'s byte in a packed key (variable 0 occupies the
/// most significant byte so that `u64` order == lexicographic order).
#[inline]
const fn key_shift(i: usize) -> u32 {
    8 * (7 - i as u32)
}

/// Packs an exponent vector into a `u64` key, or `None` when it exceeds the
/// packed limits.
#[inline]
fn pack_exps(exps: &[u32]) -> Option<u64> {
    if exps.len() > PACK_VARS {
        return None;
    }
    let mut key = 0u64;
    for (i, &e) in exps.iter().enumerate() {
        if e > PACK_MAX_EXP {
            return None;
        }
        key |= u64::from(e) << key_shift(i);
    }
    Some(key)
}

/// Exponent of variable `i` in a packed key.
#[inline]
fn key_exp(key: u64, i: usize) -> u32 {
    ((key >> key_shift(i)) & 0xFF) as u32
}

/// Total degree of a packed key (sum of its bytes).
#[inline]
fn key_degree(mut key: u64) -> u32 {
    let mut s = 0u32;
    while key != 0 {
        s += (key & 0xFF) as u32;
        key >>= 8;
    }
    s
}

/// A view of one term's exponent vector, dereferencing to `[u32]`.
///
/// Packed terms materialize their bytes into an inline buffer (no heap
/// allocation); boxed terms borrow their stored slice.
pub struct Exponents<'a> {
    repr: ExpRepr<'a>,
}

enum ExpRepr<'a> {
    Inline { buf: [u32; PACK_VARS], len: usize },
    Slice(&'a [u32]),
}

impl<'a> Exponents<'a> {
    #[inline]
    fn from_key(key: u64, nvars: usize) -> Self {
        let mut buf = [0u32; PACK_VARS];
        for (i, b) in buf.iter_mut().enumerate().take(nvars) {
            *b = key_exp(key, i);
        }
        Self {
            repr: ExpRepr::Inline { buf, len: nvars },
        }
    }

    #[inline]
    fn from_slice(exps: &'a [u32]) -> Self {
        Self {
            repr: ExpRepr::Slice(exps),
        }
    }

    /// The exponents as a slice (also available through `Deref`).
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        match &self.repr {
            ExpRepr::Inline { buf, len } => &buf[..*len],
            ExpRepr::Slice(s) => s,
        }
    }
}

impl Deref for Exponents<'_> {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl fmt::Debug for Exponents<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// Packed terms in structure-of-arrays layout: `keys[i]` is the monomial of
/// coefficient `coeffs[i]`. Both arrays always have equal length; terms are
/// sorted by key and zero coefficients are never stored (between kernel
/// stages the staging buffers may transiently violate the sorted/non-zero
/// invariants, never the equal-length one).
///
/// The split layout is what the chunked kernels in [`crate::kernels`] run
/// on: coefficient loops see a bare `&[f64]` with unit stride.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedTerms {
    /// Packed monomial keys, sorted ascending in normalized polynomials.
    pub(crate) keys: Vec<u64>,
    /// Coefficients, parallel to `keys`.
    pub(crate) coeffs: Vec<f64>,
}

impl PackedTerms {
    fn with_capacity(n: usize) -> Self {
        Self {
            keys: Vec::with_capacity(n),
            coeffs: Vec::with_capacity(n),
        }
    }

    fn of_term(key: u64, c: f64) -> Self {
        Self {
            keys: vec![key],
            coeffs: vec![c],
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.keys.clear();
        self.coeffs.clear();
    }

    fn reserve(&mut self, n: usize) {
        self.keys.reserve(n);
        self.coeffs.reserve(n);
    }

    #[inline]
    pub(crate) fn push(&mut self, key: u64, c: f64) {
        self.keys.push(key);
        self.coeffs.push(c);
    }

    #[inline]
    fn pop(&mut self) {
        self.keys.pop();
        self.coeffs.pop();
    }

    /// Iterates `(key, coefficient)` pairs in storage order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.keys.iter().copied().zip(self.coeffs.iter().copied())
    }
}

/// Term storage. Within one polynomial all terms share a representation;
/// terms are sorted by monomial (numeric key order == lexicographic
/// exponent order) and zero coefficients are never stored.
#[derive(Debug, Clone)]
enum Repr {
    /// Structure-of-arrays packed terms — the fast path (≤ 8 vars, degree ≤ 255).
    Packed(PackedTerms),
    /// `(exponent vector, coefficient)` — the general fallback.
    Boxed(Vec<(Box<[u32]>, f64)>),
}

/// A sparse multivariate polynomial with `f64` coefficients.
///
/// All ring operations are exact up to floating-point rounding of the
/// coefficients themselves; *enclosure* of rounding and truncation effects
/// is the responsibility of the Taylor-model layer, which evaluates
/// discarded / truncated parts with interval arithmetic (see
/// [`Polynomial::prune`] and `dwv-taylor`).
///
/// # Example
///
/// ```
/// use dwv_poly::Polynomial;
///
/// let x = Polynomial::var(2, 0);
/// let y = Polynomial::var(2, 1);
/// let p = x.clone() * x.clone() + 3.0 * y.clone(); // x² + 3y
/// assert_eq!(p.eval(&[2.0, 1.0]), 7.0);
/// assert_eq!(p.partial_derivative(0).eval(&[2.0, 1.0]), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct Polynomial {
    nvars: usize,
    repr: Repr,
}

impl Polynomial {
    /// The zero polynomial in `nvars` variables.
    #[must_use]
    pub fn zero(nvars: usize) -> Self {
        let repr = if nvars <= PACK_VARS {
            Repr::Packed(PackedTerms::default())
        } else {
            Repr::Boxed(Vec::new())
        };
        Self { nvars, repr }
    }

    /// The constant polynomial `c`.
    #[must_use]
    pub fn constant(nvars: usize, c: f64) -> Self {
        if c == 0.0 {
            return Self::zero(nvars);
        }
        let repr = if nvars <= PACK_VARS {
            Repr::Packed(PackedTerms::of_term(0, c))
        } else {
            Repr::Boxed(vec![(vec![0; nvars].into_boxed_slice(), c)])
        };
        Self { nvars, repr }
    }

    /// The polynomial `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    #[must_use]
    pub fn var(nvars: usize, i: usize) -> Self {
        assert!(i < nvars, "variable index out of range");
        let mut exps = vec![0; nvars];
        exps[i] = 1;
        Self::monomial(nvars, exps, 1.0)
    }

    /// The monomial `c · x^exps`.
    ///
    /// # Panics
    ///
    /// Panics if `exps.len() != nvars`.
    #[must_use]
    pub fn monomial(nvars: usize, exps: Vec<u32>, c: f64) -> Self {
        assert_eq!(exps.len(), nvars, "exponent vector length mismatch");
        if c == 0.0 {
            return Self::zero(nvars);
        }
        let repr = match pack_exps(&exps) {
            Some(key) => Repr::Packed(PackedTerms::of_term(key, c)),
            None => Repr::Boxed(vec![(exps.into_boxed_slice(), c)]),
        };
        Self { nvars, repr }
    }

    /// Builds a polynomial from `(exponents, coefficient)` pairs, summing
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any exponent vector has the wrong length.
    #[must_use]
    pub fn from_terms<I>(nvars: usize, terms: I) -> Self
    where
        I: IntoIterator<Item = (Vec<u32>, f64)>,
    {
        let pairs: Vec<(Vec<u32>, f64)> = terms.into_iter().collect();
        for (exps, _) in &pairs {
            assert_eq!(exps.len(), nvars, "exponent vector length mismatch");
        }
        if nvars <= PACK_VARS {
            let packed: Option<Vec<(u64, f64)>> = pairs
                .iter()
                .map(|(exps, c)| pack_exps(exps).map(|k| (k, *c)))
                .collect();
            if let Some(v) = packed {
                return Self::from_packed_pairs(nvars, v);
            }
        }
        Self::from_boxed_pairs(
            nvars,
            pairs
                .into_iter()
                .map(|(e, c)| (e.into_boxed_slice(), c))
                .collect(),
        )
    }

    /// Normalizes unsorted packed pairs: stable key sort, sum duplicates in
    /// generation order, drop zeros — the same duplicate-summation order the
    /// index-sorted kernel staging produces.
    fn from_packed_pairs(nvars: usize, mut v: Vec<(u64, f64)>) -> Self {
        v.sort_by_key(|t| t.0);
        let mut out = PackedTerms::with_capacity(v.len());
        normalize_sorted(&v, &mut out);
        Self {
            nvars,
            repr: Repr::Packed(out),
        }
    }

    /// Normalizes unsorted boxed pairs: stable sort, sum duplicates, drop
    /// zeros.
    fn from_boxed_pairs(nvars: usize, mut v: Vec<(Box<[u32]>, f64)>) -> Self {
        v.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out: Vec<(Box<[u32]>, f64)> = Vec::with_capacity(v.len());
        for (e, c) in v {
            if let Some(last) = out.last_mut() {
                if last.0 == e {
                    last.1 += c;
                    if last.1 == 0.0 {
                        out.pop();
                    }
                    continue;
                }
            }
            if c != 0.0 {
                out.push((e, c));
            }
        }
        Self {
            nvars,
            repr: Repr::Boxed(out),
        }
    }

    /// Converts the term list to boxed representation (fallback path).
    fn to_boxed_terms(&self) -> Vec<(Box<[u32]>, f64)> {
        match &self.repr {
            Repr::Packed(v) => v
                .iter()
                .map(|(k, c)| {
                    let exps: Vec<u32> = (0..self.nvars).map(|i| key_exp(k, i)).collect();
                    (exps.into_boxed_slice(), c)
                })
                .collect(),
            Repr::Boxed(v) => v.clone(),
        }
    }

    /// The number of variables.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The number of stored (non-zero) terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        match &self.repr {
            Repr::Packed(v) => v.len(),
            Repr::Boxed(v) => v.len(),
        }
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num_terms() == 0
    }

    /// Iterates over `(exponents, coefficient)` pairs in lexicographic
    /// monomial order.
    pub fn iter(&self) -> TermIter<'_> {
        match &self.repr {
            Repr::Packed(v) => TermIter::Packed {
                keys: v.keys.iter(),
                coeffs: v.coeffs.iter(),
                nvars: self.nvars,
            },
            Repr::Boxed(v) => TermIter::Boxed(v.iter()),
        }
    }

    /// The total degree (max over terms of the exponent sum); 0 for the zero
    /// polynomial.
    #[must_use]
    pub fn degree(&self) -> u32 {
        match &self.repr {
            Repr::Packed(v) => v.keys.iter().map(|&k| key_degree(k)).max().unwrap_or(0),
            Repr::Boxed(v) => v.iter().map(|(e, _)| e.iter().sum()).max().unwrap_or(0),
        }
    }

    /// The coefficient of the constant term.
    #[must_use]
    pub fn constant_term(&self) -> f64 {
        // The constant monomial sorts first when present.
        match &self.repr {
            Repr::Packed(v) => match v.keys.first() {
                Some(0) => v.coeffs[0],
                _ => 0.0,
            },
            Repr::Boxed(v) => match v.first() {
                Some((e, c)) if e.iter().all(|&x| x == 0) => *c,
                _ => 0.0,
            },
        }
    }

    /// The coefficient of `x^exps` (0 when absent).
    #[must_use]
    pub fn coefficient(&self, exps: &[u32]) -> f64 {
        if exps.len() != self.nvars {
            return 0.0;
        }
        match &self.repr {
            Repr::Packed(v) => match pack_exps(exps) {
                Some(key) => v.keys.binary_search(&key).map_or(0.0, |i| v.coeffs[i]),
                None => 0.0,
            },
            Repr::Boxed(v) => v
                .binary_search_by(|(e, _)| e.as_ref().cmp(exps))
                .map_or(0.0, |i| v[i].1),
        }
    }

    /// Scales all coefficients by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Polynomial {
        if s == 0.0 {
            return Polynomial::zero(self.nvars);
        }
        let repr = match &self.repr {
            Repr::Packed(v) => {
                let mut coeffs = Vec::new();
                kernels::scale_into(&mut coeffs, &v.coeffs, s);
                Repr::Packed(PackedTerms {
                    keys: v.keys.clone(),
                    coeffs,
                })
            }
            Repr::Boxed(v) => Repr::Boxed(v.iter().map(|(e, c)| (e.clone(), c * s)).collect()), // dwv-lint: allow(float-hygiene) -- coefficient scale, the same elementwise product the scale kernel performs
        };
        Polynomial {
            nvars: self.nvars,
            repr,
        }
    }

    /// Evaluates at the point `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nvars()`.
    #[must_use]
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.nvars, "evaluation point dimension mismatch");
        match &self.repr {
            Repr::Packed(v) => v
                .iter()
                .map(|(k, c)| {
                    let mut m = c;
                    for (i, &xi) in x.iter().enumerate() {
                        let e = key_exp(k, i);
                        if e > 0 {
                            m *= xi.powi(e as i32); // dwv-lint: allow(float-hygiene) -- point evaluation, not an enclosure (interval callers use eval_interval)
                        }
                    }
                    m
                })
                .sum(),
            Repr::Boxed(v) => v
                .iter()
                .map(|(exps, c)| {
                    c * exps // dwv-lint: allow(float-hygiene) -- point evaluation, not an enclosure (interval callers use eval_interval)
                        .iter()
                        .zip(x)
                        .map(|(&e, &xi)| xi.powi(e as i32)) // dwv-lint: allow(float-hygiene) -- point evaluation, not an enclosure (interval callers use eval_interval)
                        .product::<f64>()
                })
                .sum(),
        }
    }

    /// Conservative interval enclosure of the range over the box `domain`.
    ///
    /// Monomial-wise interval evaluation: each term contributes
    /// `point(c) · (d₀^e₀ · d₁^e₁ · …)` with the monomial power product
    /// accumulated left-to-right over the variables (range-exact integer
    /// powers), and the per-term enclosures summed in term order. The
    /// factored form is what lets workspace-carrying callers memoize the
    /// pure monomial product per domain (see the `_ws` kernels); tighter
    /// enclosures are available via Bernstein form
    /// ([`crate::bernstein::range_enclosure`]).
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    #[must_use]
    pub fn eval_interval(&self, domain: &[Interval]) -> Interval {
        assert_eq!(domain.len(), self.nvars, "domain dimension mismatch");
        match &self.repr {
            Repr::Packed(v) => v.iter().map(|(k, c)| packed_term_range(k, c, domain)).sum(),
            Repr::Boxed(v) => v
                .iter()
                .map(|(exps, c)| boxed_term_range(exps, *c, domain))
                .sum(),
        }
    }

    /// [`Polynomial::eval_interval`] with the monomial power products served
    /// from the workspace's domain-keyed memo table — bit-identical to the
    /// workspace-free form (the cache stores exactly the values the direct
    /// computation produces), but each distinct monomial's interval power
    /// product is computed once per domain instead of once per call.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    #[must_use]
    pub fn eval_interval_ws(&self, domain: &[Interval], ws: &mut PolyWorkspace) -> Interval {
        assert_eq!(domain.len(), self.nvars, "domain dimension mismatch");
        match &self.repr {
            Repr::Packed(v) => {
                ws.powers.sync(domain);
                v.iter()
                    .map(|(k, c)| match ws.powers.mono(k, domain) {
                        Some(m) => Interval::point(c) * m,
                        None => Interval::point(c),
                    })
                    .sum()
            }
            Repr::Boxed(_) => self.eval_interval(domain),
        }
    }

    /// The partial derivative with respect to variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    #[must_use]
    pub fn partial_derivative(&self, i: usize) -> Polynomial {
        assert!(i < self.nvars, "variable index out of range");
        let repr = match &self.repr {
            Repr::Packed(v) => {
                // Dropping the e_i = 0 terms and decrementing byte i by one
                // subtracts the same constant from every remaining key, so
                // the term list stays sorted.
                let step = 1u64 << key_shift(i);
                let mut out = PackedTerms::with_capacity(v.len());
                for (k, c) in v.iter() {
                    let e = key_exp(k, i);
                    if e > 0 {
                        out.push(k - step, c * f64::from(e)); // dwv-lint: allow(float-hygiene) -- derivative coefficient product; enclosure handled by the Taylor-model layer
                    }
                }
                Repr::Packed(out)
            }
            Repr::Boxed(v) => Repr::Boxed(
                v.iter()
                    .filter(|(e, _)| e[i] > 0)
                    .map(|(e, c)| {
                        let mut d = e.clone();
                        let k = d[i];
                        d[i] -= 1;
                        (d, c * f64::from(k)) // dwv-lint: allow(float-hygiene) -- derivative coefficient product; enclosure handled by the Taylor-model layer
                    })
                    .collect(),
            ),
        };
        Polynomial {
            nvars: self.nvars,
            repr,
        }
    }

    /// The antiderivative with respect to variable `i` (zero constant).
    ///
    /// Used by Picard iteration: `∫₀^t f(x(s)) ds` in the time variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    #[must_use]
    pub fn antiderivative(&self, i: usize) -> Polynomial {
        assert!(i < self.nvars, "variable index out of range");
        match &self.repr {
            Repr::Packed(v) => {
                if v.keys.iter().any(|&k| key_exp(k, i) == PACK_MAX_EXP) {
                    // Incrementing would overflow the packed byte.
                    let boxed = self.to_boxed_terms();
                    return Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Boxed(Self::antiderivative_boxed(&boxed, i)),
                    };
                }
                // Incrementing byte i adds the same constant to every key:
                // order is preserved.
                let step = 1u64 << key_shift(i);
                let mut out = PackedTerms::with_capacity(v.len());
                for (k, c) in v.iter() {
                    let nk = k + step;
                    out.push(nk, c / f64::from(key_exp(nk, i))); // dwv-lint: allow(float-hygiene) -- antiderivative coefficient quotient; enclosure handled by the Taylor-model layer
                }
                Polynomial {
                    nvars: self.nvars,
                    repr: Repr::Packed(out),
                }
            }
            Repr::Boxed(v) => Polynomial {
                nvars: self.nvars,
                repr: Repr::Boxed(Self::antiderivative_boxed(v, i)),
            },
        }
    }

    fn antiderivative_boxed(v: &[(Box<[u32]>, f64)], i: usize) -> Vec<(Box<[u32]>, f64)> {
        v.iter()
            .map(|(e, c)| {
                let mut d = e.clone();
                d[i] += 1;
                let k = d[i];
                (d, c / f64::from(k)) // dwv-lint: allow(float-hygiene) -- antiderivative coefficient quotient; enclosure handled by the Taylor-model layer
            })
            .collect()
    }

    /// Splits the polynomial into terms with total degree ≤ `max_degree`
    /// (kept) and the rest (overflow).
    #[must_use]
    pub fn split_at_degree(&self, max_degree: u32) -> (Polynomial, Polynomial) {
        match &self.repr {
            Repr::Packed(v) => {
                let mut lo = PackedTerms::default();
                let mut hi = PackedTerms::default();
                for (k, c) in v.iter() {
                    if key_degree(k) <= max_degree {
                        lo.push(k, c);
                    } else {
                        hi.push(k, c);
                    }
                }
                (
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Packed(lo),
                    },
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Packed(hi),
                    },
                )
            }
            Repr::Boxed(v) => {
                let (lo, hi): (Vec<_>, Vec<_>) = v
                    .iter()
                    .cloned()
                    .partition(|(e, _)| e.iter().sum::<u32>() <= max_degree);
                (
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Boxed(lo),
                    },
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Boxed(hi),
                    },
                )
            }
        }
    }

    /// Splits into `(kept, dropped)` where `dropped` collects the terms with
    /// `|coefficient| <= eps`.
    ///
    /// This is the *sound* form of coefficient pruning: the caller must
    /// account for `dropped` — e.g. by adding `dropped.eval_interval(domain)`
    /// to a Taylor-model remainder, as `dwv-taylor` does after every ring
    /// operation. Nothing is silently discarded here.
    #[must_use]
    pub fn prune(&self, eps: f64) -> (Polynomial, Polynomial) {
        match &self.repr {
            Repr::Packed(v) => {
                let mut keep = PackedTerms::default();
                let mut drop = PackedTerms::default();
                for (k, c) in v.iter() {
                    if c.abs() > eps {
                        keep.push(k, c);
                    } else {
                        drop.push(k, c);
                    }
                }
                (
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Packed(keep),
                    },
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Packed(drop),
                    },
                )
            }
            Repr::Boxed(v) => {
                let (keep, drop): (Vec<_>, Vec<_>) =
                    v.iter().cloned().partition(|(_, c)| c.abs() > eps);
                (
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Boxed(keep),
                    },
                    Polynomial {
                        nvars: self.nvars,
                        repr: Repr::Boxed(drop),
                    },
                )
            }
        }
    }

    /// Substitutes `subs[i]` for variable `i` (exact composition).
    ///
    /// All substituted polynomials must share a variable count, which becomes
    /// the variable count of the result. Powers of each substituted
    /// polynomial are computed once and reused across terms.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.nvars()`, if `subs` is empty while the
    /// polynomial is non-constant, or if the substituted polynomials disagree
    /// on their variable count.
    #[must_use]
    pub fn compose(&self, subs: &[Polynomial]) -> Polynomial {
        assert_eq!(subs.len(), self.nvars, "substitution count mismatch");
        let out_vars = subs.first().map_or(0, Polynomial::nvars);
        assert!(
            subs.iter().all(|s| s.nvars() == out_vars),
            "substituted polynomials must share a variable count"
        );
        // Per-variable power tables up to the largest exponent in use.
        let mut max_e = vec![0u32; self.nvars];
        for (exps, _) in self.iter() {
            for (i, &e) in exps.iter().enumerate() {
                max_e[i] = max_e[i].max(e);
            }
        }
        let pows: Vec<Vec<Polynomial>> = max_e
            .iter()
            .zip(subs)
            .map(|(&m, s)| {
                let mut table = Vec::with_capacity(m as usize + 1);
                table.push(Polynomial::constant(out_vars, 1.0));
                for e in 1..=m as usize {
                    table.push(table[e - 1].clone() * s.clone());
                }
                table
            })
            .collect();
        let mut out = Polynomial::zero(out_vars);
        for (exps, c) in self.iter() {
            let mut term = Polynomial::constant(out_vars, c);
            for (i, &e) in exps.iter().enumerate() {
                if e > 0 {
                    term = term * pows[i][e as usize].clone();
                }
            }
            out += term;
        }
        out
    }

    /// Applies the per-variable affine substitution `x_i ← a_i + b_i·y_i`
    /// (same variable count; used to re-express a polynomial on a different
    /// box, e.g. normalizing to `[-1, 1]ⁿ`).
    ///
    /// # Panics
    ///
    /// Panics if the slices don't match the variable count.
    #[must_use]
    pub fn affine_substitution(&self, a: &[f64], b: &[f64]) -> Polynomial {
        assert_eq!(a.len(), self.nvars, "offset length mismatch");
        assert_eq!(b.len(), self.nvars, "scale length mismatch");
        let subs: Vec<Polynomial> = (0..self.nvars)
            .map(|i| {
                Polynomial::constant(self.nvars, a[i]) + Polynomial::var(self.nvars, i).scale(b[i])
            })
            .collect();
        self.compose(&subs)
    }

    /// Extends the polynomial to `new_nvars` variables (the added trailing
    /// variables do not occur).
    ///
    /// # Panics
    ///
    /// Panics if `new_nvars < self.nvars()`.
    #[must_use]
    pub fn extend_vars(&self, new_nvars: usize) -> Polynomial {
        assert!(new_nvars >= self.nvars, "cannot shrink variable count");
        match &self.repr {
            // Packed keys place variable i at a fixed byte regardless of
            // the variable count, so extending within the packed limit is
            // just a relabeling.
            Repr::Packed(v) if new_nvars <= PACK_VARS => Polynomial {
                nvars: new_nvars,
                repr: Repr::Packed(v.clone()),
            },
            _ => {
                let terms = self
                    .to_boxed_terms()
                    .into_iter()
                    .map(|(e, c)| {
                        let mut d = e.into_vec();
                        d.resize(new_nvars, 0);
                        (d.into_boxed_slice(), c)
                    })
                    .collect();
                Polynomial {
                    nvars: new_nvars,
                    repr: Repr::Boxed(terms),
                }
            }
        }
    }

    /// Drops trailing variables (which must not occur in any term).
    ///
    /// # Panics
    ///
    /// Panics if a dropped variable occurs with non-zero exponent, or if
    /// `new_nvars > self.nvars()`.
    #[must_use]
    pub fn shrink_vars(&self, new_nvars: usize) -> Polynomial {
        assert!(new_nvars <= self.nvars, "cannot grow variable count");
        match &self.repr {
            Repr::Packed(v) => {
                assert!(
                    v.keys
                        .iter()
                        .all(|&k| (new_nvars..self.nvars).all(|i| key_exp(k, i) == 0)),
                    "dropped variable occurs in polynomial"
                );
                Polynomial {
                    nvars: new_nvars,
                    repr: Repr::Packed(v.clone()),
                }
            }
            Repr::Boxed(v) => {
                let terms: Vec<(Box<[u32]>, f64)> = v
                    .iter()
                    .map(|(e, c)| {
                        assert!(
                            e[new_nvars..].iter().all(|&x| x == 0),
                            "dropped variable occurs in polynomial"
                        );
                        (e[..new_nvars].to_vec().into_boxed_slice(), *c)
                    })
                    .collect();
                if new_nvars <= PACK_VARS {
                    // Truncated lexicographic order is preserved, and boxed
                    // exponents are always ≤ their packed-era values only if
                    // they were packable; re-check and pack when possible.
                    let packable = terms.iter().all(|(e, _)| pack_exps(e).is_some());
                    if packable {
                        let mut out = PackedTerms::with_capacity(terms.len());
                        for (e, c) in &terms {
                            if let Some(k) = pack_exps(e) {
                                out.push(k, *c);
                            }
                        }
                        return Polynomial {
                            nvars: new_nvars,
                            repr: Repr::Packed(out),
                        };
                    }
                }
                Polynomial {
                    nvars: new_nvars,
                    repr: Repr::Boxed(terms),
                }
            }
        }
    }

    /// The L1 norm of the coefficient vector, accumulated in the chunked
    /// 4-lane order of [`kernels::abs_sum_chunked`] (a norm for heuristics
    /// and tests, never an enclosure bound).
    #[must_use]
    pub fn coeff_l1_norm(&self) -> f64 {
        match &self.repr {
            Repr::Packed(v) => kernels::abs_sum_chunked(&v.coeffs),
            Repr::Boxed(v) => {
                let coeffs: Vec<f64> = v.iter().map(|(_, c)| *c).collect();
                kernels::abs_sum_chunked(&coeffs)
            }
        }
    }

    /// Merges two sorted term lists, summing coefficients of equal monomials
    /// and dropping exact-zero sums.
    fn merge_add(self, rhs: Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        let nvars = self.nvars;
        match (self.repr, rhs.repr) {
            (Repr::Packed(a), Repr::Packed(b)) => {
                let mut out = PackedTerms::default();
                merge_packed(&a, &b, None, &mut out);
                Polynomial {
                    nvars,
                    repr: Repr::Packed(out),
                }
            }
            (a_repr, b_repr) => {
                let a = Polynomial {
                    nvars,
                    repr: a_repr,
                }
                .to_boxed_terms();
                let b = Polynomial {
                    nvars,
                    repr: b_repr,
                }
                .to_boxed_terms();
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].0.cmp(&b[j].0) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i].clone());
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j].clone());
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let c = a[i].1 + b[j].1;
                            if c != 0.0 {
                                out.push((a[i].0.clone(), c));
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend(a[i..].iter().cloned());
                out.extend(b[j..].iter().cloned());
                Polynomial {
                    nvars,
                    repr: Repr::Boxed(out),
                }
            }
        }
    }

    // --- In-place / destination-passing kernels -------------------------
    //
    // The zero-copy forms of `+`, `*`, `split_at_degree` and `prune`: same
    // pair-generation order, same stable key order, same merge and summation
    // order as the functional ops, so results are bit-identical (asserted by
    // the property tests); only the allocation behaviour differs. Boxed
    // representations fall back to the functional ops.

    /// The packed term arrays `(keys, coefficients)`, when this polynomial
    /// uses the packed representation (used by the Bernstein range cache for
    /// content keys).
    pub(crate) fn packed_terms(&self) -> Option<(&[u64], &[f64])> {
        match &self.repr {
            Repr::Packed(v) => Some((&v.keys, &v.coeffs)),
            Repr::Boxed(_) => None,
        }
    }

    /// Resets `self` to an empty packed polynomial in `nvars` variables,
    /// reusing the existing term buffers when possible, and returns them.
    fn packed_storage(&mut self, nvars: usize) -> &mut PackedTerms {
        self.nvars = nvars;
        if let Repr::Packed(v) = &mut self.repr {
            v.clear();
        } else {
            self.repr = Repr::Packed(PackedTerms::default());
        }
        match &mut self.repr {
            Repr::Packed(v) => v,
            // dwv-lint: allow(panic-freedom) -- variant assigned unconditionally above; rustc cannot see through the reassignment
            Repr::Boxed(_) => unreachable!("just reset to packed"),
        }
    }

    /// In-place `self += rhs`, staging the merge in `ws`.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn add_assign_ref(&mut self, rhs: &Polynomial, ws: &mut PolyWorkspace) {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        if let (Repr::Packed(a), Repr::Packed(b)) = (&mut self.repr, &rhs.repr) {
            merge_packed(a, b, None, &mut ws.merge);
            std::mem::swap(a, &mut ws.merge);
        } else {
            let lhs = std::mem::replace(self, Polynomial::zero(self.nvars));
            *self = lhs.merge_add(rhs.clone());
        }
    }

    /// In-place fused `self += s·rhs`, bit-identical to
    /// `self.clone() + rhs.scale(s)` without materializing the scaled copy.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn add_scaled_assign(&mut self, rhs: &Polynomial, s: f64, ws: &mut PolyWorkspace) {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        if s == 0.0 {
            // rhs.scale(0.0) is the zero polynomial; the merge is a no-op.
            return;
        }
        if let (Repr::Packed(a), Repr::Packed(b)) = (&mut self.repr, &rhs.repr) {
            merge_packed(a, b, Some(s), &mut ws.merge);
            std::mem::swap(a, &mut ws.merge);
        } else {
            let lhs = std::mem::replace(self, Polynomial::zero(self.nvars));
            *self = lhs.merge_add(rhs.scale(s));
        }
    }

    /// In-place coefficient scaling, bit-identical to [`Polynomial::scale`]
    /// (both run the same elementwise chunked kernel).
    pub fn scale_in_place(&mut self, s: f64) {
        if s == 0.0 {
            let nvars = self.nvars;
            *self = Polynomial::zero(nvars);
            return;
        }
        match &mut self.repr {
            Repr::Packed(v) => kernels::scale_slice(&mut v.coeffs, s),
            Repr::Boxed(v) => {
                for t in v {
                    t.1 *= s; // dwv-lint: allow(float-hygiene) -- coefficient scale, the same elementwise product the scale kernel performs
                }
            }
        }
    }

    /// `out = self * rhs`, reusing `out`'s term storage and `ws` scratch.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn mul_into(&self, rhs: &Polynomial, out: &mut Polynomial, ws: &mut PolyWorkspace) {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &rhs.repr) {
            if self.degree() + rhs.degree() <= PACK_MAX_EXP {
                let dst = out.packed_storage(self.nvars);
                if a.is_empty() || b.is_empty() {
                    return;
                }
                stage_product(a, b, &mut ws.stage, &mut ws.order, &mut ws.order_scratch);
                normalize_staged(&ws.stage, &ws.order, dst);
                return;
            }
        }
        *out = self.mul_fallback(rhs);
    }

    /// Boxed-representation product fallback — the cold path the fused
    /// `*_into` kernels take when exponents overflow the packed key. Lives
    /// outside the no-alloc kernel zone: the functional product allocates
    /// freely.
    fn mul_fallback(&self, rhs: &Polynomial) -> Polynomial {
        self.clone() * rhs.clone()
    }

    /// Fused multiply + truncate: `out` receives the product's terms of total
    /// degree ≤ `max_degree`; the overflow terms are folded directly into the
    /// returned interval (their range over `domain`) without ever being
    /// materialized as a polynomial. Bit-identical to
    /// `(self·rhs).split_at_degree(max_degree)` followed by
    /// `overflow.eval_interval(domain)` — the overflow term ranges reuse the
    /// workspace's monomial-product memo, which stores exactly the values
    /// the direct evaluation computes.
    ///
    /// # Panics
    ///
    /// Panics on variable-count or domain-length mismatch.
    pub fn mul_truncated_into(
        &self,
        rhs: &Polynomial,
        max_degree: u32,
        domain: &[Interval],
        out: &mut Polynomial,
        ws: &mut PolyWorkspace,
    ) -> Interval {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        assert_eq!(domain.len(), self.nvars, "domain dimension mismatch");
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &rhs.repr) {
            if self.degree() + rhs.degree() <= PACK_MAX_EXP {
                if a.is_empty() || b.is_empty() {
                    out.packed_storage(self.nvars);
                    return Interval::ZERO;
                }
                stage_product(a, b, &mut ws.stage, &mut ws.order, &mut ws.order_scratch);
                ws.merge.clear();
                normalize_staged(&ws.stage, &ws.order, &mut ws.merge);
                ws.powers.sync(domain);
                let mut overflow = Interval::ZERO;
                let dst = out.packed_storage(self.nvars);
                dst.reserve(ws.merge.len());
                for (k, c) in ws.merge.iter() {
                    if key_degree(k) <= max_degree {
                        dst.push(k, c);
                    } else {
                        overflow += match ws.powers.mono(k, domain) {
                            Some(m) => Interval::point(c) * m,
                            None => Interval::point(c),
                        };
                    }
                }
                return overflow;
            }
        }
        let full = self.mul_fallback(rhs);
        let (kept, over) = full.split_at_degree(max_degree);
        *out = kept;
        over.eval_interval(domain)
    }

    // --- Candidate-generation (dropping) kernels ------------------------
    //
    // These discard truncated/pruned terms WITHOUT interval accounting. They
    // are NOT enclosure-preserving on their own: they exist for callers that
    // construct a *candidate* polynomial and then rebuild a sound remainder
    // independently — the flowpipe's polynomial Picard phase, whose
    // per-iteration remainders are provably irrelevant (validation derives
    // the enclosure from the final polynomial alone). Coefficients produced
    // are bit-identical to the accounting counterparts'; only the interval
    // side is omitted.

    /// `out = (self · rhs)` truncated at total degree `max_degree`, with the
    /// overflow terms **discarded** (no interval accounting) — the
    /// candidate-generation form of [`Polynomial::mul_truncated_into`].
    /// `out`'s kept terms are bit-identical to that method's.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn mul_dropping_into(
        &self,
        rhs: &Polynomial,
        max_degree: u32,
        out: &mut Polynomial,
        ws: &mut PolyWorkspace,
    ) {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &rhs.repr) {
            if self.degree() + rhs.degree() <= PACK_MAX_EXP {
                let dst = out.packed_storage(self.nvars);
                if a.is_empty() || b.is_empty() {
                    return;
                }
                stage_product_dropping(
                    a,
                    b,
                    max_degree,
                    &mut ws.stage,
                    &mut ws.order,
                    &mut ws.order_scratch,
                    &mut ws.bdeg,
                );
                dst.reserve(ws.order.len());
                for &i in &ws.order {
                    let (k, c) = (ws.stage.keys[i as usize], ws.stage.coeffs[i as usize]);
                    if let Some(&last_key) = dst.keys.last() {
                        if last_key == k {
                            let last = dst.coeffs.len() - 1;
                            dst.coeffs[last] += c; // dwv-lint: allow(float-hygiene) -- duplicate-monomial merge, the same coefficient sum the functional product performs
                            if dst.coeffs[last] == 0.0 {
                                dst.pop();
                            }
                            continue;
                        }
                    }
                    if c != 0.0 {
                        dst.push(k, c);
                    }
                }
                return;
            }
        }
        let full = self.mul_fallback(rhs);
        *out = full.split_at_degree(max_degree).0;
    }

    /// Removes terms with total degree > `max_degree`, **discarding** them
    /// (no interval accounting) — the candidate-generation form of
    /// [`Polynomial::truncate_in_place`].
    pub fn truncate_dropping(&mut self, max_degree: u32) {
        match &mut self.repr {
            Repr::Packed(v) => {
                let mut w = 0usize;
                for r in 0..v.len() {
                    if key_degree(v.keys[r]) <= max_degree {
                        v.keys[w] = v.keys[r];
                        v.coeffs[w] = v.coeffs[r];
                        w += 1;
                    }
                }
                v.keys.truncate(w);
                v.coeffs.truncate(w);
            }
            Repr::Boxed(v) => v.retain(|(e, _)| e.iter().sum::<u32>() <= max_degree),
        }
    }

    /// Removes terms with `|coefficient| ≤ eps`, **discarding** them (no
    /// interval accounting) — the candidate-generation form of
    /// [`Polynomial::prune_in_place`].
    pub fn prune_dropping(&mut self, eps: f64) {
        match &mut self.repr {
            Repr::Packed(v) => {
                let mut w = 0usize;
                for r in 0..v.len() {
                    if v.coeffs[r].abs() > eps {
                        v.keys[w] = v.keys[r];
                        v.coeffs[w] = v.coeffs[r];
                        w += 1;
                    }
                }
                v.keys.truncate(w);
                v.coeffs.truncate(w);
            }
            Repr::Boxed(v) => v.retain(|(_, c)| c.abs() > eps),
        }
    }

    /// Exact representation equality: same variable count, same term keys,
    /// and bitwise-equal coefficients (`-0.0 ≠ +0.0`, NaNs compare by
    /// payload). Terms are stored sorted with exact zeros dropped, so two
    /// polynomials that are `bits_eq` behave identically — bit for bit — in
    /// every subsequent operation; the flowpipe's Picard fixed-point early
    /// exit relies on exactly this.
    #[must_use]
    pub fn bits_eq(&self, other: &Polynomial) -> bool {
        if self.nvars != other.nvars || self.num_terms() != other.num_terms() {
            return false;
        }
        if let (Some((ka, ca)), Some((kb, cb))) = (self.packed_terms(), other.packed_terms()) {
            return ka == kb && ca.iter().zip(cb).all(|(a, b)| a.to_bits() == b.to_bits());
        }
        self.iter()
            .zip(other.iter())
            .all(|((ea, ca), (eb, cb))| *ea == *eb && ca.to_bits() == cb.to_bits())
    }

    /// Substitutes the constant `value` for variable `var`. The variable
    /// count is preserved; the variable simply no longer occurs.
    ///
    /// Coefficients are mapped exactly as the term-by-term monomial
    /// accumulation would (`c` itself for exponent 0 or `value == 1.0`, which
    /// are exact in IEEE-754; `c · value^k` otherwise), and colliding terms
    /// are summed in ascending original key order — the same order and the
    /// same sums as the quadratic `out += monomial` formulation.
    ///
    /// When `var` is the last variable that occurs (the flowpipe's appended
    /// time variable always is), clearing its byte is monotone on the
    /// lex-ordered keys — ties were already adjacent — so the whole
    /// substitution is one linear merge pass. Otherwise the mapped pairs are
    /// stable-sorted by key first, which puts colliding terms adjacent in
    /// ascending original order, and then merged by the same pass.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    #[must_use]
    pub fn substitute_value(&self, var: usize, value: f64) -> Polynomial {
        assert!(var < self.nvars, "variable index out of range");
        let Repr::Packed(v) = &self.repr else {
            let mut out = Polynomial::zero(self.nvars);
            for (exps, c) in self.iter() {
                let mut e = exps.to_vec();
                let k = e[var]; // dwv-lint: allow(panic-freedom#index) -- var < nvars asserted above
                e[var] = 0; // dwv-lint: allow(panic-freedom#index) -- var < nvars asserted above
                let coeff = if k == 0 || value == 1.0 {
                    c
                } else {
                    // dwv-lint: allow(float-hygiene) -- exact for the 0/±1 substitutions the pipeline performs; general values are test-only
                    c * value.powi(k as i32)
                };
                out += Polynomial::monomial(self.nvars, e, coeff);
            }
            return out;
        };
        let shift = key_shift(var);
        let mask = !(0xFFu64 << shift);
        let low_mask = (1u64 << shift) - 1;
        let map_coeff = |k: u64, c: f64| {
            let e = key_exp(k, var);
            if e == 0 || value == 1.0 {
                c
            } else {
                // dwv-lint: allow(float-hygiene) -- exact for the 0/±1 substitutions the pipeline performs; general values are test-only
                c * value.powi(e as i32)
            }
        };
        let mut out = PackedTerms::default();
        out.reserve(v.len());
        let mut active = 0u64;
        for &k in &v.keys {
            active |= k;
        }
        if active & low_mask == 0 {
            // `var` is the last occurring variable: clearing its byte keeps
            // the keys sorted (all remaining active bytes are higher), so the
            // mapped stream merges in one pass.
            for (k, c) in v.iter() {
                merge_mapped_term(&mut out, k & mask, map_coeff(k, c));
            }
        } else {
            let mut pairs: Vec<(u64, f64)> =
                v.iter().map(|(k, c)| (k & mask, map_coeff(k, c))).collect();
            // Stable: colliding keys keep ascending original order.
            pairs.sort_by_key(|&(k, _)| k);
            for (k, c) in pairs {
                merge_mapped_term(&mut out, k, c);
            }
        }
        Polynomial {
            nvars: self.nvars,
            repr: Repr::Packed(out),
        }
    }

    /// Removes terms with total degree > `max_degree`, returning the removed
    /// terms' interval range over `domain` (`None` when nothing overflowed).
    /// Bit-identical to `split_at_degree` + `eval_interval` of the overflow.
    ///
    /// # Panics
    ///
    /// Panics on domain-length mismatch.
    pub fn truncate_in_place(&mut self, max_degree: u32, domain: &[Interval]) -> Option<Interval> {
        assert_eq!(domain.len(), self.nvars, "domain dimension mismatch");
        match &mut self.repr {
            Repr::Packed(v) => {
                if v.keys.iter().all(|&k| key_degree(k) <= max_degree) {
                    return None;
                }
                let mut acc = Interval::ZERO;
                let mut w = 0usize;
                for r in 0..v.len() {
                    let (k, c) = (v.keys[r], v.coeffs[r]);
                    if key_degree(k) <= max_degree {
                        v.keys[w] = k;
                        v.coeffs[w] = c;
                        w += 1;
                    } else {
                        acc += packed_term_range(k, c, domain);
                    }
                }
                v.keys.truncate(w);
                v.coeffs.truncate(w);
                Some(acc)
            }
            Repr::Boxed(v) => {
                if v.iter().all(|(e, _)| e.iter().sum::<u32>() <= max_degree) {
                    return None;
                }
                let mut acc = Interval::ZERO;
                v.retain(|(e, c)| {
                    if e.iter().sum::<u32>() <= max_degree {
                        true
                    } else {
                        acc += boxed_term_range(e, *c, domain);
                        false
                    }
                });
                Some(acc)
            }
        }
    }

    /// Removes terms with `|coefficient| ≤ eps`, returning their interval
    /// range over `domain` (`None` when nothing was dropped). Bit-identical
    /// to [`Polynomial::prune`] + `eval_interval` of the dropped part.
    ///
    /// # Panics
    ///
    /// Panics on domain-length mismatch.
    pub fn prune_in_place(&mut self, eps: f64, domain: &[Interval]) -> Option<Interval> {
        assert_eq!(domain.len(), self.nvars, "domain dimension mismatch");
        match &mut self.repr {
            Repr::Packed(v) => {
                if v.coeffs.iter().all(|c| c.abs() > eps) {
                    return None;
                }
                let mut acc = Interval::ZERO;
                let mut w = 0usize;
                for r in 0..v.len() {
                    let (k, c) = (v.keys[r], v.coeffs[r]);
                    if c.abs() > eps {
                        v.keys[w] = k;
                        v.coeffs[w] = c;
                        w += 1;
                    } else {
                        acc += packed_term_range(k, c, domain);
                    }
                }
                v.keys.truncate(w);
                v.coeffs.truncate(w);
                Some(acc)
            }
            Repr::Boxed(v) => {
                if v.iter().all(|(_, c)| c.abs() > eps) {
                    return None;
                }
                let mut acc = Interval::ZERO;
                v.retain(|(e, c)| {
                    if c.abs() > eps {
                        true
                    } else {
                        acc += boxed_term_range(e, *c, domain);
                        false
                    }
                });
                Some(acc)
            }
        }
    }
}

/// Interval power product `d₀^e₀ · d₁^e₁ · …` of one packed monomial over
/// `domain`, accumulated left-to-right over the variables that occur
/// (`None` for the constant monomial). Pure in `(key, domain)` — the
/// workspace memo table stores exactly these values.
#[inline]
pub(crate) fn packed_mono_range(key: u64, domain: &[Interval]) -> Option<Interval> {
    let mut mono: Option<Interval> = None;
    for (i, iv) in domain.iter().enumerate() {
        let e = key_exp(key, i);
        if e > 0 {
            let p = iv.powi(e);
            mono = Some(match mono {
                None => p,
                Some(m) => m * p,
            });
        }
    }
    mono
}

/// Interval range of one packed term over `domain` — the per-term evaluation
/// [`Polynomial::eval_interval`] performs: `point(c) · mono(key, domain)`.
#[inline]
fn packed_term_range(key: u64, c: f64, domain: &[Interval]) -> Interval {
    match packed_mono_range(key, domain) {
        Some(m) => Interval::point(c) * m,
        None => Interval::point(c),
    }
}

/// Interval range of one boxed term over `domain` (same factored form as
/// [`packed_term_range`]).
#[inline]
fn boxed_term_range(exps: &[u32], c: f64, domain: &[Interval]) -> Interval {
    let mut mono: Option<Interval> = None;
    for (&e, iv) in exps.iter().zip(domain) {
        if e > 0 {
            let p = iv.powi(e);
            mono = Some(match mono {
                None => p,
                Some(m) => m * p,
            });
        }
    }
    match mono {
        Some(m) => Interval::point(c) * m,
        None => Interval::point(c),
    }
}

/// Stages the raw pair products of two packed term lists into `stage`
/// (cleared first) and fills `order` with the key-sorted permutation.
///
/// The staging loops are stride-friendly: for each term of `a`, the key row
/// is `b.keys + ka` (elementwise `u64` add) and the coefficient row is
/// `b.coeffs · ca` (elementwise product), both over contiguous arrays, so
/// they autovectorize (and dispatch to the `core::arch` path under the
/// `simd` feature). The permutation sorts by key with the staging index as
/// tie-break — a deterministic total order, so duplicate keys are summed in
/// generation order (the same order the functional `Mul`'s stable sort
/// produces).
fn stage_product(
    a: &PackedTerms,
    b: &PackedTerms,
    stage: &mut PackedTerms,
    order: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) {
    stage.clear();
    stage.reserve(a.len() * b.len());
    for (ka, ca) in a.iter() {
        stage.keys.extend(b.keys.iter().map(|&kb| ka + kb));
        let at = stage.coeffs.len();
        stage.coeffs.resize(at + b.len(), 0.0);
        kernels::scale_into_slice(&mut stage.coeffs[at..], &b.coeffs, ca);
    }
    order.clear();
    order.extend(0..stage.len() as u32);
    sort_order_by_key(&stage.keys, order, scratch);
}

/// Degree-filtered staging for the dropping product: stages exactly the pair
/// products with total degree ≤ `max_degree` (the kept set of a truncated
/// product) and fills `order` with their key-sorted permutation.
///
/// Filtering happens *before* the sort: per `a`-term the admissible `b`-terms
/// are those with `key_degree(kb) ≤ max_degree − key_degree(ka)` (`bdeg`
/// holds the `b` degrees, computed once per call). Kept pairs keep their
/// generation order, and discarded pairs carry no coefficient mass (they were
/// skipped *after* the sort before), so the fold over the permutation sums
/// exactly the same coefficients in exactly the same order as unfiltered
/// staging + in-fold filtering — bit-identical output from a sort/merge over
/// only the surviving fraction.
fn stage_product_dropping(
    a: &PackedTerms,
    b: &PackedTerms,
    max_degree: u32,
    stage: &mut PackedTerms,
    order: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    bdeg: &mut Vec<u32>,
) {
    stage.clear();
    bdeg.clear();
    bdeg.extend(b.keys.iter().map(|&k| key_degree(k)));
    for (ka, ca) in a.iter() {
        let da = key_degree(ka);
        if da > max_degree {
            continue;
        }
        kernels::stage_row_filtered(
            &mut stage.keys,
            &mut stage.coeffs,
            ka,
            ca,
            &b.keys,
            &b.coeffs,
            bdeg,
            max_degree - da,
        );
    }
    order.clear();
    order.extend(0..stage.len() as u32);
    sort_order_by_key(&stage.keys, order, scratch);
}

/// Sorts the index permutation `order` by `keys[i]`, equal keys in ascending
/// index order — the unique permutation `sort_unstable_by_key(|&i|
/// (keys[i], i))` produces, computed as a stable LSD radix sort over the key
/// bytes that are actually populated (for an order-`d` polynomial in `v`
/// variables only `v` bytes are ever non-zero, so this is typically 2–4
/// counting passes instead of an `O(n log n)` comparison sort with gather
/// loads).
fn sort_order_by_key(keys: &[u64], order: &mut Vec<u32>, scratch: &mut Vec<u32>) {
    if keys.len() < 2 {
        return;
    }
    // Small products: the comparison sort's constant factor wins, and the
    // permutation is identical (stability == index tie-break).
    if keys.len() <= 32 {
        order.sort_unstable_by_key(|&i| (keys[i as usize], i));
        return;
    }
    let mut active = 0u64;
    for &k in keys {
        active |= k;
    }
    scratch.clear();
    scratch.resize(order.len(), 0);
    let mut counts = [0u32; 256];
    let mut shift = 0u32;
    while shift < 64 && (active >> shift) != 0 {
        if (active >> shift) & 0xFF != 0 {
            counts.fill(0);
            for &i in order.iter() {
                counts[((keys[i as usize] >> shift) & 0xFF) as usize] += 1;
            }
            let mut sum = 0u32;
            for c in &mut counts {
                let n = *c;
                *c = sum;
                sum += n;
            }
            for &i in order.iter() {
                let b = ((keys[i as usize] >> shift) & 0xFF) as usize;
                scratch[counts[b] as usize] = i;
                counts[b] += 1;
            }
            std::mem::swap(order, scratch);
        }
        shift += 8;
    }
}

/// The dedup half of a product: folds the staged pairs into `out` following
/// the sorted permutation, summing duplicates and dropping exact-zero sums.
/// `out` must start empty.
fn normalize_staged(stage: &PackedTerms, order: &[u32], out: &mut PackedTerms) {
    out.reserve(order.len());
    for &i in order {
        let (k, c) = (stage.keys[i as usize], stage.coeffs[i as usize]);
        if let Some(&last_key) = out.keys.last() {
            if last_key == k {
                let last = out.coeffs.len() - 1;
                out.coeffs[last] += c; // dwv-lint: allow(float-hygiene) -- duplicate-monomial merge, the same coefficient sum the functional product performs
                if out.coeffs[last] == 0.0 {
                    out.pop();
                }
                continue;
            }
        }
        if c != 0.0 {
            out.push(k, c);
        }
    }
}

/// Appends one term of a key-sorted mapped stream to `out`, summing into the
/// trailing term on key collision (dropping exact-zero sums) — the same
/// duplicate fold `normalize_staged` performs, exposed for the substitution
/// kernel's merge passes.
fn merge_mapped_term(out: &mut PackedTerms, k: u64, c: f64) {
    if let Some(&last_key) = out.keys.last() {
        if last_key == k {
            let last = out.coeffs.len() - 1;
            // dwv-lint: allow(float-hygiene) -- duplicate-monomial merge, the same coefficient sum the functional `+` performs
            out.coeffs[last] += c;
            if out.coeffs[last] == 0.0 {
                out.pop();
            }
            return;
        }
    }
    if c != 0.0 {
        out.push(k, c);
    }
}

/// The dedup half of `from_packed_pairs`: folds a sorted pair list into
/// `out`, summing duplicates and dropping exact-zero sums. `out` must start
/// empty.
fn normalize_sorted(sorted: &[(u64, f64)], out: &mut PackedTerms) {
    for &(k, c) in sorted {
        if let Some(&last_key) = out.keys.last() {
            if last_key == k {
                let last = out.coeffs.len() - 1;
                out.coeffs[last] += c; // dwv-lint: allow(float-hygiene) -- duplicate-monomial merge, the same coefficient sum the functional product performs
                if out.coeffs[last] == 0.0 {
                    out.pop();
                }
                continue;
            }
        }
        if c != 0.0 {
            out.push(k, c);
        }
    }
}

/// Merges two sorted packed term lists into `out` (cleared first), summing
/// equal monomials and dropping exact-zero sums. `scale` streams `b`'s
/// coefficients through a multiply as they merge — the fused form of
/// `scale` + `add` with identical floating-point operations.
fn merge_packed(a: &PackedTerms, b: &PackedTerms, scale: Option<f64>, out: &mut PackedTerms) {
    out.clear();
    out.reserve(a.len() + b.len());
    let sb = scale.unwrap_or(1.0);
    let scaled = scale.is_some();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a.keys[i].cmp(&b.keys[j]) {
            std::cmp::Ordering::Less => {
                out.push(a.keys[i], a.coeffs[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let c = if scaled {
                    b.coeffs[j] * sb // dwv-lint: allow(float-hygiene) -- coefficient scale stream, the same elementwise product the scale kernel performs
                } else {
                    b.coeffs[j]
                };
                out.push(b.keys[j], c);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let bc = if scaled {
                    b.coeffs[j] * sb // dwv-lint: allow(float-hygiene) -- coefficient scale stream, the same elementwise product the scale kernel performs
                } else {
                    b.coeffs[j]
                };
                let c = a.coeffs[i] + bc; // dwv-lint: allow(float-hygiene) -- duplicate-monomial merge, the same coefficient sum the functional `+` performs
                if c != 0.0 {
                    out.push(a.keys[i], c);
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.keys.extend_from_slice(&a.keys[i..]);
    out.coeffs.extend_from_slice(&a.coeffs[i..]);
    out.keys.extend_from_slice(&b.keys[j..]);
    if scaled {
        let at = out.coeffs.len();
        out.coeffs.resize(at + (b.len() - j), 0.0);
        kernels::scale_into_slice(&mut out.coeffs[at..], &b.coeffs[j..], sb);
    } else {
        out.coeffs.extend_from_slice(&b.coeffs[j..]);
    }
}

/// Iterator over a polynomial's `(exponents, coefficient)` terms.
pub enum TermIter<'a> {
    /// Packed-representation terms (parallel key/coefficient arrays).
    Packed {
        /// Key iterator over the structure-of-arrays storage.
        keys: std::slice::Iter<'a, u64>,
        /// Coefficient iterator, advanced in lockstep with `keys`.
        coeffs: std::slice::Iter<'a, f64>,
        /// Variable count (packed keys don't store it).
        nvars: usize,
    },
    /// Boxed-representation terms.
    Boxed(std::slice::Iter<'a, (Box<[u32]>, f64)>),
}

impl<'a> Iterator for TermIter<'a> {
    type Item = (Exponents<'a>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            TermIter::Packed {
                keys,
                coeffs,
                nvars,
            } => match (keys.next(), coeffs.next()) {
                (Some(&k), Some(&c)) => Some((Exponents::from_key(k, *nvars), c)),
                _ => None,
            },
            TermIter::Boxed(inner) => inner.next().map(|(e, c)| (Exponents::from_slice(e), *c)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            TermIter::Packed { keys, .. } => keys.size_hint(),
            TermIter::Boxed(inner) => inner.size_hint(),
        }
    }
}

impl PartialEq for Polynomial {
    fn eq(&self, other: &Self) -> bool {
        self.nvars == other.nvars
            && self.num_terms() == other.num_terms()
            && self
                .iter()
                .zip(other.iter())
                .all(|((ea, ca), (eb, cb))| ca == cb && *ea == *eb)
    }
}

impl Add for Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: Polynomial) -> Polynomial {
        self.merge_add(rhs)
    }
}

impl AddAssign for Polynomial {
    fn add_assign(&mut self, rhs: Polynomial) {
        let lhs = std::mem::replace(self, Polynomial::zero(0));
        *self = lhs.merge_add(rhs);
    }
}

impl Sub for Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: Polynomial) -> Polynomial {
        self + (-rhs)
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable count mismatch");
        let nvars = self.nvars;
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &rhs.repr) {
            // Per-byte overflow is impossible when the total degrees sum
            // within one byte: every per-variable exponent is bounded by the
            // total degree.
            if self.degree() + rhs.degree() <= PACK_MAX_EXP {
                if a.is_empty() || b.is_empty() {
                    return Polynomial::zero(nvars);
                }
                let mut prod = Vec::with_capacity(a.len() * b.len());
                for (ka, ca) in a.iter() {
                    for (kb, cb) in b.iter() {
                        prod.push((ka + kb, ca * cb)); // dwv-lint: allow(float-hygiene) -- packed-key integer add and raw coefficient product of the functional reference product
                    }
                }
                return Polynomial::from_packed_pairs(nvars, prod);
            }
        }
        let a = self.to_boxed_terms();
        let b = rhs.to_boxed_terms();
        let mut prod = Vec::with_capacity(a.len() * b.len());
        for (ea, ca) in &a {
            for (eb, cb) in &b {
                let exps: Vec<u32> = ea.iter().zip(eb.iter()).map(|(&x, &y)| x + y).collect(); // dwv-lint: allow(float-hygiene) -- integer exponent arithmetic, exact
                prod.push((exps.into_boxed_slice(), ca * cb)); // dwv-lint: allow(float-hygiene) -- raw coefficient product of the functional reference product; enclosure handled by the Taylor-model layer
            }
        }
        Polynomial::from_boxed_pairs(nvars, prod)
    }
}

impl Mul<f64> for Polynomial {
    type Output = Polynomial;

    fn mul(self, s: f64) -> Polynomial {
        self.scale(s)
    }
}

impl Mul<Polynomial> for f64 {
    type Output = Polynomial;

    fn mul(self, p: Polynomial) -> Polynomial {
        p.scale(self)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (exps, c) in self.iter() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}")?;
            for (i, &e) in exps.iter().enumerate() {
                match e {
                    0 => {}
                    1 => write!(f, "·x{i}")?,
                    _ => write!(f, "·x{i}^{e}")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwv_interval::Interval;

    fn p_xy() -> Polynomial {
        // 2 + x - 3 x y^2
        Polynomial::from_terms(
            2,
            vec![(vec![0, 0], 2.0), (vec![1, 0], 1.0), (vec![1, 2], -3.0)],
        )
    }

    #[test]
    fn constructors_and_accessors() {
        let p = p_xy();
        assert_eq!(p.nvars(), 2);
        assert_eq!(p.num_terms(), 3);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.constant_term(), 2.0);
        assert_eq!(p.coefficient(&[1, 2]), -3.0);
        assert_eq!(p.coefficient(&[5, 5]), 0.0);
        assert!(Polynomial::zero(3).is_zero());
        assert!(Polynomial::constant(3, 0.0).is_zero());
    }

    #[test]
    fn eval_matches_formula() {
        let p = p_xy();
        let f = |x: f64, y: f64| 2.0 + x - 3.0 * x * y * y;
        for &(x, y) in &[(0.0, 0.0), (1.0, 2.0), (-1.5, 0.7)] {
            assert!((p.eval(&[x, y]) - f(x, y)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_and_cancel() {
        let p = p_xy();
        let q = p.clone() - p.clone();
        assert!(q.is_zero());
        let r = p.clone() + Polynomial::constant(2, -2.0);
        assert_eq!(r.constant_term(), 0.0);
        assert_eq!(r.num_terms(), 2);
    }

    #[test]
    fn mul_degree_adds() {
        let x = Polynomial::var(1, 0);
        let p =
            (x.clone() + Polynomial::constant(1, 1.0)) * (x.clone() - Polynomial::constant(1, 1.0));
        // (x+1)(x-1) = x^2 - 1
        assert_eq!(p.coefficient(&[2]), 1.0);
        assert_eq!(p.constant_term(), -1.0);
        assert_eq!(p.coefficient(&[1]), 0.0);
    }

    #[test]
    fn derivative_and_antiderivative_are_inverse() {
        let p = p_xy();
        let d = p.antiderivative(0).partial_derivative(0);
        for &(x, y) in &[(0.3, -0.2), (1.0, 1.0)] {
            assert!((d.eval(&[x, y]) - p.eval(&[x, y])).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_formula() {
        let p = p_xy(); // d/dy = -6xy
        let d = p.partial_derivative(1);
        assert!((d.eval(&[2.0, 3.0]) + 36.0).abs() < 1e-12);
    }

    #[test]
    fn interval_eval_encloses_samples() {
        let p = p_xy();
        let dom = [Interval::new(-1.0, 1.0), Interval::new(-2.0, 0.5)];
        let enc = p.eval_interval(&dom);
        for i in 0..=20 {
            for j in 0..=20 {
                let x = -1.0 + 2.0 * i as f64 / 20.0;
                let y = -2.0 + 2.5 * j as f64 / 20.0;
                assert!(enc.contains_value(p.eval(&[x, y])));
            }
        }
    }

    #[test]
    fn eval_interval_ws_is_bit_identical_and_memoized() {
        let p = p_xy();
        let dom = [Interval::new(-1.0, 1.0), Interval::new(-2.0, 0.5)];
        let direct = p.eval_interval(&dom);
        let mut ws = PolyWorkspace::new();
        let cold = p.eval_interval_ws(&dom, &mut ws);
        let warm = p.eval_interval_ws(&dom, &mut ws);
        assert_eq!(cold.lo().to_bits(), direct.lo().to_bits());
        assert_eq!(cold.hi().to_bits(), direct.hi().to_bits());
        assert_eq!(warm.lo().to_bits(), direct.lo().to_bits());
        assert_eq!(warm.hi().to_bits(), direct.hi().to_bits());
        // A different domain must not serve stale entries.
        let dom2 = [Interval::new(0.0, 2.0), Interval::new(-1.0, 1.0)];
        let direct2 = p.eval_interval(&dom2);
        let cached2 = p.eval_interval_ws(&dom2, &mut ws);
        assert_eq!(cached2.lo().to_bits(), direct2.lo().to_bits());
        assert_eq!(cached2.hi().to_bits(), direct2.hi().to_bits());
    }

    #[test]
    fn split_at_degree() {
        let p = p_xy();
        let (low, high) = p.split_at_degree(1);
        assert_eq!(low.num_terms(), 2);
        assert_eq!(high.num_terms(), 1);
        let back = low + high;
        assert_eq!(back, p);
    }

    #[test]
    fn prune_splits_by_coefficient_magnitude() {
        let p = Polynomial::from_terms(
            1,
            vec![
                (vec![0], 1.0),
                (vec![1], 1e-15),
                (vec![2], -2.0),
                (vec![3], -1e-16),
            ],
        );
        let (kept, dropped) = p.prune(1e-12);
        assert_eq!(kept.num_terms(), 2);
        assert_eq!(dropped.num_terms(), 2);
        // Nothing lost: the split is exact.
        assert_eq!(kept + dropped, p);
        // eps = 0 drops nothing.
        let (all, none) = p.prune(0.0);
        assert_eq!(all, p);
        assert!(none.is_zero());
    }

    #[test]
    fn compose_univariate() {
        // p(x) = x^2 + 1, q(t) = 2t - 1; p(q(t)) = 4t^2 - 4t + 2
        let x = Polynomial::var(1, 0);
        let p = x.clone() * x.clone() + Polynomial::constant(1, 1.0);
        let q = Polynomial::var(1, 0).scale(2.0) + Polynomial::constant(1, -1.0);
        let c = p.compose(&[q]);
        for t in [-1.0, 0.0, 0.5, 2.0] {
            let expected = (2.0 * t - 1.0f64).powi(2) + 1.0;
            assert!((c.eval(&[t]) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_changes_variable_count() {
        // p(x, y) = x*y composed with x = s+t, y = s-t  →  s^2 - t^2
        let p = Polynomial::var(2, 0) * Polynomial::var(2, 1);
        let s_plus_t = Polynomial::var(2, 0) + Polynomial::var(2, 1);
        let s_minus_t = Polynomial::var(2, 0) - Polynomial::var(2, 1);
        let c = p.compose(&[s_plus_t, s_minus_t]);
        assert!((c.eval(&[3.0, 2.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn affine_substitution_rescales_domain() {
        // p(x) = x on [0, 2] becomes 1 + y on y in [-1, 1]
        let p = Polynomial::var(1, 0);
        let q = p.affine_substitution(&[1.0], &[1.0]);
        assert!((q.eval(&[-1.0]) - 0.0).abs() < 1e-12);
        assert!((q.eval(&[1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extend_and_shrink_vars() {
        let p = Polynomial::var(1, 0);
        let e = p.extend_vars(3);
        assert_eq!(e.nvars(), 3);
        assert_eq!(e.eval(&[2.0, 9.0, -9.0]), 2.0);
        let s = e.shrink_vars(1);
        assert_eq!(s, p);
    }

    #[test]
    #[should_panic(expected = "dropped variable occurs")]
    fn shrink_vars_rejects_used_variable() {
        let p = Polynomial::var(2, 1);
        let _ = p.shrink_vars(1);
    }

    #[test]
    fn display_nonempty() {
        let p = p_xy();
        let s = format!("{p}");
        assert!(s.contains("x0"));
        assert_eq!(format!("{}", Polynomial::zero(1)), "0");
    }

    // --- packed-representation specifics -------------------------------

    #[test]
    fn iteration_order_is_lexicographic() {
        // The packed key order must reproduce the old BTreeMap<Vec<u32>, _>
        // iteration order (lexicographic on exponent vectors).
        let p = Polynomial::from_terms(
            3,
            vec![
                (vec![2, 0, 0], 1.0),
                (vec![0, 0, 1], 2.0),
                (vec![1, 1, 0], 3.0),
                (vec![0, 2, 0], 4.0),
                (vec![0, 0, 0], 5.0),
            ],
        );
        let order: Vec<Vec<u32>> = p.iter().map(|(e, _)| e.to_vec()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        assert_eq!(order[0], vec![0, 0, 0]);
        assert_eq!(order.last().unwrap(), &vec![2, 0, 0]);
    }

    #[test]
    fn many_variables_fall_back_to_boxed() {
        // 12 variables exceed the packed limit; everything must still work.
        let n = 12;
        let p = Polynomial::var(n, 0) * Polynomial::var(n, 11) + Polynomial::constant(n, 1.0);
        assert_eq!(p.nvars(), n);
        assert_eq!(p.num_terms(), 2);
        let mut x = vec![0.0; n];
        x[0] = 3.0;
        x[11] = 2.0;
        assert_eq!(p.eval(&x), 7.0);
        let d = p.partial_derivative(0);
        assert_eq!(d.eval(&x), 2.0);
    }

    #[test]
    fn high_degree_mul_falls_back_to_boxed() {
        // x^200 * x^200 = x^400 overflows the one-byte exponent; the product
        // must transparently switch representation and stay correct.
        let x200 = Polynomial::monomial(1, vec![200], 1.0);
        let p = x200.clone() * x200;
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.coefficient(&[400]), 1.0);
        assert_eq!(p.degree(), 400);
        // And mixed-representation addition still merges.
        let q = p.clone() + Polynomial::constant(1, 1.0);
        assert_eq!(q.num_terms(), 2);
        assert_eq!(q.constant_term(), 1.0);
    }

    #[test]
    fn packed_and_boxed_compare_equal() {
        // The same polynomial reached through the packed path and through a
        // boxed detour must be equal.
        let packed = Polynomial::var(2, 0) * Polynomial::var(2, 1);
        let via_boxed = packed.extend_vars(2); // no-op relabeling
        assert_eq!(packed, via_boxed);
        let boxed_poly =
            Polynomial::var(9, 0).shrink_vars(2) * Polynomial::var(2, 1).extend_vars(2);
        assert_eq!(packed, boxed_poly);
    }

    #[test]
    fn antiderivative_at_exponent_cap_falls_back() {
        let p = Polynomial::monomial(1, vec![255], 2.0);
        let a = p.antiderivative(0);
        assert_eq!(a.degree(), 256);
        assert!((a.coefficient(&[256]) - 2.0 / 256.0).abs() < 1e-15);
        // Round-trips through the derivative.
        let back = a.partial_derivative(0);
        assert_eq!(back.coefficient(&[255]), 2.0);
    }
}
