//! Reusable scratch buffers for allocation-free polynomial kernels.
//!
//! The destination-passing operations on [`crate::Polynomial`]
//! (`add_assign_ref`, `add_scaled_assign`, `mul_into`,
//! `mul_truncated_into`) stage their intermediate term lists in a
//! [`PolyWorkspace`] instead of allocating fresh `Vec`s per call. A workspace
//! is plain scratch memory: it carries no results between calls, only
//! capacity, so one workspace threaded through a flowpipe step or an
//! NN-abstraction layer turns the per-term-vector allocations of the
//! functional ops into O(1) amortized allocations per operation.

/// Scratch buffers for packed-representation polynomial kernels.
///
/// Holds the unsorted pair-product buffer and the merge output buffer the
/// in-place kernels stage their work in. Buffers grow to the high-water mark
/// of the operations performed through them and are then reused.
#[derive(Debug, Default)]
pub struct PolyWorkspace {
    /// Unsorted `(key, coefficient)` products of a multiplication.
    pub(crate) pairs: Vec<(u64, f64)>,
    /// Merge / normalization output, swapped into the destination.
    pub(crate) merge: Vec<(u64, f64)>,
}

impl PolyWorkspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}
