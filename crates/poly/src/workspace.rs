//! Reusable scratch buffers for allocation-free polynomial kernels.
//!
//! The destination-passing operations on [`crate::Polynomial`]
//! (`add_assign_ref`, `add_scaled_assign`, `mul_into`,
//! `mul_truncated_into`, `eval_interval_ws`) stage their intermediate term
//! lists in a [`PolyWorkspace`] instead of allocating fresh `Vec`s per call.
//! A workspace is plain scratch memory plus a pure memo table: it carries no
//! *semantic* state between calls — the monomial-range memo stores exactly
//! the values the direct computation produces, so warm and cold calls are
//! bit-identical — only capacity and cached pure results, turning the
//! per-term-vector allocations and repeated interval power products of the
//! functional ops into O(1) amortized work per operation.

use crate::polynomial::{packed_mono_range, PackedTerms};
use dwv_interval::Interval;

/// Hard cap on memoized monomial ranges; the table is cleared (not grown)
/// beyond this, bounding workspace memory under adversarial term diversity.
const MONO_CACHE_CAP: usize = 8192;

/// Scratch buffers for packed-representation polynomial kernels.
///
/// Holds the structure-of-arrays staging buffer of a multiplication, its
/// key-sort permutation, the merge output buffer the in-place kernels swap
/// into the destination, and the domain-keyed monomial-range memo serving
/// `eval_interval_ws` / `mul_truncated_into`. Buffers grow to the high-water
/// mark of the operations performed through them and are then reused.
#[derive(Debug, Default)]
pub struct PolyWorkspace {
    /// Raw pair products of a multiplication (structure-of-arrays).
    pub(crate) stage: PackedTerms,
    /// Key-sorted permutation of `stage` (index tie-break).
    pub(crate) order: Vec<u32>,
    /// Radix-sort ping-pong buffer for the permutation.
    pub(crate) order_scratch: Vec<u32>,
    /// Per-term total degrees of the rhs, for degree-filtered staging.
    pub(crate) bdeg: Vec<u32>,
    /// Merge / normalization output, swapped into the destination.
    pub(crate) merge: PackedTerms,
    /// Domain-keyed memo of monomial interval power products.
    pub(crate) powers: DomainPowers,
}

impl PolyWorkspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Memo table for monomial interval power products over one domain.
///
/// `mono(key, domain)` is a pure function of the packed key and the domain's
/// endpoint bits (see [`packed_mono_range`]); this table caches it for the
/// most recent domain. The cached value *is* the directly computed value —
/// the table only changes how often it is recomputed, never what it is — so
/// every caller is bit-identical with and without the cache. Switching
/// domains (compared by endpoint bit patterns, so `-0.0 ≠ +0.0` and any NaN
/// mismatches conservatively) clears the table.
#[derive(Debug, Default)]
pub(crate) struct DomainPowers {
    /// The domain the memo is valid for, as endpoint bit patterns.
    dom: Vec<(u64, u64)>,
    /// Sorted `(key, mono-range)` entries for binary search.
    mono: Vec<(u64, Interval)>,
}

impl DomainPowers {
    /// Points the memo at `domain`, clearing it when the domain's endpoint
    /// bits differ from the cached one.
    pub(crate) fn sync(&mut self, domain: &[Interval]) {
        let same = self.dom.len() == domain.len()
            && self
                .dom
                .iter()
                .zip(domain)
                .all(|(&(lo, hi), iv)| lo == iv.lo().to_bits() && hi == iv.hi().to_bits());
        if !same {
            self.dom.clear();
            self.dom.extend(
                domain
                    .iter()
                    .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits())),
            );
            self.mono.clear();
        }
    }

    /// The monomial power product of `key` over `domain` (`None` for the
    /// constant monomial), served from the memo when present. `sync` must
    /// have been called with this domain first.
    pub(crate) fn mono(&mut self, key: u64, domain: &[Interval]) -> Option<Interval> {
        if key == 0 {
            return None;
        }
        match self.mono.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => Some(self.mono[i].1), // dwv-lint: allow(panic-freedom#index) -- index produced by binary_search on the same vec
            Err(i) => {
                let m = packed_mono_range(key, domain)?;
                if self.mono.len() >= MONO_CACHE_CAP {
                    // Degenerate diversity: drop the table rather than grow
                    // without bound. Correctness is unaffected (pure memo).
                    self.mono.clear();
                    self.mono.push((key, m));
                } else {
                    self.mono.insert(i, (key, m));
                }
                Some(m)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_powers_memo_is_transparent() {
        let dom = [Interval::new(-1.0, 1.0), Interval::new(0.0, 0.5)];
        let mut dp = DomainPowers::default();
        dp.sync(&dom);
        let key = (2u64 << 56) | (1 << 48); // x0^2 · x1
        let direct = packed_mono_range(key, &dom).unwrap();
        let cold = dp.mono(key, &dom).unwrap();
        let warm = dp.mono(key, &dom).unwrap();
        assert_eq!(cold.lo().to_bits(), direct.lo().to_bits());
        assert_eq!(cold.hi().to_bits(), direct.hi().to_bits());
        assert_eq!(warm.lo().to_bits(), direct.lo().to_bits());
        assert_eq!(warm.hi().to_bits(), direct.hi().to_bits());
        // Constant monomial has no power product.
        assert!(dp.mono(0, &dom).is_none());
    }

    #[test]
    fn domain_powers_invalidates_on_domain_change() {
        let dom1 = [Interval::new(-1.0, 1.0)];
        let dom2 = [Interval::new(-2.0, 1.0)];
        let key = 3u64 << 56; // x0^3
        let mut dp = DomainPowers::default();
        dp.sync(&dom1);
        let m1 = dp.mono(key, &dom1).unwrap();
        dp.sync(&dom2);
        let m2 = dp.mono(key, &dom2).unwrap();
        let d1 = packed_mono_range(key, &dom1).unwrap();
        let d2 = packed_mono_range(key, &dom2).unwrap();
        assert_eq!(m1.lo().to_bits(), d1.lo().to_bits());
        assert_eq!(m2.lo().to_bits(), d2.lo().to_bits());
        assert!(m1.lo().to_bits() != m2.lo().to_bits());
        // Syncing back re-derives the first domain's value.
        dp.sync(&dom1);
        let m1b = dp.mono(key, &dom1).unwrap();
        assert_eq!(m1b.hi().to_bits(), d1.hi().to_bits());
    }
}
