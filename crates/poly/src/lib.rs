//! Sparse multivariate polynomials and Bernstein forms.
//!
//! This crate is the symbolic substrate shared by the Taylor-model flowpipe
//! engine (`dwv-taylor`, the Flow\*/POLAR-style verifier) and the
//! Bernstein-fit neural-network abstraction (the ReachNN-style verifier):
//!
//! * [`Polynomial`] — sparse multivariate polynomials over `f64` with exact
//!   ring operations, evaluation (point and interval), differentiation,
//!   integration, composition, and degree splitting (the truncation primitive
//!   Taylor models are built on);
//! * [`bernstein`] — conversion of polynomials to Bernstein form for tight
//!   range enclosures, and Bernstein approximation of arbitrary functions
//!   (how ReachNN abstracts a neural-network controller);
//! * [`kernels`] — the designated SIMD zone: chunked coefficient kernels
//!   over the flat structure-of-arrays term storage, with an opt-in
//!   `core::arch` AVX2 path behind the `simd` feature that is bit-identical
//!   to the scalar chunked reference.
//!
//! `unsafe` is forbidden crate-wide except under the `simd` feature, where
//! the only `unsafe` code is the audited `core::arch` intrinsics in
//! [`kernels`].
//!
//! # Example
//!
//! ```
//! use dwv_poly::Polynomial;
//!
//! // p(x, y) = 1 + 2 x y - y^2
//! let x = Polynomial::var(2, 0);
//! let y = Polynomial::var(2, 1);
//! let p = Polynomial::constant(2, 1.0) + 2.0 * (x.clone() * y.clone()) - y.clone() * y;
//! assert_eq!(p.eval(&[1.0, 2.0]), 1.0 + 4.0 - 4.0);
//! assert_eq!(p.degree(), 2);
//! ```

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod bernstein;
// The audited exception to the crate-wide unsafe ban: `core::arch`
// intrinsics behind the `simd` feature, every site carrying a `SAFETY:`
// justification (enforced by dwv-lint R4).
#[cfg_attr(feature = "simd", allow(unsafe_code))]
pub mod kernels;
mod polynomial;
pub mod tables;
mod workspace;

pub use polynomial::{Exponents, Polynomial, TermIter, PACK_MAX_EXP, PACK_VARS};
pub use workspace::PolyWorkspace;
