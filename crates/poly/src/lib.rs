//! Sparse multivariate polynomials and Bernstein forms.
//!
//! This crate is the symbolic substrate shared by the Taylor-model flowpipe
//! engine (`dwv-taylor`, the Flow\*/POLAR-style verifier) and the
//! Bernstein-fit neural-network abstraction (the ReachNN-style verifier):
//!
//! * [`Polynomial`] — sparse multivariate polynomials over `f64` with exact
//!   ring operations, evaluation (point and interval), differentiation,
//!   integration, composition, and degree splitting (the truncation primitive
//!   Taylor models are built on);
//! * [`bernstein`] — conversion of polynomials to Bernstein form for tight
//!   range enclosures, and Bernstein approximation of arbitrary functions
//!   (how ReachNN abstracts a neural-network controller).
//!
//! # Example
//!
//! ```
//! use dwv_poly::Polynomial;
//!
//! // p(x, y) = 1 + 2 x y - y^2
//! let x = Polynomial::var(2, 0);
//! let y = Polynomial::var(2, 1);
//! let p = Polynomial::constant(2, 1.0) + 2.0 * (x.clone() * y.clone()) - y.clone() * y;
//! assert_eq!(p.eval(&[1.0, 2.0]), 1.0 + 4.0 - 4.0);
//! assert_eq!(p.degree(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod bernstein;
mod polynomial;
pub mod tables;
mod workspace;

pub use polynomial::{Exponents, Polynomial, TermIter, PACK_MAX_EXP, PACK_VARS};
pub use workspace::PolyWorkspace;
