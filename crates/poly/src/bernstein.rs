//! Bernstein forms: tight polynomial range enclosures and Bernstein
// dwv-lint: allow-file(panic-freedom#index) -- tensor offsets derive from counts/strides computed in-function
//! approximation of arbitrary functions.
//!
//! Two uses in the reproduction:
//!
//! * [`range_enclosure`] — the Bernstein coefficients of a polynomial over a
//!   box bound its range (the classical Bernstein enclosure property). This
//!   is the "tight" alternative to naive interval evaluation and one of the
//!   tightness knobs benchmarked for the paper's §4 discussion.
//! * [`approximate`] — degree-`d` Bernstein approximation `B_d(f)` of an
//!   arbitrary continuous function on a box — how the ReachNN verifier
//!   abstracts a neural-network controller (paper §3.1).

use crate::kernels;
use crate::Polynomial;
use dwv_interval::{Interval, IntervalBox};
// dwv-lint: allow(determinism) -- content-keyed lookup-only cache; iteration order is never observed
use std::collections::HashMap;

/// Binomial coefficient `C(n, k)` as `f64`.
///
/// Exact for the small degrees used by Bernstein forms (n ≤ 64 stays within
/// `f64` integer precision). Backed by the memoized Pascal triangle in
/// [`crate::tables`]; kept here as a re-export for existing callers.
#[must_use]
pub fn binomial(n: u32, k: u32) -> f64 {
    crate::tables::binomial(n, k) // dwv-lint: allow(float-hygiene#taint) -- Pascal-triangle additions are exact in f64 up to the packed degree cap; no rounding occurs
}

/// The univariate Bernstein basis polynomial `B_{k,d}(t) = C(d,k) t^k (1-t)^{d-k}`
/// expanded in the power basis (1 variable).
#[must_use]
pub fn basis_polynomial(d: u32, k: u32) -> Polynomial {
    assert!(k <= d, "basis index exceeds degree");
    let mut p = Polynomial::zero(1);
    let c_dk = binomial(d, k); // dwv-lint: allow(float-hygiene#taint) -- Pascal-triangle additions are exact in f64 up to the packed degree cap; no rounding occurs
    for j in 0..=(d - k) {
        let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
        // dwv-lint: allow(float-hygiene) -- exact small-integer binomial products (well under 2^53)
        let coeff = c_dk * binomial(d - k, j) * sign;
        p += Polynomial::monomial(1, vec![k + j], coeff);
    }
    p
}

/// The Bernstein sample nodes `(k_1/d_1, …, k_n/d_n)` of a box, in the same
/// mixed-radix order as the coefficient tensor.
#[must_use]
pub fn nodes(degrees: &[u32], domain: &IntervalBox) -> Vec<Vec<f64>> {
    assert_eq!(degrees.len(), domain.dim(), "degree/domain length mismatch");
    let counts: Vec<usize> = degrees.iter().map(|&d| d as usize + 1).collect();
    let total: usize = counts.iter().product();
    let mut idx = vec![0usize; degrees.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let p: Vec<f64> = idx
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let iv = domain.interval(i);
                if degrees[i] == 0 {
                    iv.mid()
                } else {
                    // dwv-lint: allow(float-hygiene) -- sample-node placement; approximation error is bounded downstream
                    iv.lo() + iv.width() * k as f64 / degrees[i] as f64
                }
            })
            .collect();
        out.push(p);
        for d in (0..idx.len()).rev() {
            idx[d] += 1;
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

/// Degree-`degrees` Bernstein approximation of `f` over `domain`, returned as
/// a polynomial *in the original variables*.
///
/// The classical operator `B_d(f)(x) = Σ_k f(node_k) Π_i B_{k_i, d_i}(t_i)`
/// with `t = (x − lo) / width`. The approximation error is `O(ω(f, 1/√d))`
/// (modulus of continuity); the verifier layer bounds it conservatively by
/// dense sampling plus a Lipschitz inflation.
///
/// # Panics
///
/// Panics if the degree vector length does not match the domain dimension or
/// the domain is unbounded / zero-width in some dimension.
#[must_use]
pub fn approximate<F>(f: F, degrees: &[u32], domain: &IntervalBox) -> Polynomial
where
    F: Fn(&[f64]) -> f64,
{
    assert_eq!(degrees.len(), domain.dim(), "degree/domain length mismatch");
    assert!(domain.is_finite(), "Bernstein domain must be bounded");
    let n = domain.dim();
    // Build the approximation in normalized coordinates t ∈ [0,1]^n first.
    let mut acc = Polynomial::zero(n);
    let counts: Vec<usize> = degrees.iter().map(|&d| d as usize + 1).collect();
    let total: usize = counts.iter().product();
    let mut idx = vec![0usize; n];
    // Univariate bases per dimension, memoized process-wide.
    let bases: Vec<_> = degrees
        .iter()
        .map(|&d| crate::tables::basis_polynomials(d))
        .collect();
    let node_list = nodes(degrees, domain);
    for node in node_list.iter().take(total) {
        let fv = f(node);
        if fv != 0.0 {
            // Tensor-product basis for this index.
            let mut term = Polynomial::constant(n, fv);
            for (dim, &k) in idx.iter().enumerate() {
                // Lift the univariate basis in t_dim to n variables.
                let uni = &bases[dim][k];
                let mut lifted = Polynomial::zero(n);
                for (exps, c) in uni.iter() {
                    let mut e = vec![0u32; n];
                    e[dim] = exps[0];
                    lifted += Polynomial::monomial(n, e, c);
                }
                term = term * lifted;
            }
            acc += term;
        }
        for d in (0..n).rev() {
            idx[d] += 1;
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    // Substitute t_i = (x_i − lo_i) / w_i to express in original coordinates.
    let a: Vec<f64> = (0..n)
        .map(|i| {
            let iv = domain.interval(i);
            assert!(
                iv.width() > 0.0,
                "Bernstein domain must have positive widths"
            );
            // dwv-lint: allow(float-hygiene) -- approximation operator, error bounded by sampling + Lipschitz inflation
            -iv.lo() / iv.width()
        })
        .collect();
    // dwv-lint: allow(float-hygiene) -- approximation operator, error bounded by sampling + Lipschitz inflation
    let b: Vec<f64> = (0..n).map(|i| 1.0 / domain.interval(i).width()).collect();
    acc.affine_substitution(&a, &b)
}

/// Bernstein-form range enclosure of a polynomial over a box.
///
/// Converts the polynomial to Bernstein coefficients over the box; the min
/// and max coefficient bound the range. A small relative inflation (1e-9 of
/// the coefficient magnitude) absorbs rounding in the basis conversion so the
/// result remains a *conservative* enclosure for the magnitudes that occur in
/// the benchmark systems.
///
/// # Panics
///
/// Panics if the domain is unbounded or its dimension mismatches.
#[must_use]
pub fn range_enclosure(p: &Polynomial, domain: &IntervalBox) -> Interval {
    assert_eq!(p.nvars(), domain.dim(), "domain dimension mismatch");
    assert!(domain.is_finite(), "Bernstein domain must be bounded");
    if p.is_zero() {
        return Interval::ZERO;
    }
    let n = p.nvars();
    // Re-express over [0,1]^n: x_i = lo_i + w_i t_i.
    let lo: Vec<f64> = (0..n).map(|i| domain.interval(i).lo()).collect();
    let w: Vec<f64> = (0..n).map(|i| domain.interval(i).width()).collect();
    let q = p.affine_substitution(&lo, &w);
    // Per-dimension degrees of q.
    let mut degs = vec![0u32; n];
    for (exps, _) in q.iter() {
        for (i, &e) in exps.iter().enumerate() {
            degs[i] = degs[i].max(e);
        }
    }
    // Dense power-basis coefficient tensor a[j].
    let counts: Vec<usize> = degs.iter().map(|&d| d as usize + 1).collect();
    let total: usize = counts.iter().product();
    let stride = strides(&counts);
    let mut a = vec![0.0f64; total];
    for (exps, c) in q.iter() {
        let mut off = 0usize;
        for (i, &e) in exps.iter().enumerate() {
            off += e as usize * stride[i];
        }
        // dwv-lint: allow(float-hygiene) -- conversion rounding absorbed by the relative pad below
        a[off] += c;
    }
    // b[k] = Σ_{j ≤ k} Π_i C(k_i, j_i)/C(d_i, j_i) · a[j], computed one
    // dimension at a time (tensor contraction). The tensor is a sequence of
    // `[counts[dim]][stride[dim]]` blocks along `dim`; every output element
    // accumulates its `j` terms in ascending order with one multiply-add
    // (two roundings) each, so the strided `axpy` form below is bit-identical
    // to a per-element gather loop — it only changes the memory access from
    // gathers to contiguous runs the kernels vectorize.
    let mut b = a;
    let mut next = vec![0.0f64; total];
    for dim in 0..n {
        let ratios = crate::tables::bernstein_ratios(degs[dim]); // dwv-lint: allow(float-hygiene#taint) -- elevation ratios k/(d+1) round once at table build; the enclosure pads for it downstream
        let s = stride[dim];
        let cnt = counts[dim];
        next.fill(0.0);
        if s == 1 {
            // Innermost dimension: rows are contiguous; a sequential dot per
            // output beats length-1 axpy calls.
            for ob in (0..total).step_by(cnt) {
                for (k, row) in ratios.iter().enumerate().take(cnt) {
                    let mut acc = 0.0;
                    for (j, &ratio) in row.iter().enumerate() {
                        // dwv-lint: allow(float-hygiene) -- conversion rounding absorbed by the relative pad below
                        acc += ratio * b[ob + j];
                    }
                    next[ob + k] = acc;
                }
            }
        } else {
            for ob in (0..total).step_by(cnt * s) {
                for (k, row) in ratios.iter().enumerate().take(cnt) {
                    // dwv-lint: allow(float-hygiene) -- usize tensor-offset arithmetic
                    let dst_at = ob + k * s;
                    for (j, &ratio) in row.iter().enumerate() {
                        let src_at = ob + j * s;
                        kernels::axpy(&mut next[dst_at..dst_at + s], ratio, &b[src_at..src_at + s]);
                    }
                }
            }
        }
        std::mem::swap(&mut b, &mut next);
    }
    let mut lo_c = f64::INFINITY;
    let mut hi_c = f64::NEG_INFINITY;
    for &c in &b {
        lo_c = lo_c.min(c);
        hi_c = hi_c.max(c);
    }
    // The pad dwarfs double-rounding by ~7 decimal orders, so nearest-mode
    // rounding of the pad arithmetic itself cannot un-cover the true range.
    // dwv-lint: allow(float-hygiene) -- outward pad, magnitude ~1e7 ulps
    let pad = 1e-9 * (lo_c.abs().max(hi_c.abs()).max(1.0));
    // dwv-lint: allow(float-hygiene) -- outward pad, magnitude ~1e7 ulps
    Interval::new(lo_c - pad, hi_c + pad)
}

/// Entries kept in a [`RangeCache`] before it is wholesale cleared; bounds
/// memory for pathological call sites while keeping the steady-state working
/// set (a handful of polynomials per Picard loop / NN layer) fully cached.
const RANGE_CACHE_CAP: usize = 4096;

/// Exact content key for a cached range enclosure: packed monomial keys with
/// coefficient bit patterns, plus domain endpoint bit patterns.
///
/// Keying on full content (not a hash digest) means a cache hit is a true
/// input match, so the cached interval is *the* interval `range_enclosure`
/// would return — bit-identical and therefore exactly as sound.
#[derive(Debug, PartialEq, Eq, Hash)]
struct RangeKey {
    terms: Vec<(u64, u64)>,
    domain: Vec<(u64, u64)>,
}

/// A per-call-site memo of [`range_enclosure`] results.
///
/// The flowpipe Picard/validation loop and the NN-abstraction layer sweep
/// repeatedly enclose the *same* polynomial over the *same* domain (trial
/// remainders perturb only the interval part of a Taylor model, never its
/// polynomial part). Each call site owns one cache and reuses it across
/// iterations; entries never leave the call site, so domains and coefficient
/// distributions stay homogeneous and hit rates high.
#[derive(Debug, Default)]
pub struct RangeCache {
    // dwv-lint: allow(determinism) -- content-keyed lookup-only cache; iteration order is never observed
    map: HashMap<RangeKey, Interval>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Lifetime counters of a [`RangeCache`] (or aggregated over several), as
/// returned by [`RangeCache::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RangeCacheStats {
    /// Enclosure requests answered from the cache.
    pub hits: u64,
    /// Enclosure requests that had to compute a fresh Bernstein expansion
    /// (uncacheable boxed-representation polynomials count here too).
    pub misses: u64,
    /// Entries dropped by capacity-triggered wholesale clears.
    pub evictions: u64,
}

impl RangeCacheStats {
    /// Fraction of requests served from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        // dwv-lint: allow(float-hygiene) -- u64 counter sum
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            // dwv-lint: allow(float-hygiene) -- diagnostic ratio, not a verified bound
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise accumulation, for merging per-call-site caches.
    pub fn merge(&mut self, other: &RangeCacheStats) {
        // dwv-lint: allow(float-hygiene) -- u64 counters
        self.hits += other.hits;
        // dwv-lint: allow(float-hygiene) -- u64 counters
        self.misses += other.misses;
        // dwv-lint: allow(float-hygiene) -- u64 counters
        self.evictions += other.evictions;
    }
}

impl RangeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// [`range_enclosure`] of `p` over the box with the given intervals,
    /// served from the cache when the exact polynomial/domain pair has been
    /// enclosed before. Boxed-representation polynomials (beyond the packed
    /// key limits) bypass the cache.
    ///
    /// # Panics
    ///
    /// Panics if the domain is unbounded or its dimension mismatches.
    pub fn range_enclosure(&mut self, p: &Polynomial, domain: &[Interval]) -> Interval {
        let Some((keys, coeffs)) = p.packed_terms() else {
            self.misses += 1;
            return range_enclosure(p, &IntervalBox::new(domain.to_vec()));
        };
        let key = RangeKey {
            terms: keys
                .iter()
                .zip(coeffs)
                .map(|(&k, &c)| (k, c.to_bits()))
                .collect(),
            domain: domain
                .iter()
                .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
                .collect(),
        };
        if let Some(iv) = self.map.get(&key) {
            self.hits += 1;
            return *iv;
        }
        self.misses += 1;
        let iv = range_enclosure(p, &IntervalBox::new(domain.to_vec()));
        if self.map.len() >= RANGE_CACHE_CAP {
            self.evictions += self.map.len() as u64;
            if dwv_obs::enabled() {
                dwv_obs::event(
                    "poly.range_cache.clear",
                    &[("dropped", self.map.len() as f64)],
                );
            }
            self.map.clear();
        }
        self.map.insert(key, iv);
        iv
    }

    /// Lifetime hit/miss/eviction counters of this cache.
    #[must_use]
    pub fn stats(&self) -> RangeCacheStats {
        RangeCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Number of cached enclosures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn strides(counts: &[usize]) -> Vec<usize> {
    // Row-major with the first dimension slowest would complicate the loop;
    // use dimension i stride = product of counts after i.
    let n = counts.len();
    let mut s = vec![1usize; n];
    for i in (0..n.saturating_sub(1)).rev() {
        s[i] = s[i + 1] * counts[i + 1];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(3, 7), 0.0);
        assert_eq!(binomial(20, 10), 184_756.0);
    }

    #[test]
    fn basis_partition_of_unity() {
        // Σ_k B_{k,d}(t) = 1 for all t.
        for d in [1u32, 3, 5] {
            let sum = (0..=d)
                .map(|k| basis_polynomial(d, k))
                .fold(Polynomial::zero(1), |acc, p| acc + p);
            for t in [0.0, 0.3, 0.5, 1.0] {
                assert!((sum.eval(&[t]) - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn basis_is_nonnegative_on_unit() {
        let p = basis_polynomial(4, 2);
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            assert!(p.eval(&[t]) >= -1e-12);
        }
    }

    #[test]
    fn range_enclosure_contains_samples_and_is_tighter() {
        // p(x) = x^2 - x on [0, 1]: true range [-0.25, 0].
        let x = Polynomial::var(1, 0);
        let p = x.clone() * x.clone() - x;
        let dom = IntervalBox::from_bounds(&[(0.0, 1.0)]);
        let enc = range_enclosure(&p, &dom);
        assert!(enc.contains_value(-0.25));
        assert!(enc.contains_value(0.0));
        // Interval eval gives [-1, 1]; Bernstein must be tighter.
        let naive = p.eval_interval(dom.intervals());
        assert!(enc.width() < naive.width());
        // Bernstein coefficients of x²−x on [0,1] are {0, −1/2, 0}.
        assert!(enc.lo() >= -0.55 && enc.hi() <= 0.05);
    }

    #[test]
    fn range_enclosure_2d() {
        // p(x,y) = x*y on [-1,1]^2: range [-1, 1].
        let p = Polynomial::var(2, 0) * Polynomial::var(2, 1);
        let dom = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let enc = range_enclosure(&p, &dom);
        assert!(enc.contains(&dwv_interval::Interval::new(-1.0, 1.0)));
        assert!(enc.width() < 4.5);
    }

    #[test]
    fn range_enclosure_is_exact_for_linear() {
        let p = Polynomial::var(2, 0).scale(2.0) + Polynomial::var(2, 1).scale(-1.0);
        let dom = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 2.0)]);
        let enc = range_enclosure(&p, &dom);
        assert!((enc.lo() - -2.0).abs() < 1e-6);
        assert!((enc.hi() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn approximate_reproduces_polynomials_of_matching_degree() {
        // Bernstein of degree d reproduces affine functions exactly.
        let f = |x: &[f64]| 2.0 * x[0] - x[1] + 0.5;
        let dom = IntervalBox::from_bounds(&[(-1.0, 2.0), (0.0, 1.0)]);
        let b = approximate(f, &[1, 1], &dom);
        for p in dom.grid(5) {
            assert!((b.eval(&p) - f(&p)).abs() < 1e-9, "mismatch at {p:?}");
        }
    }

    #[test]
    fn approximate_converges_with_degree() {
        let f = |x: &[f64]| (x[0]).tanh();
        let dom = IntervalBox::from_bounds(&[(-1.0, 1.0)]);
        let err = |deg: u32| {
            let b = approximate(f, &[deg], &dom);
            dom.grid(41)
                .iter()
                .map(|p| (b.eval(p) - f(p)).abs())
                .fold(0.0f64, f64::max)
        };
        let e2 = err(2);
        let e8 = err(8);
        assert!(e8 < e2, "degree-8 error {e8} not below degree-2 error {e2}");
        assert!(e8 < 0.05);
    }

    #[test]
    fn range_cache_is_bit_identical_to_uncached() {
        let x = Polynomial::var(2, 0);
        let y = Polynomial::var(2, 1);
        let p = x.clone() * x.clone() + y.clone() * y - x.scale(3.0);
        let dom = [
            dwv_interval::Interval::new(-0.5, 0.5),
            dwv_interval::Interval::new(0.25, 0.75),
        ];
        let direct = range_enclosure(&p, &IntervalBox::new(dom.to_vec()));
        let mut cache = RangeCache::new();
        let miss = cache.range_enclosure(&p, &dom);
        assert_eq!(cache.len(), 1);
        let hit = cache.range_enclosure(&p, &dom);
        assert_eq!(cache.len(), 1);
        for iv in [miss, hit] {
            assert_eq!(iv.lo().to_bits(), direct.lo().to_bits());
            assert_eq!(iv.hi().to_bits(), direct.hi().to_bits());
        }
        // A different domain is a different key, not a stale hit.
        let dom2 = [
            dwv_interval::Interval::new(-0.5, 0.5),
            dwv_interval::Interval::new(0.25, 1.0),
        ];
        let other = cache.range_enclosure(&p, &dom2);
        assert_eq!(cache.len(), 2);
        let direct2 = range_enclosure(&p, &IntervalBox::new(dom2.to_vec()));
        assert_eq!(other.lo().to_bits(), direct2.lo().to_bits());
        assert_eq!(other.hi().to_bits(), direct2.hi().to_bits());
    }

    #[test]
    fn nodes_count_and_membership() {
        let dom = IntervalBox::from_bounds(&[(0.0, 1.0), (2.0, 4.0)]);
        let ns = nodes(&[2, 3], &dom);
        assert_eq!(ns.len(), 12);
        for p in &ns {
            assert!(dom.contains_point(p));
        }
        assert!(ns.contains(&vec![0.0, 2.0]));
        assert!(ns.contains(&vec![1.0, 4.0]));
    }
}
