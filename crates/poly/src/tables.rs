//! Memoized combinatorial tables for Bernstein-form conversions.
//!
//! Bernstein basis conversion and range enclosure evaluate `C(n, k)` inside
//! tensor-contraction inner loops; recomputing the multiplicative formula per
//! lookup dominated profiles of `range_enclosure` on the benchmark systems.
//! This module computes a Pascal triangle once per process ([`binomial`]) and
//! caches the per-degree conversion ratio matrices `C(k, j) / C(d, j)`
//! ([`bernstein_ratios`]) so repeated enclosures of same-degree polynomials
//! — the common case inside a flowpipe loop — reuse one allocation.

use crate::Polynomial;
// dwv-lint: allow-file(determinism) -- degree-keyed lookup-only memo tables; iteration order is never observed
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Largest `n` covered by the precomputed Pascal triangle. `C(64, 32)` is
/// ~1.8e18, still exactly representable; degrees in the reproduction stay far
/// below this.
const PASCAL_ROWS: usize = 65;

fn pascal() -> &'static Vec<Vec<f64>> {
    static TRIANGLE: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    TRIANGLE.get_or_init(|| {
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(PASCAL_ROWS);
        rows.push(vec![1.0]);
        for n in 1..PASCAL_ROWS {
            // dwv-lint: allow(panic-freedom#index) -- row n-1 pushed on the previous iteration
            let prev = &rows[n - 1];
            let mut row = vec![1.0; n + 1];
            for k in 1..n {
                // dwv-lint: allow(panic-freedom#index) -- k < n bounds both rows by construction
                row[k] = prev[k - 1] + prev[k];
            }
            rows.push(row);
        }
        rows
    })
}

/// Binomial coefficient `C(n, k)` as `f64`.
///
/// Table lookup for `n < 65` (exact — within `f64` integer precision);
/// multiplicative fallback above, rounded to the nearest integer.
#[must_use]
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    if (n as usize) < PASCAL_ROWS {
        // dwv-lint: allow(panic-freedom#index) -- n < PASCAL_ROWS checked above, k <= n checked above
        return pascal()[n as usize][k as usize];
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * f64::from(n - i) / f64::from(i + 1);
    }
    acc.round()
}

/// The Bernstein basis-conversion ratio matrix for degree `d`:
/// `ratios[k][j] = C(k, j) / C(d, j)` for `0 ≤ j ≤ k ≤ d`.
///
/// These are the weights of the power-basis → Bernstein-coefficient
/// contraction `b_k = Σ_{j ≤ k} C(k,j)/C(d,j) · a_j` applied per dimension.
/// Matrices are cached per degree for the lifetime of the process.
#[must_use]
pub fn bernstein_ratios(d: u32) -> Arc<Vec<Vec<f64>>> {
    type RatioCache = OnceLock<Mutex<HashMap<u32, Arc<Vec<Vec<f64>>>>>>;
    static CACHE: RatioCache = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // A poisoned lock only means another thread panicked *between* map
    // operations; entries are inserted fully constructed, so the map is
    // always valid and recovery is sound.
    let mut guard = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(guard.entry(d).or_insert_with(|| {
        Arc::new(
            (0..=d)
                .map(|k| (0..=k).map(|j| binomial(k, j) / binomial(d, j)).collect())
                .collect(),
        )
    }))
}

/// The full degree-`d` univariate Bernstein basis `[B_{0,d}, …, B_{d,d}]`
/// expanded in the power basis, cached per degree for the lifetime of the
/// process.
///
/// [`crate::bernstein::approximate`] previously re-expanded every basis
/// polynomial per call; a Bernstein NN abstraction re-fits the same degrees
/// for every output and every verification sweep cell, so the expansion is
/// pure recomputation.
#[must_use]
pub fn basis_polynomials(d: u32) -> Arc<Vec<Polynomial>> {
    static CACHE: OnceLock<Mutex<HashMap<u32, Arc<Vec<Polynomial>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // Poison recovery is sound: entries are inserted fully constructed.
    let mut guard = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(guard.entry(d).or_insert_with(|| {
        Arc::new(
            (0..=d)
                .map(|k| crate::bernstein::basis_polynomial(d, k))
                .collect(),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_multiplicative_formula() {
        for n in 0..30u32 {
            for k in 0..=n {
                let k_small = k.min(n - k);
                let mut acc = 1.0;
                for i in 0..k_small {
                    acc = acc * f64::from(n - i) / f64::from(i + 1);
                }
                assert_eq!(binomial(n, k), acc.round(), "C({n},{k})");
            }
        }
    }

    #[test]
    fn out_of_range_is_zero() {
        assert_eq!(binomial(3, 7), 0.0);
        assert_eq!(binomial(0, 1), 0.0);
    }

    #[test]
    fn large_n_falls_back() {
        // C(70, 1) = 70 via the multiplicative path.
        assert_eq!(binomial(70, 1), 70.0);
        assert_eq!(binomial(70, 0), 1.0);
    }

    #[test]
    fn basis_polynomials_match_uncached_expansion() {
        let bases = basis_polynomials(3);
        assert_eq!(bases.len(), 4);
        for (k, b) in bases.iter().enumerate() {
            let fresh = crate::bernstein::basis_polynomial(3, k as u32);
            for t in [0.0, 0.25, 0.5, 1.0] {
                assert_eq!(b.eval(&[t]), fresh.eval(&[t]));
            }
        }
        // Cached: second call returns the same allocation.
        assert!(Arc::ptr_eq(&bases, &basis_polynomials(3)));
    }

    #[test]
    fn ratio_matrix_shape_and_values() {
        let r = bernstein_ratios(4);
        assert_eq!(r.len(), 5);
        for (k, row) in r.iter().enumerate() {
            assert_eq!(row.len(), k + 1);
        }
        // ratios[k][0] = 1 always; ratios[d][j] = C(d,j)/C(d,j) = 1.
        for k in 0..=4usize {
            assert_eq!(r[k][0], 1.0);
            assert_eq!(r[4][k], 1.0);
        }
        // ratios[2][1] = C(2,1)/C(4,1) = 2/4.
        assert_eq!(r[2][1], 0.5);
        // Cached: second call returns the same allocation.
        let r2 = bernstein_ratios(4);
        assert!(Arc::ptr_eq(&r, &r2));
    }
}
