//! Property-based tests for polynomial arithmetic and Bernstein forms.

use dwv_interval::{Interval, IntervalBox};
use dwv_poly::{bernstein, PolyWorkspace, Polynomial};
use proptest::prelude::*;

/// The exact bit content of a polynomial: terms in iteration order with
/// coefficient bit patterns. Two polynomials with equal `bits` are
/// indistinguishable to any downstream floating-point computation.
fn bits(p: &Polynomial) -> Vec<(Vec<u32>, u64)> {
    p.iter().map(|(e, c)| (e.to_vec(), c.to_bits())).collect()
}

fn interval_bits(iv: Interval) -> (u64, u64) {
    (iv.lo().to_bits(), iv.hi().to_bits())
}

/// A random polynomial in 2 variables with bounded degree and coefficients.
fn poly2() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec((-5.0..5.0f64, 0u32..3, 0u32..3), 1..6).prop_map(|terms| {
        Polynomial::from_terms(
            2,
            terms
                .into_iter()
                .map(|(c, e0, e1)| (vec![e0, e1], c))
                .collect::<Vec<_>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_is_pointwise(p in poly2(), q in poly2(), x in -2.0..2.0f64, y in -2.0..2.0f64) {
        let s = p.clone() + q.clone();
        prop_assert!((s.eval(&[x, y]) - (p.eval(&[x, y]) + q.eval(&[x, y]))).abs() < 1e-8);
    }

    #[test]
    fn multiplication_is_pointwise(p in poly2(), q in poly2(), x in -2.0..2.0f64, y in -2.0..2.0f64) {
        let m = p.clone() * q.clone();
        let expect = p.eval(&[x, y]) * q.eval(&[x, y]);
        prop_assert!((m.eval(&[x, y]) - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn multiplication_commutes(p in poly2(), q in poly2()) {
        // Ring commutativity on the flat-term representation: the products
        // contain identical terms; only the floating-point summation order
        // of colliding cross-terms may differ, so compare coefficients up to
        // a tight relative tolerance.
        let ab = p.clone() * q.clone();
        let ba = q * p;
        let scale = ab.coeff_l1_norm().max(1.0);
        let diff = (ab - ba).coeff_l1_norm();
        prop_assert!(diff <= 1e-12 * scale, "a·b differs from b·a by {diff}");
    }

    #[test]
    fn compose_commutes_with_eval(
        p in poly2(), r in poly2(), s in poly2(),
        x in -1.0..1.0f64, y in -1.0..1.0f64,
    ) {
        // eval(compose(p; r, s)) == p(eval(r), eval(s)) — composition in the
        // polynomial ring followed by evaluation equals evaluation followed
        // by function composition.
        let c = p.compose(&[r.clone(), s.clone()]);
        let (rv, sv) = (r.eval(&[x, y]), s.eval(&[x, y]));
        let expect = p.eval(&[rv, sv]);
        // Conservative rounding allowance scaled by intermediate magnitude.
        let m = (1.0 + rv.abs() + sv.abs()).powi(4) * p.coeff_l1_norm().max(1.0);
        prop_assert!(
            (c.eval(&[x, y]) - expect).abs() <= 1e-9 * m,
            "compose/eval mismatch: {} vs {expect}", c.eval(&[x, y])
        );
    }

    #[test]
    fn mul_degree_exact_on_monomials(e0 in 0u32..6, e1 in 0u32..6, f0 in 0u32..6, f1 in 0u32..6) {
        // Degree bookkeeping is exact when no cancellation can occur.
        let a = Polynomial::monomial(2, vec![e0, e1], 2.0);
        let b = Polynomial::monomial(2, vec![f0, f1], -3.0);
        let m = a * b;
        prop_assert_eq!(m.degree(), e0 + e1 + f0 + f1);
        prop_assert_eq!(m.coefficient(&[e0 + f0, e1 + f1]), -6.0);
    }

    #[test]
    fn sub_self_is_zero(p in poly2()) {
        prop_assert!((p.clone() - p).is_zero());
    }

    #[test]
    fn degree_subadditive_under_mul(p in poly2(), q in poly2()) {
        let m = p.clone() * q.clone();
        if !m.is_zero() {
            prop_assert!(m.degree() <= p.degree() + q.degree());
        }
    }

    #[test]
    fn derivative_of_antiderivative(p in poly2(), x in -2.0..2.0f64, y in -2.0..2.0f64) {
        let round = p.antiderivative(0).partial_derivative(0);
        prop_assert!((round.eval(&[x, y]) - p.eval(&[x, y])).abs() < 1e-8);
    }

    #[test]
    fn split_at_degree_is_partition(p in poly2(), d in 0u32..5) {
        let (low, high) = p.split_at_degree(d);
        let back = low.clone() + high.clone();
        prop_assert_eq!(back, p);
        for (e, _) in low.iter() {
            prop_assert!(e.iter().sum::<u32>() <= d);
        }
        for (e, _) in high.iter() {
            prop_assert!(e.iter().sum::<u32>() > d);
        }
    }

    #[test]
    fn interval_eval_encloses(p in poly2(), x in -1.0..1.0f64, y in -1.0..1.0f64) {
        let dom = [dwv_interval::Interval::new(-1.0, 1.0); 2];
        let enc = p.eval_interval(&dom);
        prop_assert!(enc.inflate(1e-9).contains_value(p.eval(&[x, y])));
    }

    #[test]
    fn bernstein_enclosure_contains_and_tighter(p in poly2(), x in -1.0..1.0f64, y in -1.0..1.0f64) {
        let b = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let enc = bernstein::range_enclosure(&p, &b);
        prop_assert!(enc.inflate(1e-6).contains_value(p.eval(&[x, y])));
        // Bounded looseness vs naive interval evaluation. (Bernstein is
        // usually tighter, but range-exact even powers in the naive
        // evaluator can win on monomials like c·x²y² — the enclosure is
        // still within a small constant factor.)
        let naive = p.eval_interval(b.intervals());
        prop_assert!(enc.width() <= naive.width() * 5.0 + 1e-6);
    }

    #[test]
    fn affine_substitution_is_composition(p in poly2(), a0 in -2.0..2.0f64, a1 in -2.0..2.0f64, b0 in 0.1..2.0f64, b1 in 0.1..2.0f64, x in -1.0..1.0f64, y in -1.0..1.0f64) {
        let q = p.affine_substitution(&[a0, a1], &[b0, b1]);
        let expect = p.eval(&[a0 + b0 * x, a1 + b1 * y]);
        prop_assert!((q.eval(&[x, y]) - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    // In-place kernels must be drop-in replacements for the functional ops:
    // not merely close, but bit-identical, so swapping them into the
    // verification loop cannot move a single enclosure bound.

    #[test]
    fn add_assign_ref_is_bit_identical(p in poly2(), q in poly2()) {
        let mut ws = PolyWorkspace::new();
        let mut a = p.clone();
        a.add_assign_ref(&q, &mut ws);
        prop_assert_eq!(bits(&a), bits(&(p + q)));
    }

    #[test]
    fn add_scaled_assign_is_bit_identical(p in poly2(), q in poly2(), s in -3.0..3.0f64) {
        let mut ws = PolyWorkspace::new();
        let mut a = p.clone();
        a.add_scaled_assign(&q, s, &mut ws);
        prop_assert_eq!(bits(&a), bits(&(p + q.scale(s))));
    }

    #[test]
    fn add_scaled_assign_by_minus_one_is_subtraction(p in poly2(), q in poly2()) {
        let mut ws = PolyWorkspace::new();
        let mut a = p.clone();
        a.add_scaled_assign(&q, -1.0, &mut ws);
        prop_assert_eq!(bits(&a), bits(&(p - q)));
    }

    #[test]
    fn scale_in_place_is_bit_identical(p in poly2(), s in -3.0..3.0f64) {
        let mut a = p.clone();
        a.scale_in_place(s);
        prop_assert_eq!(bits(&a), bits(&p.scale(s)));
    }

    #[test]
    fn mul_into_is_bit_identical(p in poly2(), q in poly2()) {
        let mut ws = PolyWorkspace::new();
        let mut out = Polynomial::zero(2);
        p.mul_into(&q, &mut out, &mut ws);
        prop_assert_eq!(bits(&out), bits(&(p * q)));
    }

    #[test]
    fn truncate_in_place_matches_split(p in poly2(), d in 0u32..5) {
        let dom = [Interval::new(-1.0, 1.0); 2];
        let (low, high) = p.split_at_degree(d);
        let mut a = p.clone();
        let overflow = a.truncate_in_place(d, &dom);
        prop_assert_eq!(bits(&a), bits(&low));
        match overflow {
            None => prop_assert!(high.is_zero()),
            Some(iv) => {
                prop_assert!(!high.is_zero());
                prop_assert_eq!(interval_bits(iv), interval_bits(high.eval_interval(&dom)));
            }
        }
    }

    #[test]
    fn mul_truncated_into_matches_full_product(p in poly2(), q in poly2(), d in 0u32..5) {
        let dom = [Interval::new(-1.0, 1.0); 2];
        let mut ws = PolyWorkspace::new();
        let mut kept = Polynomial::zero(2);
        let overflow = p.mul_truncated_into(&q, d, &dom, &mut kept, &mut ws);
        let (low, high) = (p * q).split_at_degree(d);
        prop_assert_eq!(bits(&kept), bits(&low));
        prop_assert_eq!(interval_bits(overflow), interval_bits(high.eval_interval(&dom)));
    }

    #[test]
    fn mul_dropping_matches_truncated_kept(p in poly2(), q in poly2(), d in 0u32..5) {
        // The degree-filtered staging path must keep the exact coefficient
        // stream of the accounting kernel (which filters after the merge).
        let dom = [Interval::new(-1.0, 1.0); 2];
        let mut ws = PolyWorkspace::new();
        let mut kept = Polynomial::zero(2);
        p.mul_truncated_into(&q, d, &dom, &mut kept, &mut ws);
        let mut dropped = Polynomial::zero(2);
        p.mul_dropping_into(&q, d, &mut dropped, &mut ws);
        prop_assert_eq!(bits(&kept), bits(&dropped));
    }

    #[test]
    fn bits_eq_matches_term_bits(p in poly2(), q in poly2(), s in -3.0..3.0f64) {
        prop_assert!(p.bits_eq(&p));
        prop_assert_eq!(p.bits_eq(&q), bits(&p) == bits(&q));
        // Scaling by anything but 1 perturbs some coefficient bit unless
        // both sides are zero.
        let ps = p.scale(s);
        prop_assert_eq!(p.bits_eq(&ps), bits(&p) == bits(&ps));
    }

    #[test]
    fn substitute_value_matches_monomial_accumulation(p in poly2(), var in 0usize..2, sel in 0u32..3, raw in -2.0..2.0f64) {
        // Exercise the exact pipeline substitutions (0 and 1) and general
        // values. Reference: the quadratic term-by-term accumulation the
        // Taylor-model layer used before the single-pass packed kernel.
        let value = match sel { 0 => 0.0, 1 => 1.0, _ => raw };
        let mut reference = Polynomial::zero(2);
        for (exps, c) in p.iter() {
            let mut e = exps.to_vec();
            let k = e[var];
            e[var] = 0;
            let coeff = if k == 0 || value == 1.0 { c } else { c * value.powi(k as i32) };
            reference += Polynomial::monomial(2, e, coeff);
        }
        prop_assert_eq!(bits(&p.substitute_value(var, value)), bits(&reference));
    }

    #[test]
    fn range_cache_is_bit_identical_and_sound(p in poly2(), x in -1.0..1.0f64, y in -1.0..1.0f64) {
        let b = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let uncached = bernstein::range_enclosure(&p, &b);
        let mut cache = bernstein::RangeCache::new();
        let miss = cache.range_enclosure(&p, b.intervals());
        let hit = cache.range_enclosure(&p, b.intervals());
        prop_assert_eq!(interval_bits(miss), interval_bits(uncached));
        prop_assert_eq!(interval_bits(hit), interval_bits(uncached));
        prop_assert!(hit.inflate(1e-6).contains_value(p.eval(&[x, y])));
    }

    #[test]
    fn bernstein_fit_reproduces_low_degree(p in poly2(), x in -0.9..0.9f64, y in -0.9..0.9f64) {
        // A degree-(3,3) Bernstein operator interpolates values at nodes but
        // only approximates; however fitting the polynomial itself with
        // matching degree via `approximate` must stay close on smooth
        // low-degree inputs.
        let b = IntervalBox::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let f = |v: &[f64]| p.eval(v);
        let fit = bernstein::approximate(f, &[4, 4], &b);
        let err = (fit.eval(&[x, y]) - p.eval(&[x, y])).abs();
        let scale = p.coeff_l1_norm().max(1.0);
        prop_assert!(err < 0.8 * scale, "err {err} too large (scale {scale})");
    }
}
