//! Critical-path extraction, including across worker-pool fan-outs.
//!
//! A span stream is a forest *per thread*: `parent_id` only links spans
//! on their opening thread. Work fanned out on a
//! [`dwv_core::WorkerPool`] shows up as root spans on worker threads,
//! which would orphan the hottest subtree from the path. *Adoption*
//! restores the logical tree: a root span is adopted by the smallest
//! enclosing span on another thread (the tightest interval that contains
//! it), which for `pool.map` is exactly the fan-out span that spawned the
//! work.

use crate::forest::SpanForest;
use crate::model::SpanRecord;

/// Containment slack (µs) for adoption: open stamps are estimated from
/// separate clock reads, so a worker span can appear to start a hair
/// before its logical parent.
pub const ADOPT_SLACK_US: f64 = 16.0;

/// Computes the adopter of every node: for roots, the smallest span on a
/// *different* thread whose interval contains them (within
/// [`ADOPT_SLACK_US`]); `None` for non-roots and true roots. The adopter
/// must be strictly larger (or same-sized with a smaller span id), which
/// rules out adoption cycles.
#[must_use]
pub fn adoption(spans: &[SpanRecord], forest: &SpanForest) -> Vec<Option<usize>> {
    let mut adopter = vec![None; spans.len()];
    for &r in forest.roots() {
        let Some(root) = spans.get(r) else { continue };
        let mut best: Option<(f64, u64, usize)> = None;
        for (j, s) in spans.iter().enumerate() {
            if s.tid == root.tid {
                continue;
            }
            let contains = s.start_us() <= root.start_us() + ADOPT_SLACK_US
                && root.end_us() <= s.end_us() + ADOPT_SLACK_US;
            let bigger =
                s.dur_us > root.dur_us || (s.dur_us == root.dur_us && s.span_id < root.span_id);
            if !(contains && bigger) {
                continue;
            }
            let key = (s.dur_us, s.span_id, j);
            let better = match &best {
                None => true,
                Some((d, id, _)) => s.dur_us < *d || (s.dur_us == *d && s.span_id < *id),
            };
            if better {
                best = Some(key);
            }
        }
        if let (Some((_, _, j)), Some(slot)) = (best, adopter.get_mut(r)) {
            *slot = Some(j);
        }
    }
    adopter
}

/// Extracts the critical path: starting from the longest true root
/// (no parent, no adopter), repeatedly descend into the longest child —
/// same-thread children and adopted worker roots alike. Ties break by
/// earliest open stamp, then smallest span id. Returns the span names
/// from root to leaf; empty for an empty trace.
#[must_use]
pub fn critical_path(spans: &[SpanRecord], forest: &SpanForest) -> Vec<String> {
    let adopter = adoption(spans, forest);
    // Children including adopted worker roots, re-sorted deterministically.
    let mut kids: Vec<Vec<usize>> = (0..spans.len())
        .map(|i| forest.children(i).to_vec())
        .collect();
    for (r, a) in adopter.iter().enumerate() {
        if let Some(slot) = a.and_then(|a| kids.get_mut(a)) {
            slot.push(r);
        }
    }
    let sort_key = |i: usize| spans.get(i).map(|s| (s.start_us(), s.span_id));
    for slot in &mut kids {
        slot.sort_by(|&a, &b| match (sort_key(a), sort_key(b)) {
            (Some((sa, ia)), Some((sb, ib))) => sa.total_cmp(&sb).then(ia.cmp(&ib)),
            _ => std::cmp::Ordering::Equal,
        });
    }
    // True roots: no same-thread parent and no adopter.
    let longest = |candidates: &mut dyn Iterator<Item = usize>| -> Option<usize> {
        candidates.fold(None, |best: Option<usize>, i| {
            let Some(s) = spans.get(i) else { return best };
            match best.and_then(|b| spans.get(b).map(|r| (b, r))) {
                None => Some(i),
                Some((b, r)) => {
                    if s.dur_us > r.dur_us
                        || (s.dur_us == r.dur_us
                            && (s.start_us(), s.span_id) < (r.start_us(), r.span_id))
                    {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            }
        })
    };
    let mut true_roots = forest
        .roots()
        .iter()
        .copied()
        .filter(|&r| adopter.get(r).copied().flatten().is_none());
    let Some(mut at) = longest(&mut true_roots) else {
        return Vec::new();
    };
    let mut path = Vec::new();
    // The path length is bounded by the node count; the explicit budget
    // makes that termination obvious even on malformed input.
    for _ in 0..=spans.len() {
        match spans.get(at) {
            Some(s) => path.push(s.name.clone()),
            None => break,
        }
        let mut below = kids
            .get(at)
            .map_or(&[] as &[usize], Vec::as_slice)
            .iter()
            .copied();
        match longest(&mut below) {
            Some(next) => at = next,
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span_id: u64, parent_id: u64, tid: u64, name: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            t_us: start + dur,
            tid,
            name: name.to_string(),
            span_id,
            parent_id,
            dur_us: dur,
        }
    }

    #[test]
    fn descends_into_the_longest_child() {
        let spans = vec![
            rec(2, 1, 0, "train", 1.0, 10.0),
            rec(3, 1, 0, "verify", 12.0, 30.0),
            rec(4, 3, 0, "reach.run", 13.0, 28.0),
            rec(1, 0, 0, "pipeline", 0.0, 50.0),
        ];
        let forest = SpanForest::from_records(&spans);
        assert_eq!(
            critical_path(&spans, &forest),
            vec!["pipeline", "verify", "reach.run"]
        );
    }

    #[test]
    fn adoption_crosses_worker_pool_fan_outs() {
        let spans = vec![
            // Worker-side roots inside the pool.map interval.
            rec(3, 0, 1, "pool.chunk", 11.0, 18.0),
            rec(4, 3, 1, "pool.item", 12.0, 16.0),
            rec(2, 1, 0, "pool.map", 10.0, 20.0),
            rec(1, 0, 0, "pipeline", 0.0, 40.0),
        ];
        let forest = SpanForest::from_records(&spans);
        let adopter = adoption(&spans, &forest);
        assert_eq!(adopter[0], Some(2), "worker root adopted by pool.map");
        assert_eq!(adopter[1], None, "non-root never adopted");
        assert_eq!(adopter[3], None, "true root stays a root");
        assert_eq!(
            critical_path(&spans, &forest),
            vec!["pipeline", "pool.map", "pool.chunk", "pool.item"]
        );
    }

    #[test]
    fn empty_trace_has_empty_path() {
        let forest = SpanForest::from_records(&[]);
        assert!(critical_path(&[], &forest).is_empty());
    }
}
