//! `dwv-trace` — analyze `DWV_TRACE` JSONL streams.
//!
//! ```text
//! dwv-trace <trace.jsonl> [--threads N] [--folded PATH]
//!           [--check-bill BENCH_core.json] [--require-critical NAME]
//! dwv-trace --diff <a.jsonl> <b.jsonl>
//! dwv-trace --check-flight <dump.jsonl>
//! ```
//!
//! The default mode prints the analysis report (span/thread counts,
//! critical path, verifier tier bill, cost attribution). `--folded`
//! additionally writes flamegraph-compatible folded stacks.
//! `--check-bill` cross-checks the trace's per-tier verifier counters
//! against the `verifier_calls_by_tier` section of `BENCH_core.json`
//! (learn + sweep, exact equality). `--require-critical` fails unless
//! the named span sits on the critical path. `--diff` attributes the
//! self-time movement between two traces. `--check-flight` validates a
//! flight-recorder dump and requires a `panic` anomaly to be covered by
//! a still-open span. Every failure exits non-zero with a diagnostic.

use dwv_trace::{
    analyze, check_bill, diff_attribution, expected_bill, parse_trace, parse_trace_pooled,
    render_diff, render_folded, render_report, validate_flight, validate_nesting, NESTING_SLACK_US,
};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("dwv-trace: FAIL — {msg}");
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut folded_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut require_critical: Vec<String> = Vec::new();
    let mut diff_paths: Option<(String, String)> = None;
    let mut flight_path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs an argument"));
        match arg.as_str() {
            "--threads" => match value("--threads").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => threads = Some(n),
                _ => return fail("--threads needs a positive integer"),
            },
            "--folded" => match value("--folded") {
                Ok(p) => folded_path = Some(p),
                Err(e) => return fail(&e),
            },
            "--check-bill" => match value("--check-bill") {
                Ok(p) => bench_path = Some(p),
                Err(e) => return fail(&e),
            },
            "--require-critical" => match value("--require-critical") {
                Ok(n) => require_critical.push(n),
                Err(e) => return fail(&e),
            },
            "--diff" => match (it.next(), it.next()) {
                (Some(a), Some(b)) => diff_paths = Some((a, b)),
                _ => return fail("--diff needs two trace paths"),
            },
            "--check-flight" => match value("--check-flight") {
                Ok(p) => flight_path = Some(p),
                Err(e) => return fail(&e),
            },
            other if !other.starts_with("--") && trace_path.is_none() => {
                trace_path = Some(other.to_string());
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = flight_path {
        return check_flight(&path);
    }
    if let Some((a, b)) = diff_paths {
        return diff_mode(&a, &b, threads);
    }
    let Some(path) = trace_path else {
        eprintln!(
            "usage: dwv-trace <trace.jsonl> [--threads N] [--folded PATH] \
             [--check-bill BENCH.json] [--require-critical NAME]\n       \
             dwv-trace --diff <a.jsonl> <b.jsonl>\n       \
             dwv-trace --check-flight <dump.jsonl>"
        );
        return ExitCode::FAILURE;
    };

    let text = match read(&path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let data = match parse(&text, threads) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    if let Err(e) = validate_nesting(&data.spans, NESTING_SLACK_US) {
        return fail(&format!("{path}: bad span nesting: {e}"));
    }
    let analysis = analyze(&data);
    print!("{}", render_report(&analysis));

    for name in &require_critical {
        if !analysis.critical.iter().any(|n| n == name) {
            return fail(&format!(
                "span '{name}' is not on the critical path ({})",
                analysis.critical.join(";")
            ));
        }
    }
    if let Some(bench) = bench_path {
        let bench_text = match read(&bench) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        };
        let json = match dwv_obs::json::parse(&bench_text) {
            Ok(j) => j,
            Err(e) => return fail(&format!("{bench}: invalid JSON: {e}")),
        };
        let (names, expected) = match expected_bill(&json) {
            Ok(v) => v,
            Err(e) => return fail(&format!("{bench}: {e}")),
        };
        if let Err(e) = check_bill(&analysis.bill, &expected) {
            return fail(&format!("tier bill mismatch vs {bench}: {e}"));
        }
        println!(
            "tier bill check: OK — trace matches {bench} ({})",
            names
                .iter()
                .zip(&expected)
                .map(|(n, c)| format!("{n}={c}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if let Some(out) = folded_path {
        let folded = render_folded(&analysis.folded);
        if let Err(e) = std::fs::write(&out, &folded) {
            return fail(&format!("cannot write {out}: {e}"));
        }
        println!(
            "folded stacks  : {} unique stacks -> {out}",
            analysis.folded.len()
        );
    }
    ExitCode::SUCCESS
}

/// Parses a trace serially or on a worker pool of the requested width.
fn parse(text: &str, threads: Option<usize>) -> Result<dwv_trace::TraceData, String> {
    match threads {
        Some(n) if n > 1 => {
            let pool = dwv_core::WorkerPool::new(n);
            parse_trace_pooled(text, &pool)
        }
        _ => parse_trace(text),
    }
}

/// `--diff a b`: rank span names by self-time movement.
fn diff_mode(a: &str, b: &str, threads: Option<usize>) -> ExitCode {
    let run = |path: &str| -> Result<dwv_trace::Analysis, String> {
        let text = read(path)?;
        let data = parse(&text, threads).map_err(|e| format!("{path}: {e}"))?;
        Ok(analyze(&data))
    };
    let (left, right) = match (run(a), run(b)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let rows = diff_attribution(&left.attribution, &right.attribution);
    println!("self-time movement {a} -> {b} (positive = slower):");
    print!("{}", render_diff(&rows));
    ExitCode::SUCCESS
}

/// `--check-flight dump`: validate framing and demand that a `panic`
/// anomaly is covered by a span that was still open when the dump was
/// taken.
fn check_flight(path: &str) -> ExitCode {
    let text = match read(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let summary = match validate_flight(&text) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    let Some((_, panic_seq)) = summary.anomalies.iter().find(|(n, _)| n == "panic") else {
        return fail(&format!(
            "{path}: no 'panic' anomaly in the last dump (anomalies: {:?})",
            summary.anomalies
        ));
    };
    let covering: Vec<&(String, u64)> = summary
        .open_spans
        .iter()
        .filter(|(_, open_seq)| open_seq < panic_seq)
        .collect();
    if covering.is_empty() {
        return fail(&format!(
            "{path}: the panic anomaly is not covered by any still-open span"
        ));
    }
    println!(
        "flight check: OK — {} dump(s), {} events, panic covered by open span(s): {}",
        summary.dumps,
        summary.events.len(),
        covering
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::SUCCESS
}
