//! The verifier bill by tier, cross-checked against `BENCH_core.json`.
//!
//! The tiered portfolio increments one process-global counter per tier
//! (`portfolio.tier{i}.calls`, cache hits excluded), so the last
//! `snapshot` line of a trace carries the complete bill of the run —
//! Algorithm 1's learning queries plus the certification sweep. The
//! benchmark baseline records the same split under
//! `verifier_calls_by_tier` in `BENCH_core.json`; on a deterministic run
//! the two must agree **exactly**, and [`check_bill`] fails CI when they
//! do not.

use dwv_obs::json::JsonValue;
use std::collections::BTreeMap;

/// Extracts the per-tier verifier bill from a trace's counter totals:
/// entry `i` is `portfolio.tier{i}.calls` (0 when the counter never
/// fired). Empty when no tier counter is present (a non-portfolio run).
#[must_use]
pub fn tier_bill(counters: &BTreeMap<String, f64>) -> Vec<u64> {
    let mut by_index: BTreeMap<usize, u64> = BTreeMap::new();
    for (name, v) in counters {
        let Some(rest) = name.strip_prefix("portfolio.tier") else {
            continue;
        };
        let Some(idx) = rest.strip_suffix(".calls") else {
            continue;
        };
        if let Ok(i) = idx.parse::<usize>() {
            by_index.insert(i, *v as u64);
        }
    }
    let Some((&max, _)) = by_index.iter().next_back() else {
        return Vec::new();
    };
    (0..=max)
        .map(|i| by_index.get(&i).copied().unwrap_or(0))
        .collect()
}

/// Reads the expected end-to-end bill from a parsed `BENCH_core.json`:
/// tier names plus the per-tier sum of the recorded `learn` and `sweep`
/// calls under `verifier_calls_by_tier`.
///
/// # Errors
///
/// A description of the missing or malformed section.
pub fn expected_bill(bench: &JsonValue) -> Result<(Vec<String>, Vec<u64>), String> {
    let section = bench
        .get("verifier_calls_by_tier")
        .ok_or_else(|| "BENCH json has no verifier_calls_by_tier section".to_string())?;
    let names: Vec<String> = match section.get("tiers") {
        Some(JsonValue::Array(items)) => items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
        _ => return Err("verifier_calls_by_tier.tiers is not an array".to_string()),
    };
    let calls = |key: &str| -> Result<Vec<u64>, String> {
        match section.get(key).and_then(|p| p.get("calls")) {
            Some(JsonValue::Array(items)) => Ok(items
                .iter()
                .filter_map(JsonValue::as_number)
                .map(|n| n as u64)
                .collect()),
            _ => Err(format!(
                "verifier_calls_by_tier.{key}.calls is not an array"
            )),
        }
    };
    let learn = calls("learn")?;
    let sweep = calls("sweep")?;
    let total: Vec<u64> = (0..names.len().max(learn.len()).max(sweep.len()))
        .map(|i| learn.get(i).copied().unwrap_or(0) + sweep.get(i).copied().unwrap_or(0))
        .collect();
    Ok((names, total))
}

/// Compares a trace's tier bill against the expected one; both are padded
/// with zeros to a common length, then must match exactly.
///
/// # Errors
///
/// A per-tier mismatch description.
pub fn check_bill(actual: &[u64], expected: &[u64]) -> Result<(), String> {
    let n = actual.len().max(expected.len());
    for i in 0..n {
        let a = actual.get(i).copied().unwrap_or(0);
        let e = expected.get(i).copied().unwrap_or(0);
        if a != e {
            return Err(format!(
                "tier {i}: trace bill {a} != recorded bill {e} (actual {actual:?}, expected {expected:?})"
            ));
        }
    }
    Ok(())
}

/// Renders the bill as one aligned line per tier, with names when known.
#[must_use]
pub fn render_bill(names: Option<&[String]>, bill: &[u64]) -> String {
    let mut out = String::new();
    for (i, calls) in bill.iter().enumerate() {
        let label = names
            .and_then(|n| n.get(i))
            .map_or_else(|| format!("tier{i}"), String::clone);
        out.push_str(&format!("{label:<14} {calls:>8} calls\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bill_reads_dense_tier_counters() {
        let mut counters = BTreeMap::new();
        counters.insert("portfolio.tier0.calls".to_string(), 81.0);
        counters.insert("portfolio.tier2.calls".to_string(), 7.0);
        counters.insert("reach.cache.hits".to_string(), 3.0);
        assert_eq!(tier_bill(&counters), vec![81, 0, 7]);
        assert!(tier_bill(&BTreeMap::new()).is_empty());
    }

    #[test]
    fn expected_bill_sums_learn_and_sweep() {
        let bench = dwv_obs::json::parse(
            r#"{"verifier_calls_by_tier":{"tiers":["interval","zonotope","linear-exact"],
                "learn":{"calls":[80,78,7]},"sweep":{"calls":[1,1,0]}}}"#,
        )
        .expect("parses");
        let (names, total) = expected_bill(&bench).expect("well-formed");
        assert_eq!(names, vec!["interval", "zonotope", "linear-exact"]);
        assert_eq!(total, vec![81, 79, 7]);
    }

    #[test]
    fn check_bill_pads_and_compares() {
        assert!(check_bill(&[81, 79, 7], &[81, 79, 7]).is_ok());
        assert!(check_bill(&[81, 79], &[81, 79, 0]).is_ok());
        let err = check_bill(&[81, 79, 6], &[81, 79, 7]).expect_err("mismatch");
        assert!(err.contains("tier 2"), "{err}");
    }

    #[test]
    fn render_bill_prefers_names() {
        let names = vec!["interval".to_string()];
        let text = render_bill(Some(&names), &[81, 7]);
        assert!(text.contains("interval"), "{text}");
        assert!(text.contains("tier1"), "{text}");
    }
}
