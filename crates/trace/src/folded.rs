//! Folded-stack (flamegraph) export.
//!
//! One `a;b;c N` line per unique stack, where the stack is the logical
//! ancestry of a span (same-thread parents, crossing worker-pool
//! fan-outs via [`crate::critical::adoption`]) and `N` is the summed
//! self time in whole microseconds. The output is sorted and directly
//! consumable by the standard `flamegraph.pl` / `inferno` tooling.

use crate::attribution::self_times;
use crate::critical::adoption;
use crate::forest::SpanForest;
use crate::model::SpanRecord;
use std::collections::BTreeMap;

/// Computes folded stacks: `(stack, weight)` pairs sorted by stack,
/// weights in whole microseconds of self time. Stacks whose rounded
/// weight is zero are kept, so every span name appears in the output.
#[must_use]
pub fn folded_stacks(spans: &[SpanRecord], forest: &SpanForest) -> Vec<(String, u64)> {
    let own = self_times(spans, forest);
    let adopter = adoption(spans, forest);
    let up = |i: usize| -> Option<usize> {
        forest
            .parent(i)
            .or_else(|| adopter.get(i).copied().flatten())
    };
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (i, weight) in own.iter().enumerate() {
        // Walk to the logical root; the depth budget guards against
        // malformed link cycles.
        let mut frames = Vec::new();
        let mut at = Some(i);
        for _ in 0..=spans.len() {
            let Some(j) = at else { break };
            match spans.get(j) {
                Some(s) => frames.push(s.name.as_str()),
                None => break,
            }
            at = up(j);
        }
        frames.reverse();
        let stack = frames.join(";");
        *agg.entry(stack).or_insert(0) += weight.round() as u64;
    }
    agg.into_iter().collect()
}

/// Renders folded stacks as flamegraph input: one `stack N` line each.
#[must_use]
pub fn render_folded(stacks: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, weight) in stacks {
        out.push_str(&format!("{stack} {weight}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span_id: u64, parent_id: u64, tid: u64, name: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            t_us: start + dur,
            tid,
            name: name.to_string(),
            span_id,
            parent_id,
            dur_us: dur,
        }
    }

    #[test]
    fn stacks_fold_ancestry_and_merge_duplicates() {
        let spans = vec![
            rec(2, 1, 0, "verify", 1.0, 10.0),
            rec(3, 1, 0, "verify", 12.0, 20.0),
            rec(1, 0, 0, "train", 0.0, 40.0),
        ];
        let forest = SpanForest::from_records(&spans);
        let stacks = folded_stacks(&spans, &forest);
        assert_eq!(
            stacks,
            vec![("train".to_string(), 10), ("train;verify".to_string(), 30),]
        );
        let text = render_folded(&stacks);
        assert_eq!(text, "train 10\ntrain;verify 30\n");
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("two fields");
            assert!(!stack.is_empty());
            assert!(weight.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn adopted_worker_spans_stack_under_the_fan_out() {
        let spans = vec![
            rec(3, 0, 1, "pool.chunk", 11.0, 18.0),
            rec(2, 1, 0, "pool.map", 10.0, 20.0),
            rec(1, 0, 0, "pipeline", 0.0, 40.0),
        ];
        let forest = SpanForest::from_records(&spans);
        let stacks = folded_stacks(&spans, &forest);
        let keys: Vec<&str> = stacks.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"pipeline;pool.map;pool.chunk"), "{keys:?}");
    }
}
