//! Strict span-nesting validation (the `trace_check` CI gate).
//!
//! The analyzer side of the crate is lenient — orphans become roots so a
//! truncated trace still renders. This module is the strict check CI
//! runs on full traces: span ids must be unique and non-zero, every
//! non-zero `parent_id` must resolve to a span on the **same thread**,
//! and a child's interval must lie inside its parent's (within a small
//! slack: open stamps are estimated from separate clock reads).

use crate::model::SpanRecord;
use std::collections::BTreeMap;

/// Default interval-containment slack in microseconds. `dwv-obs` stamps
/// both span endpoints from one epoch clock, so its streams nest exactly;
/// the slack only absorbs µs quantization in foreign or hand-built
/// traces, while still catching genuinely mis-nested spans (which are
/// off by whole spans, not microseconds).
pub const NESTING_SLACK_US: f64 = 100.0;

/// Validates span identity and nesting over a whole trace.
///
/// # Errors
///
/// The first violation, with the offending span ids:
/// * a `span_id` of 0, or one used by two records;
/// * a `parent_id` that resolves to no record (orphan) or to a record on
///   a different thread;
/// * a child interval escaping its parent's by more than `slack_us`.
pub fn validate_nesting(spans: &[SpanRecord], slack_us: f64) -> Result<(), String> {
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.span_id == 0 {
            return Err(format!("span '{}' has reserved span_id 0", s.name));
        }
        if let Some(first) = by_id.insert(s.span_id, i) {
            let name = spans.get(first).map_or("?", |f| f.name.as_str());
            return Err(format!(
                "span_id {} used by both '{name}' and '{}'",
                s.span_id, s.name
            ));
        }
    }
    for s in spans {
        if s.parent_id == 0 {
            continue;
        }
        let Some(p) = by_id.get(&s.parent_id).and_then(|&i| spans.get(i)) else {
            return Err(format!(
                "span '{}' ({}) has orphan parent_id {}",
                s.name, s.span_id, s.parent_id
            ));
        };
        if p.tid != s.tid {
            return Err(format!(
                "span '{}' ({}) on tid {} has parent '{}' ({}) on tid {} — parents must be same-thread",
                s.name, s.span_id, s.tid, p.name, p.span_id, p.tid
            ));
        }
        if s.start_us() < p.start_us() - slack_us || s.end_us() > p.end_us() + slack_us {
            return Err(format!(
                "span '{}' ({}) [{:.1}, {:.1}]µs escapes parent '{}' ({}) [{:.1}, {:.1}]µs",
                s.name,
                s.span_id,
                s.start_us(),
                s.end_us(),
                p.name,
                p.span_id,
                p.start_us(),
                p.end_us(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span_id: u64, parent_id: u64, tid: u64, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            t_us: start + dur,
            tid,
            name: format!("s{span_id}"),
            span_id,
            parent_id,
            dur_us: dur,
        }
    }

    #[test]
    fn accepts_well_nested_spans() {
        let spans = vec![
            rec(2, 1, 0, 1.0, 10.0),
            rec(3, 2, 0, 2.0, 5.0),
            rec(1, 0, 0, 0.0, 20.0),
            rec(4, 0, 1, 3.0, 4.0), // separate thread, root
        ];
        assert_eq!(validate_nesting(&spans, NESTING_SLACK_US), Ok(()));
    }

    #[test]
    fn rejects_identity_violations() {
        let zero = vec![rec(0, 0, 0, 0.0, 1.0)];
        assert!(validate_nesting(&zero, 0.0).is_err());
        let dup = vec![rec(1, 0, 0, 0.0, 1.0), rec(1, 0, 0, 2.0, 1.0)];
        let err = validate_nesting(&dup, 0.0).expect_err("duplicate id");
        assert!(err.contains("span_id 1"), "{err}");
    }

    #[test]
    fn rejects_orphans_and_cross_thread_parents() {
        let orphan = vec![rec(2, 9, 0, 0.0, 1.0)];
        let err = validate_nesting(&orphan, 0.0).expect_err("orphan");
        assert!(err.contains("orphan"), "{err}");
        let cross = vec![rec(1, 0, 0, 0.0, 10.0), rec(2, 1, 1, 1.0, 2.0)];
        let err = validate_nesting(&cross, 0.0).expect_err("cross-thread");
        assert!(err.contains("same-thread"), "{err}");
    }

    #[test]
    fn rejects_escaping_intervals_with_slack() {
        let spans = vec![rec(1, 0, 0, 10.0, 10.0), rec(2, 1, 0, 5.0, 30.0)];
        let err = validate_nesting(&spans, 1.0).expect_err("escapes");
        assert!(err.contains("escapes"), "{err}");
        // The same layout passes under a slack that covers the overhang.
        assert_eq!(validate_nesting(&spans, 20.0), Ok(()));
    }
}
