//! Trace analytics for `DWV_TRACE` JSONL streams — the read side of the
//! observability layer.
//!
//! `dwv-obs` writes; this crate reads. From one JSONL stream it rebuilds
//! the span forest ([`SpanForest`], via the `span_id` / `parent_id`
//! fields every span line carries), attributes cost per span name
//! ([`attribute`]: self time vs total time), extracts the critical path
//! through worker-pool fan-outs ([`critical_path`]), exports folded
//! stacks for flamegraphs ([`folded_stacks`]), and cross-checks the
//! verifier bill by tier against the recorded benchmark baseline
//! ([`tier_bill`] / [`check_bill`]). [`validate_nesting`] is the strict
//! CI gate on span identity and containment, and [`validate_flight`]
//! checks post-mortem flight-recorder dumps.
//!
//! Everything is deterministic: parsing can fan out on a
//! [`dwv_core::WorkerPool`] ([`parse_trace_pooled`]) and still yields
//! byte-identical analyses at every thread count — the `dwv-check`
//! `trace` family enforces exactly that, against an O(n²) reference
//! tree builder.
//!
//! The `dwv-trace` binary wraps all of it into a CLI:
//!
//! ```sh
//! DWV_TRACE=trace.jsonl cargo run --release --example profile_acc
//! cargo run --release -p dwv-trace -- trace.jsonl --folded out.folded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod bill;
pub mod critical;
pub mod flight;
pub mod folded;
pub mod forest;
pub mod model;
pub mod nesting;

pub use attribution::{
    attribute, diff_attribution, render_attribution, render_diff, DiffRow, NameCost,
};
pub use bill::{check_bill, expected_bill, render_bill, tier_bill};
pub use critical::{adoption, critical_path};
pub use flight::{validate_flight, FlightEvent, FlightSummary};
pub use folded::{folded_stacks, render_folded};
pub use forest::SpanForest;
pub use model::{parse_trace, parse_trace_pooled, SpanRecord, TraceData};
pub use nesting::{validate_nesting, NESTING_SLACK_US};

use std::collections::BTreeSet;

/// The full deterministic analysis of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Non-empty lines in the stream.
    pub lines: usize,
    /// Span records analyzed.
    pub span_count: usize,
    /// Distinct thread ids observed on span records.
    pub threads: usize,
    /// Per-name cost attribution, hottest self time first.
    pub attribution: Vec<NameCost>,
    /// Critical-path span names, root to leaf.
    pub critical: Vec<String>,
    /// Folded stacks (`stack`, self-µs), sorted by stack.
    pub folded: Vec<(String, u64)>,
    /// Verifier calls per portfolio tier (empty for non-portfolio runs).
    pub bill: Vec<u64>,
}

/// Runs the whole analysis pipeline over parsed trace data.
#[must_use]
pub fn analyze(data: &TraceData) -> Analysis {
    let forest = SpanForest::from_records(&data.spans);
    let threads: BTreeSet<u64> = data.spans.iter().map(|s| s.tid).collect();
    Analysis {
        lines: data.lines,
        span_count: data.spans.len(),
        threads: threads.len(),
        attribution: attribute(&data.spans, &forest),
        critical: critical_path(&data.spans, &forest),
        folded: folded_stacks(&data.spans, &forest),
        bill: tier_bill(&data.counters),
    }
}

/// Renders the analysis as the text report the `dwv-trace` binary prints.
/// Byte-identical for byte-identical traces, at every pool width.
#[must_use]
pub fn render_report(a: &Analysis) -> String {
    let mut out = format!(
        "trace          : {} lines, {} spans, {} threads\n",
        a.lines, a.span_count, a.threads
    );
    out.push_str(&format!("critical path  : {}\n", a.critical.join(";")));
    if a.bill.is_empty() {
        out.push_str("tier bill      : (no portfolio counters in trace)\n");
    } else {
        out.push_str("tier bill      :\n");
        for line in render_bill(None, &a.bill).lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out.push_str("attribution    :\n");
    for line in render_attribution(&a.attribution).lines() {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut t = String::new();
        // verify (child) closes before train (parent); portfolio counters
        // arrive in a final snapshot.
        t.push_str("{\"t_us\":30,\"tid\":0,\"kind\":\"span\",\"name\":\"verify\",\"span_id\":2,\"parent_id\":1,\"dur_us\":25.0}\n");
        t.push_str("{\"t_us\":50,\"tid\":0,\"kind\":\"span\",\"name\":\"train\",\"span_id\":1,\"parent_id\":0,\"dur_us\":48.0}\n");
        t.push_str("{\"t_us\":60,\"tid\":0,\"kind\":\"snapshot\",\"name\":\"metrics\",\"metrics\":{\"counters\":{\"portfolio.tier0.calls\":81.0,\"portfolio.tier1.calls\":79.0,\"portfolio.tier2.calls\":7.0},\"gauges\":{},\"histograms\":{}}}\n");
        t
    }

    #[test]
    fn analysis_covers_every_section() {
        let data = parse_trace(&sample()).expect("parses");
        let a = analyze(&data);
        assert_eq!(a.span_count, 2);
        assert_eq!(a.threads, 1);
        assert_eq!(a.critical, vec!["train", "verify"]);
        assert_eq!(a.bill, vec![81, 79, 7]);
        let report = render_report(&a);
        assert!(report.contains("critical path  : train;verify"), "{report}");
        assert!(report.contains("81 calls"), "{report}");
        assert!(report.contains("verify"), "{report}");
    }

    #[test]
    fn report_is_identical_at_every_pool_width() {
        let text = sample();
        let serial = render_report(&analyze(&parse_trace(&text).expect("parses")));
        for threads in [2, 4, 8] {
            let pool = dwv_core::WorkerPool::new(threads).force_parallel();
            let pooled =
                render_report(&analyze(&parse_trace_pooled(&text, &pool).expect("parses")));
            assert_eq!(pooled, serial, "width {threads}");
        }
    }

    #[test]
    fn non_portfolio_trace_renders_without_bill() {
        let data = parse_trace(
            "{\"t_us\":5,\"tid\":0,\"kind\":\"span\",\"name\":\"a\",\"span_id\":1,\"parent_id\":0,\"dur_us\":5.0}",
        )
        .expect("parses");
        let report = render_report(&analyze(&data));
        assert!(report.contains("no portfolio counters"), "{report}");
    }
}
