//! Flight-recorder dump validation.
//!
//! A dump is one `{"kind":"flight_dump",…}` header line followed by
//! `{"kind":"flight",…}` event lines in ticket (`seq`) order — the tail
//! of the in-memory ring at the moment of a panic or anomaly.
//! [`validate_flight`] checks the framing (parseable lines, known event
//! kinds, strictly increasing `seq` within a dump) and summarizes the
//! **last** dump in the file: its anomalies and the spans that were
//! still open when it was taken. A post-mortem consumer asserts, e.g.,
//! that a `panic` anomaly exists and that the panicking span is among
//! the still-open ones.

use dwv_obs::json::{parse, JsonValue};

/// One event of a flight dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Ring ticket (global order of the event).
    pub seq: u64,
    /// Microseconds since the trace epoch.
    pub t_us: f64,
    /// Emitting thread id.
    pub tid: u64,
    /// Event kind: `span_open`, `span_close`, `event` or `anomaly`.
    pub ev: String,
    /// Instrumentation-site name.
    pub name: String,
    /// Payload (span id for opens, duration for closes, value otherwise).
    pub v: f64,
}

/// Summary of the last dump in a flight-recorder file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightSummary {
    /// Number of dumps in the file.
    pub dumps: usize,
    /// The last dump's header name (the dump reason, e.g. `panic`).
    pub reason: String,
    /// The last dump's events, in `seq` order.
    pub events: Vec<FlightEvent>,
    /// `(name, seq)` of the last dump's anomalies, in `seq` order.
    pub anomalies: Vec<(String, u64)>,
    /// `(name, open seq)` of spans opened but not closed by the end of
    /// the last dump, in open order.
    pub open_spans: Vec<(String, u64)>,
}

/// Parses and validates a flight-recorder dump file.
///
/// # Errors
///
/// The first framing violation: unparseable line, unknown kind or event
/// kind, event outside a dump, or non-increasing `seq` within a dump.
pub fn validate_flight(text: &str) -> Result<FlightSummary, String> {
    let mut summary = FlightSummary::default();
    let mut in_dump = false;
    let mut last_seq: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing kind", lineno + 1))?;
        match kind {
            "flight_dump" => {
                summary.dumps += 1;
                summary.reason = v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string();
                summary.events.clear();
                in_dump = true;
                last_seq = None;
            }
            "flight" => {
                if !in_dump {
                    return Err(format!("line {}: flight event outside a dump", lineno + 1));
                }
                let num = |key: &str| {
                    v.get(key)
                        .and_then(JsonValue::as_number)
                        .ok_or_else(|| format!("line {}: missing numeric '{key}'", lineno + 1))
                };
                let text_field = |key: &str| {
                    v.get(key)
                        .and_then(JsonValue::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("line {}: missing string '{key}'", lineno + 1))
                };
                let ev = text_field("ev")?;
                if !matches!(
                    ev.as_str(),
                    "span_open" | "span_close" | "event" | "anomaly"
                ) {
                    return Err(format!("line {}: unknown event kind '{ev}'", lineno + 1));
                }
                let seq = num("seq")? as u64;
                if last_seq.is_some_and(|p| seq <= p) {
                    return Err(format!("line {}: seq {seq} not increasing", lineno + 1));
                }
                last_seq = Some(seq);
                summary.events.push(FlightEvent {
                    seq,
                    t_us: num("t_us")?,
                    tid: num("tid")? as u64,
                    ev,
                    name: text_field("name")?,
                    // `v` is null for non-finite payloads.
                    v: v.get("v")
                        .and_then(JsonValue::as_number)
                        .unwrap_or(f64::NAN),
                });
            }
            other => return Err(format!("line {}: unknown kind '{other}'", lineno + 1)),
        }
    }
    if summary.dumps == 0 {
        return Err("no flight_dump header in file".to_string());
    }
    // Summarize the last dump: anomalies and still-open spans. Closes
    // carry only a name, so matching is by (tid, name), most recent open
    // first — exactly how the nested RAII guards behave.
    let mut open: Vec<(u64, String, u64)> = Vec::new();
    for e in &summary.events {
        match e.ev.as_str() {
            "span_open" => open.push((e.tid, e.name.clone(), e.seq)),
            "span_close" => {
                if let Some(pos) = open
                    .iter()
                    .rposition(|(tid, name, _)| *tid == e.tid && *name == e.name)
                {
                    open.remove(pos);
                }
            }
            "anomaly" => summary.anomalies.push((e.name.clone(), e.seq)),
            _ => {}
        }
    }
    summary.open_spans = open.into_iter().map(|(_, name, seq)| (name, seq)).collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ev: &str, name: &str, seq: u64) -> String {
        format!(
            "{{\"t_us\":{seq},\"tid\":0,\"kind\":\"flight\",\"name\":\"{name}\",\"ev\":\"{ev}\",\"seq\":{seq},\"v\":1.0}}"
        )
    }

    fn dump(lines: &[String]) -> String {
        let mut out = format!(
            "{{\"t_us\":0,\"tid\":0,\"kind\":\"flight_dump\",\"name\":\"panic\",\"events\":{}}}\n",
            lines.len()
        );
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    #[test]
    fn summarizes_anomalies_and_open_spans() {
        let text = dump(&[
            line("span_open", "train", 1),
            line("span_open", "verify", 2),
            line("span_close", "verify", 3),
            line("span_open", "verify", 4),
            line("anomaly", "panic", 5),
        ]);
        let s = validate_flight(&text).expect("valid");
        assert_eq!(s.dumps, 1);
        assert_eq!(s.reason, "panic");
        assert_eq!(s.anomalies, vec![("panic".to_string(), 5)]);
        assert_eq!(
            s.open_spans,
            vec![("train".to_string(), 1), ("verify".to_string(), 4)]
        );
    }

    #[test]
    fn rejects_broken_framing() {
        assert!(validate_flight("").is_err(), "empty file");
        assert!(
            validate_flight(&line("span_open", "x", 1)).is_err(),
            "event outside a dump"
        );
        let bad_seq = dump(&[line("span_open", "x", 2), line("event", "y", 2)]);
        let err = validate_flight(&bad_seq).expect_err("non-increasing seq");
        assert!(err.contains("not increasing"), "{err}");
        let bad_ev = dump(&[line("warp", "x", 1)]);
        assert!(validate_flight(&bad_ev).is_err());
    }

    #[test]
    fn later_dump_wins() {
        let mut text = dump(&[line("span_open", "a", 1)]);
        text.push_str(&dump(&[line("span_open", "b", 7)]));
        let s = validate_flight(&text).expect("valid");
        assert_eq!(s.dumps, 2);
        assert_eq!(s.open_spans, vec![("b".to_string(), 7)]);
    }
}
