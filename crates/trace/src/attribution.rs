//! Cost attribution: self time vs total time per span name.
//!
//! *Total* time of a name sums the durations of every span carrying it;
//! *self* time subtracts each span's same-thread children first, so a
//! phase that spends its life inside callees attributes its cost to them.
//! Spans adopted across threads (worker fan-outs) are **not** subtracted:
//! they run concurrently with their logical parent, so their wall-clock
//! time is not part of the parent's own.

use crate::forest::SpanForest;
use crate::model::SpanRecord;
use std::collections::BTreeMap;

/// Aggregated cost of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct NameCost {
    /// The span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: f64,
    /// Sum of span self times (duration minus same-thread children,
    /// clamped at zero per span), microseconds.
    pub self_us: f64,
}

/// Per-record self time: duration minus the durations of same-thread
/// children, clamped at zero (clock jitter can make the children sum
/// slightly exceed the parent).
#[must_use]
pub fn self_times(spans: &[SpanRecord], forest: &SpanForest) -> Vec<f64> {
    spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let kids: f64 = forest
                .children(i)
                .iter()
                .filter_map(|&c| spans.get(c))
                .map(|c| c.dur_us)
                .sum();
            (s.dur_us - kids).max(0.0)
        })
        .collect()
}

/// Attributes cost per span name, sorted by self time (descending), ties
/// broken by name. Accumulation runs in record order, so the result is
/// identical however the records were parsed.
#[must_use]
pub fn attribute(spans: &[SpanRecord], forest: &SpanForest) -> Vec<NameCost> {
    let self_us = self_times(spans, forest);
    let mut by_name: BTreeMap<&str, NameCost> = BTreeMap::new();
    for (s, own) in spans.iter().zip(&self_us) {
        let entry = by_name.entry(&s.name).or_insert_with(|| NameCost {
            name: s.name.clone(),
            count: 0,
            total_us: 0.0,
            self_us: 0.0,
        });
        entry.count += 1;
        entry.total_us += s.dur_us;
        entry.self_us += own;
    }
    let mut out: Vec<NameCost> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_us.total_cmp(&a.self_us).then(a.name.cmp(&b.name)));
    out
}

/// Renders the attribution as an aligned text table
/// (`name count total(ms) self(ms)`).
#[must_use]
pub fn render_attribution(costs: &[NameCost]) -> String {
    let width = costs.iter().map(|c| c.name.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:<width$} {:>7} {:>12} {:>12}\n",
        "name", "count", "total(ms)", "self(ms)"
    );
    for c in costs {
        out.push_str(&format!(
            "{:<width$} {:>7} {:>12.3} {:>12.3}\n",
            c.name,
            c.count,
            c.total_us / 1e3,
            c.self_us / 1e3,
        ));
    }
    out
}

/// One row of an A/B attribution diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The span name.
    pub name: String,
    /// Self time in trace A, microseconds.
    pub self_a_us: f64,
    /// Self time in trace B, microseconds.
    pub self_b_us: f64,
    /// `self_b_us - self_a_us`: positive means B got slower here.
    pub delta_us: f64,
}

/// Diffs two attributions over the union of their names, sorted by the
/// magnitude of the self-time movement (largest first, ties by name) —
/// the names at the top are where a regression lives.
#[must_use]
pub fn diff_attribution(a: &[NameCost], b: &[NameCost]) -> Vec<DiffRow> {
    let mut names: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for c in a {
        names.entry(&c.name).or_insert((0.0, 0.0)).0 = c.self_us;
    }
    for c in b {
        names.entry(&c.name).or_insert((0.0, 0.0)).1 = c.self_us;
    }
    let mut rows: Vec<DiffRow> = names
        .into_iter()
        .map(|(name, (self_a_us, self_b_us))| DiffRow {
            name: name.to_string(),
            self_a_us,
            self_b_us,
            delta_us: self_b_us - self_a_us,
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta_us
            .abs()
            .total_cmp(&x.delta_us.abs())
            .then(x.name.cmp(&y.name))
    });
    rows
}

/// Renders a diff as an aligned table (`name self_a(ms) self_b(ms)
/// delta(ms)`).
#[must_use]
pub fn render_diff(rows: &[DiffRow]) -> String {
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:<width$} {:>12} {:>12} {:>12}\n",
        "name", "self_a(ms)", "self_b(ms)", "delta(ms)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<width$} {:>12.3} {:>12.3} {:>+12.3}\n",
            r.name,
            r.self_a_us / 1e3,
            r.self_b_us / 1e3,
            r.delta_us / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span_id: u64, parent_id: u64, name: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            t_us: start + dur,
            tid: 0,
            name: name.to_string(),
            span_id,
            parent_id,
            dur_us: dur,
        }
    }

    #[test]
    fn self_time_subtracts_children_and_clamps() {
        let spans = vec![
            rec(2, 1, "child", 1.0, 30.0),
            rec(3, 1, "child", 35.0, 25.0),
            rec(1, 0, "root", 0.0, 50.0), // children sum 55 > 50 → clamp
        ];
        let forest = SpanForest::from_records(&spans);
        let own = self_times(&spans, &forest);
        assert_eq!(own, vec![30.0, 25.0, 0.0]);
    }

    #[test]
    fn attribution_aggregates_and_sorts_by_self() {
        let spans = vec![
            rec(2, 1, "verify", 1.0, 30.0),
            rec(3, 1, "verify", 35.0, 10.0),
            rec(1, 0, "train", 0.0, 50.0),
        ];
        let forest = SpanForest::from_records(&spans);
        let costs = attribute(&spans, &forest);
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0].name, "verify");
        assert_eq!(costs[0].count, 2);
        assert_eq!(costs[0].total_us, 40.0);
        assert_eq!(costs[0].self_us, 40.0);
        assert_eq!(costs[1].name, "train");
        assert_eq!(costs[1].self_us, 10.0);
        assert_eq!(costs[1].total_us, 50.0);
        let table = render_attribution(&costs);
        assert!(table.starts_with("name"), "{table}");
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn diff_ranks_by_movement() {
        let a = vec![
            NameCost {
                name: "x".into(),
                count: 1,
                total_us: 10.0,
                self_us: 10.0,
            },
            NameCost {
                name: "y".into(),
                count: 1,
                total_us: 5.0,
                self_us: 5.0,
            },
        ];
        let b = vec![NameCost {
            name: "x".into(),
            count: 1,
            total_us: 100.0,
            self_us: 100.0,
        }];
        let rows = diff_attribution(&a, &b);
        assert_eq!(rows[0].name, "x");
        assert_eq!(rows[0].delta_us, 90.0);
        assert_eq!(rows[1].name, "y");
        assert_eq!(rows[1].delta_us, -5.0);
        let table = render_diff(&rows);
        assert!(table.contains("delta(ms)"));
    }
}
