//! Span-forest reconstruction from flat close-ordered records.
//!
//! Spans are emitted at close, so children always precede their parents in
//! the stream; linking therefore happens after all records are collected.
//! [`SpanForest::from_records`] resolves `parent_id` links through one id
//! index (O(n log n)); [`SpanForest::from_records_naive`] is the obviously
//! correct O(n²) reference the `dwv-check` `trace` family compares it
//! against. Both produce the same deterministic child order: by estimated
//! open stamp, then by span id.

use crate::model::SpanRecord;
use std::collections::BTreeMap;

/// A reconstructed forest over one trace's span records. Node `i`
/// corresponds to record `i` of the slice the forest was built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanForest {
    /// Same-thread parent record index per node (`None` for roots and for
    /// records whose `parent_id` does not resolve).
    parent: Vec<Option<usize>>,
    /// Child record indices per node, ordered by open stamp then span id.
    children: Vec<Vec<usize>>,
    /// Nodes without a resolved parent, in record order.
    roots: Vec<usize>,
}

impl SpanForest {
    /// Builds the forest by indexing span ids once.
    ///
    /// A `parent_id` that does not resolve (orphan) or resolves to the
    /// record itself makes the node a root — the analyzer is lenient; the
    /// strict check lives in [`crate::nesting::validate_nesting`]. When an
    /// id occurs twice (malformed trace), the later record wins the index.
    #[must_use]
    pub fn from_records(spans: &[SpanRecord]) -> Self {
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            by_id.insert(s.span_id, i);
        }
        let parent = spans
            .iter()
            .enumerate()
            .map(|(i, s)| match by_id.get(&s.parent_id) {
                Some(&p) if s.parent_id != 0 && p != i => Some(p),
                _ => None,
            })
            .collect();
        Self::from_parents(spans, parent)
    }

    /// The O(n²) reference builder: resolves every `parent_id` by scanning
    /// the whole record slice. Exists to cross-check
    /// [`SpanForest::from_records`] (the two must agree on every input).
    #[must_use]
    pub fn from_records_naive(spans: &[SpanRecord]) -> Self {
        let parent = spans
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.parent_id == 0 {
                    return None;
                }
                // Last match wins, then self-links are rejected — exactly
                // mirroring the index builder's tie-breaking.
                let last = spans
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.span_id == s.parent_id)
                    .map(|(j, _)| j)
                    .next_back();
                match last {
                    Some(p) if p != i => Some(p),
                    _ => None,
                }
            })
            .collect();
        Self::from_parents(spans, parent)
    }

    /// Finishes construction from a resolved parent vector.
    fn from_parents(spans: &[SpanRecord], parent: Vec<Option<usize>>) -> Self {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, p) in parent.iter().enumerate() {
            match p {
                Some(p) => {
                    if let Some(slot) = children.get_mut(*p) {
                        slot.push(i);
                    }
                }
                None => roots.push(i),
            }
        }
        for kids in &mut children {
            kids.sort_by(|&a, &b| Self::child_order(spans, a, b));
        }
        Self {
            parent,
            children,
            roots,
        }
    }

    /// Deterministic child order: open stamp, then span id.
    fn child_order(spans: &[SpanRecord], a: usize, b: usize) -> std::cmp::Ordering {
        let key = |i: usize| spans.get(i).map(|s| (s.start_us(), s.span_id));
        match (key(a), key(b)) {
            (Some((sa, ia)), Some((sb, ib))) => sa.total_cmp(&sb).then(ia.cmp(&ib)),
            _ => std::cmp::Ordering::Equal,
        }
    }

    /// The same-thread parent of node `i`, if it resolved.
    #[must_use]
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent.get(i).copied().flatten()
    }

    /// The children of node `i`, ordered by open stamp then span id.
    #[must_use]
    pub fn children(&self, i: usize) -> &[usize] {
        self.children.get(i).map_or(&[], Vec::as_slice)
    }

    /// Nodes without a resolved parent, in record order.
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Number of nodes (== number of records the forest was built from).
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span_id: u64, parent_id: u64, tid: u64, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            t_us: start + dur,
            tid,
            name: format!("s{span_id}"),
            span_id,
            parent_id,
            dur_us: dur,
        }
    }

    #[test]
    fn links_children_in_open_order() {
        // Close order: leaf b, leaf a (opened earlier), root.
        let spans = vec![
            rec(3, 1, 0, 30.0, 10.0), // b
            rec(2, 1, 0, 10.0, 35.0), // a (closes after b)
            rec(1, 0, 0, 0.0, 50.0),  // root
        ];
        let f = SpanForest::from_records(&spans);
        assert_eq!(f.roots(), &[2]);
        assert_eq!(f.children(2), &[1, 0], "children sorted by open stamp");
        assert_eq!(f.parent(0), Some(2));
        assert_eq!(f.parent(2), None);
    }

    #[test]
    fn orphans_become_roots() {
        let spans = vec![rec(5, 99, 0, 0.0, 1.0)];
        let f = SpanForest::from_records(&spans);
        assert_eq!(f.roots(), &[0]);
        assert_eq!(f.parent(0), None);
    }

    #[test]
    fn naive_reference_agrees() {
        let spans = vec![
            rec(4, 2, 1, 12.0, 3.0),
            rec(3, 1, 0, 30.0, 10.0),
            rec(2, 1, 0, 10.0, 35.0),
            rec(6, 0, 1, 11.0, 9.0),
            rec(1, 0, 0, 0.0, 50.0),
            rec(9, 7, 0, 1.0, 1.0), // orphan
        ];
        assert_eq!(
            SpanForest::from_records(&spans),
            SpanForest::from_records_naive(&spans)
        );
    }

    #[test]
    fn self_parent_is_rejected() {
        let spans = vec![rec(1, 1, 0, 0.0, 1.0)];
        let f = SpanForest::from_records(&spans);
        assert_eq!(f.parent(0), None);
        assert_eq!(f.roots(), &[0]);
    }
}
