//! Parsing `DWV_TRACE` JSONL streams into typed records.
//!
//! The stream is the one `dwv-obs` emits: one self-contained JSON object
//! per line with the reserved fields `t_us` / `tid` / `kind` / `name`.
//! Only three kinds matter to the analyzer — `span` (a closed span with
//! identity and timing), `event`, and `snapshot` (whose counter totals
//! carry the verifier tier bill); any other kind is preserved in the line
//! count but otherwise ignored, so the format can grow without breaking
//! old analyzers.
//!
//! Parsing is embarrassingly parallel (one line at a time) and the
//! assembly step folds results back **in input order**, so
//! [`parse_trace_pooled`] is byte-for-byte equivalent to [`parse_trace`]
//! at every worker-pool width.

use dwv_obs::json::{parse, JsonValue};
use std::collections::BTreeMap;

/// One `kind == "span"` line: a closed span with identity and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Close stamp, microseconds since the trace epoch (spans are emitted
    /// at close, so stream order is close order).
    pub t_us: f64,
    /// Small dense id of the emitting thread.
    pub tid: u64,
    /// The span name given at the instrumentation site.
    pub name: String,
    /// Process-unique span id (never 0 in a well-formed trace).
    pub span_id: u64,
    /// Id of the enclosing span on the opening thread; 0 for roots.
    pub parent_id: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: f64,
}

impl SpanRecord {
    /// Estimated open stamp. The open instant and the close stamp come
    /// from separate clock reads, so this is exact up to a few
    /// microseconds of jitter.
    #[must_use]
    pub fn start_us(&self) -> f64 {
        self.t_us - self.dur_us
    }

    /// Close stamp (alias of `t_us`, for symmetry with
    /// [`SpanRecord::start_us`]).
    #[must_use]
    pub fn end_us(&self) -> f64 {
        self.t_us
    }
}

/// Everything the analyzer keeps from one trace stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Span records in stream order (close order).
    pub spans: Vec<SpanRecord>,
    /// Counter totals from the **last** `snapshot` line, by name.
    pub counters: BTreeMap<String, f64>,
    /// `event` line names, in stream order.
    pub events: Vec<String>,
    /// Non-empty lines seen (parsed or skipped by kind).
    pub lines: usize,
}

/// One classified line.
enum Parsed {
    Span(SpanRecord),
    Event(String),
    Snapshot(BTreeMap<String, f64>),
    Other,
}

/// Parses one JSONL line into a classified record.
fn parse_line(line: &str) -> Result<Parsed, String> {
    let v = parse(line)?;
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string field 'kind'".to_string())?;
    match kind {
        "span" => {
            let num = |key: &str| {
                v.get(key)
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| format!("span without numeric field '{key}'"))
            };
            let name = v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "span without string field 'name'".to_string())?;
            Ok(Parsed::Span(SpanRecord {
                t_us: num("t_us")?,
                tid: num("tid")? as u64,
                name: name.to_string(),
                span_id: num("span_id")? as u64,
                parent_id: num("parent_id")? as u64,
                dur_us: num("dur_us")?,
            }))
        }
        "event" => {
            let name = v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "event without string field 'name'".to_string())?;
            Ok(Parsed::Event(name.to_string()))
        }
        "snapshot" => {
            let counters = v
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(JsonValue::as_object)
                .ok_or_else(|| "snapshot without metrics.counters".to_string())?;
            let mut out = BTreeMap::new();
            for (k, val) in counters {
                if let Some(n) = val.as_number() {
                    out.insert(k.clone(), n);
                }
            }
            Ok(Parsed::Snapshot(out))
        }
        _ => Ok(Parsed::Other),
    }
}

/// Folds classified lines (already in input order) into [`TraceData`].
fn assemble(parsed: Vec<Result<Parsed, String>>) -> Result<TraceData, String> {
    let mut data = TraceData::default();
    for (lineno, p) in parsed.into_iter().enumerate() {
        data.lines += 1;
        match p.map_err(|e| format!("line {}: {e}", lineno + 1))? {
            Parsed::Span(s) => data.spans.push(s),
            Parsed::Event(name) => data.events.push(name),
            Parsed::Snapshot(counters) => data.counters = counters,
            Parsed::Other => {}
        }
    }
    Ok(data)
}

/// The non-empty lines of a JSONL stream.
fn nonempty(text: &str) -> Vec<&str> {
    text.lines().filter(|l| !l.trim().is_empty()).collect()
}

/// Parses a whole JSONL stream serially.
///
/// # Errors
///
/// The first malformed line, with its 1-based line number (counted over
/// non-empty lines).
pub fn parse_trace(text: &str) -> Result<TraceData, String> {
    assemble(nonempty(text).iter().map(|l| parse_line(l)).collect())
}

/// Parses a whole JSONL stream with per-line work fanned out on `pool`.
///
/// Byte-for-byte equivalent to [`parse_trace`] at any pool width: lines
/// are classified independently and folded back in input order.
///
/// # Errors
///
/// The first malformed line, with its 1-based line number (counted over
/// non-empty lines).
pub fn parse_trace_pooled(text: &str, pool: &dwv_core::WorkerPool) -> Result<TraceData, String> {
    let lines = nonempty(text);
    assemble(pool.map(&lines, |l| parse_line(l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"t_us\":10,\"tid\":0,\"kind\":\"span\",\"name\":\"a\",\"span_id\":2,\"parent_id\":1,\"dur_us\":4.0}\n",
        "\n",
        "{\"t_us\":20,\"tid\":0,\"kind\":\"event\",\"name\":\"e\",\"v\":1.0}\n",
        "{\"t_us\":30,\"tid\":0,\"kind\":\"span\",\"name\":\"b\",\"span_id\":1,\"parent_id\":0,\"dur_us\":25.0}\n",
        "{\"t_us\":40,\"tid\":0,\"kind\":\"snapshot\",\"name\":\"metrics\",\"metrics\":{\"counters\":{\"x\":3.0},\"gauges\":{},\"histograms\":{}}}\n",
    );

    #[test]
    fn parses_spans_events_and_counters() {
        let data = parse_trace(SAMPLE).expect("parses");
        assert_eq!(data.lines, 4);
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.spans[0].name, "a");
        assert_eq!(data.spans[0].start_us(), 6.0);
        assert_eq!(data.spans[1].span_id, 1);
        assert_eq!(data.events, vec!["e".to_string()]);
        assert_eq!(data.counters.get("x"), Some(&3.0));
    }

    #[test]
    fn pooled_parse_matches_serial_at_any_width() {
        let serial = parse_trace(SAMPLE).expect("parses");
        for threads in [1, 2, 4, 8] {
            let pool = dwv_core::WorkerPool::new(threads).force_parallel();
            let pooled = parse_trace_pooled(SAMPLE, &pool).expect("parses");
            assert_eq!(pooled, serial, "width {threads}");
        }
    }

    #[test]
    fn bad_lines_are_reported_with_their_number() {
        let err = parse_trace("{\"kind\":\"span\"}").expect_err("rejects");
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_trace("not json").expect_err("rejects");
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn unknown_kinds_are_skipped_not_fatal() {
        let data =
            parse_trace("{\"t_us\":1,\"tid\":0,\"kind\":\"flight\",\"name\":\"x\"}").expect("ok");
        assert_eq!(data.lines, 1);
        assert!(data.spans.is_empty());
    }
}
