//! Micro-benchmarks of the substrate layers: how the verifier cost
//! decomposes into geometry, polynomial arithmetic, Taylor-model flow steps,
//! network abstraction and optimal transport.

use criterion::{criterion_group, criterion_main, Criterion};
use dwv_dynamics::NnController;
use dwv_geom::ConvexPolygon;
use dwv_interval::IntervalBox;
use dwv_metrics::ot;
use dwv_nn::{Activation, Network};
use dwv_poly::Polynomial;
use dwv_reach::{NnAbstraction, TaylorAbstraction};
use dwv_taylor::{unit_domain, OdeIntegrator, OdeRhs, TmVector};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    // Polygon clipping (the linear verifier's kernel).
    {
        let a = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(0.0, 2.0), (0.0, 2.0)]));
        let b = ConvexPolygon::from_box(&IntervalBox::from_bounds(&[(1.0, 3.0), (1.0, 3.0)]));
        c.bench_function("geom_polygon_intersect", |bch| {
            bch.iter(|| black_box(a.intersect(&b)))
        });
    }
    // Polynomial multiplication (the TM arithmetic kernel).
    {
        let x = Polynomial::var(3, 0);
        let y = Polynomial::var(3, 1);
        let z = Polynomial::var(3, 2);
        let p = x.clone() * y.clone() + z.clone() * z.clone() - x.clone() + y.clone() * z;
        let q = p.clone() * p.clone();
        c.bench_function("poly_mul_deg4", |bch| {
            bch.iter(|| black_box(p.clone() * q.clone()))
        });
    }
    // One validated flow step of the Van der Pol field.
    {
        let rhs = vdp_rhs();
        let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]));
        let u = TmVector::new(vec![dwv_taylor::TaylorModel::constant(2, 0.1)]);
        let integ = OdeIntegrator::with_order(3);
        c.bench_function("taylor_flow_step_vdp", |bch| {
            bch.iter(|| black_box(integ.flow_step(&x0, &u, &rhs, 0.1, &unit_domain(2))))
        });
    }
    // POLAR abstraction of a 2-8-1 network.
    {
        let ctrl = NnController::new(Network::new(
            &[2, 8, 1],
            Activation::ReLU,
            Activation::Tanh,
            3,
        ));
        let state = TmVector::from_box(&IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]));
        let abs = TaylorAbstraction::default();
        c.bench_function("polar_abstraction_2_8_1", |bch| {
            bch.iter(|| black_box(abs.abstract_network(&ctrl, &state, &unit_domain(2))))
        });
    }
    // Exact OT on 32-point clouds (the Wasserstein metric's kernel).
    {
        let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        let ys: Vec<Vec<f64>> = (0..32).map(|i| vec![1.0, i as f64 * 0.1]).collect();
        let cost = ot::euclidean_cost(&xs, &ys);
        c.bench_function("ot_hungarian_32", |bch| {
            bch.iter(|| black_box(ot::hungarian(&cost)))
        });
    }
    // Network forward + backward (the baselines' kernel).
    {
        let net = Network::new(&[4, 32, 32, 1], Activation::ReLU, Activation::Identity, 3);
        let x = [0.1, -0.2, 0.3, -0.4];
        c.bench_function("nn_forward_backward_4_32_32_1", |bch| {
            bch.iter(|| black_box(net.gradient(&x, &[1.0])))
        });
    }
}

fn vdp_rhs() -> OdeRhs {
    let x1 = Polynomial::var(3, 0);
    let x2 = Polynomial::var(3, 1);
    let u = Polynomial::var(3, 2);
    OdeRhs::new(
        2,
        1,
        vec![
            x2.clone(),
            x2.clone() - x1.clone() * x1.clone() * x2 - x1 + u,
        ],
    )
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
