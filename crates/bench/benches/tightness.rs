//! §4 tightness discussion: per-call cost of tight vs loose verification.
//!
//! The paper observes that tighter reachable-set computation costs more per
//! verifier call but can reduce the number of learning iterations. This
//! bench quantifies the per-call side on the oscillator across the three
//! tightness presets (the iteration side is measured by
//! `repro tightness`).

use criterion::{criterion_group, criterion_main, Criterion};
use dwv_dynamics::NnController;
use dwv_nn::{Activation, Network};
use dwv_reach::{TaylorAbstraction, TaylorReach, TaylorReachConfig};
use std::hint::black_box;

fn bench_tightness(c: &mut Criterion) {
    let mut g = c.benchmark_group("tightness_per_call");
    g.sample_size(15);
    let osc = dwv_dynamics::oscillator::reach_avoid_problem();
    let ctrl = NnController::new(Network::new(
        &[2, 8, 1],
        Activation::ReLU,
        Activation::Tanh,
        3,
    ));
    for (name, cfg) in [
        ("loose", TaylorReachConfig::loose()),
        ("default", TaylorReachConfig::default()),
        ("tight", TaylorReachConfig::tight()),
    ] {
        let verifier = TaylorReach::new(&osc, TaylorAbstraction::with_order(2), cfg);
        g.bench_function(name, |b| b.iter(|| black_box(verifier.reach(&ctrl))));
    }
    g.finish();
}

criterion_group!(benches, bench_tightness);
criterion_main!(benches);
