//! Table 2: verifier cost per learning iteration, as Criterion benchmarks.
//!
//! The paper's Table 2 reports the average wall-clock of one learning
//! iteration for each system/verifier pairing. An iteration's cost is
//! dominated by its verifier calls, so we benchmark one full verifier
//! invocation per pairing on a representative controller. Expected shape
//! (not absolute values): `ACC(Flow*) ≪ {Os,3D}(POLAR) < {Os,3D}(ReachNN)`.

use criterion::{criterion_group, criterion_main, Criterion};
use dwv_core::WorkerPool;
use dwv_dynamics::{LinearController, NnController};
use dwv_nn::{Activation, Network};
use dwv_reach::{
    BernsteinAbstraction, DependencyTracking, LinearReach, TaylorAbstraction, TaylorReach,
    TaylorReachConfig,
};
use std::hint::black_box;

fn nn_controller(n: usize, scale: f64) -> NnController {
    NnController::with_output_scale(
        Network::new(&[n, 8, 1], Activation::ReLU, Activation::Tanh, 3),
        scale,
    )
}

fn box_cfg() -> TaylorReachConfig {
    TaylorReachConfig {
        dependency: DependencyTracking::BoxReinit,
        ..TaylorReachConfig::default()
    }
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_verifier_call");
    g.sample_size(20);

    let acc = dwv_dynamics::acc::reach_avoid_problem();
    let linear = LinearReach::for_problem(&acc).expect("affine");
    let gain = LinearController::new(2, 1, vec![0.5867, -2.0]);
    g.bench_function("acc_flowstar", |b| {
        b.iter(|| black_box(linear.reach(&gain).expect("stable")))
    });

    let osc = dwv_dynamics::oscillator::reach_avoid_problem();
    let osc_ctrl = nn_controller(2, 1.0);
    let osc_polar = TaylorReach::new(&osc, TaylorAbstraction::with_order(2), box_cfg());
    g.bench_function("oscillator_polar", |b| {
        b.iter(|| black_box(osc_polar.reach(&osc_ctrl)))
    });
    let osc_bern = TaylorReach::new(&osc, BernsteinAbstraction::with_degree(2), box_cfg());
    g.bench_function("oscillator_reachnn", |b| {
        b.iter(|| black_box(osc_bern.reach(&osc_ctrl)))
    });

    let td = dwv_dynamics::three_dim::reach_avoid_problem();
    let td_ctrl = nn_controller(3, 2.0);
    let td_polar = TaylorReach::new(&td, TaylorAbstraction::with_order(2), box_cfg());
    g.bench_function("three_dim_polar", |b| {
        b.iter(|| black_box(td_polar.reach(&td_ctrl)))
    });
    let td_bern = TaylorReach::new(&td, BernsteinAbstraction::with_degree(2), box_cfg());
    g.bench_function("three_dim_reachnn", |b| {
        b.iter(|| black_box(td_bern.reach(&td_ctrl)))
    });

    g.finish();
}

/// The whole Table-2 verifier sweep as one unit of work, run serially and
/// fanned out on the worker pool. On a multi-core host the pool overlaps the
/// per-pairing verifier calls; on one core it degenerates to the serial
/// loop (same results either way — each task is independent).
fn bench_table2_sweep(c: &mut Criterion) {
    type Task = Box<dyn Fn() + Sync>;

    let acc = dwv_dynamics::acc::reach_avoid_problem();
    let linear = LinearReach::for_problem(&acc).expect("affine");
    let gain = LinearController::new(2, 1, vec![0.5867, -2.0]);
    let osc = dwv_dynamics::oscillator::reach_avoid_problem();
    let osc_ctrl = nn_controller(2, 1.0);
    let osc_polar = TaylorReach::new(&osc, TaylorAbstraction::with_order(2), box_cfg());
    let osc_bern = TaylorReach::new(&osc, BernsteinAbstraction::with_degree(2), box_cfg());
    let td = dwv_dynamics::three_dim::reach_avoid_problem();
    let td_ctrl = nn_controller(3, 2.0);
    let td_polar = TaylorReach::new(&td, TaylorAbstraction::with_order(2), box_cfg());

    let tasks: Vec<Task> = vec![
        Box::new(move || {
            black_box(linear.reach(&gain).expect("stable"));
        }),
        Box::new({
            let (v, k) = (osc_polar, osc_ctrl.clone());
            move || {
                black_box(v.reach(&k)).ok();
            }
        }),
        Box::new(move || {
            black_box(osc_bern.reach(&osc_ctrl)).ok();
        }),
        Box::new(move || {
            black_box(td_polar.reach(&td_ctrl)).ok();
        }),
    ];

    let pool = WorkerPool::with_default_threads();
    let mut g = c.benchmark_group("table2_sweep");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            for t in &tasks {
                t();
            }
        })
    });
    g.bench_function("parallel_pool", |b| b.iter(|| pool.map(&tasks, |t| t())));
    g.finish();
}

criterion_group!(benches, bench_table2, bench_table2_sweep);
criterion_main!(benches);
