//! Figures 4–8 as CSV series.
//!
//! The paper's figures are plots; this module regenerates the *data* behind
//! each as CSV text (written to `target/repro/` by the `repro` binary):
//!
//! * Fig. 4 — `d^u_θ`, `d^g_θ` per iteration for ACC with the geometric
//!   metric;
//! * Fig. 5 — `W(r,u)`, `W(r,g)` per iteration for the oscillator with the
//!   Wasserstein metric;
//! * Figs. 6–8 — reach-set flowpipes of Ours(G), Ours(W) and the baselines,
//!   with goal/unsafe rectangles, plus the `X_I` found by Algorithm 2 and
//!   (Fig. 8) flowpipe-divergence events for hard-to-verify baseline
//!   controllers.

use crate::experiments::{run_ddpg, run_ours_linear, run_ours_nn, run_svg, NnSetup};
use dwv_core::{AbstractionKind, MetricKind};
use dwv_dynamics::{NnController, ReachAvoidProblem};
use dwv_reach::{
    DependencyTracking, Flowpipe, LinearReach, TaylorAbstraction, TaylorReach, TaylorReachConfig,
};

/// Fig. 4: learning curves for ACC with the geometric metric.
#[must_use]
pub fn fig4() -> String {
    let res = run_ours_linear(MetricKind::Geometric, 7);
    let mut csv = String::from("figure,iteration,d_unsafe,d_goal,reach_avoid\n");
    for r in res.outcome.trace.records() {
        csv.push_str(&format!(
            "fig4,{},{},{},{}\n",
            r.iteration, r.unsafe_metric, r.goal_metric, r.reach_avoid
        ));
    }
    csv
}

/// Fig. 5: learning curves for the oscillator with the Wasserstein metric.
#[must_use]
pub fn fig5() -> String {
    let res = run_ours_nn(
        NnSetup::Oscillator,
        MetricKind::Wasserstein,
        AbstractionKind::Polar { order: 2 },
        3,
    );
    let mut csv = String::from("figure,iteration,w_unsafe,w_goal,reach_avoid\n");
    for r in res.outcome.trace.records() {
        csv.push_str(&format!(
            "fig5,{},{},{},{}\n",
            r.iteration, r.unsafe_metric, r.goal_metric, r.reach_avoid
        ));
    }
    csv
}

/// Serializes a flowpipe as CSV rows `method,step,t0,t1,lo…,hi…`.
fn flowpipe_csv(method: &str, fp: &Flowpipe) -> String {
    let mut out = String::new();
    for (k, s) in fp.steps().iter().enumerate() {
        let mut row = format!("{method},{k},{},{}", s.t0, s.t1);
        for i in 0..s.enclosure.dim() {
            row.push_str(&format!(
                ",{},{}",
                s.enclosure.interval(i).lo(),
                s.enclosure.interval(i).hi()
            ));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

fn regions_csv(problem: &ReachAvoidProblem) -> String {
    let mut out = String::new();
    for (name, region) in [
        ("goal", &problem.goal_region),
        ("unsafe", &problem.unsafe_region),
    ] {
        let boxed = region.clipped_box(&problem.universe).or_else(|| {
            // Half-space regions (the ACC unsafe set): clip to the universe
            // polygon and report its bounding box.
            (region.dim() == 2)
                .then(|| {
                    region
                        .to_polygon(&problem.universe)
                        .map(|p| p.bounding_box())
                })
                .flatten()
        });
        if let Some(b) = boxed {
            let mut row = format!("{name},-,-,-");
            for i in 0..b.dim() {
                row.push_str(&format!(",{},{}", b.interval(i).lo(), b.interval(i).hi()));
            }
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

/// Fig. 6: ACC reach sets for Ours(G), Ours(W), SVG and DDPG.
#[must_use]
pub fn fig6() -> String {
    let problem = dwv_dynamics::acc::reach_avoid_problem();
    let mut csv = String::from("method,step,t0,t1,bounds...\n");
    csv.push_str(&regions_csv(&problem));
    for metric in [MetricKind::Geometric, MetricKind::Wasserstein] {
        let res = run_ours_linear(metric, 7);
        if let Some(fp) = &res.outcome.flowpipe {
            csv.push_str(&flowpipe_csv(&format!("ours-{metric}"), fp));
        }
    }
    for (name, ctrl) in baseline_controllers(&problem) {
        // Verify the baseline NN policy with the Taylor-model verifier.
        let attempt = TaylorReach::new(
            &problem,
            TaylorAbstraction::default(),
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        )
        .reach(&ctrl);
        match attempt {
            Ok(fp) => csv.push_str(&flowpipe_csv(&name, &fp)),
            Err(e) => csv.push_str(&format!("{name},diverged,-,-,{e}\n")),
        }
    }
    csv
}

/// Fig. 7: oscillator reach sets and `X_I`.
#[must_use]
pub fn fig7() -> String {
    nn_figure(NnSetup::Oscillator)
}

/// Fig. 8: 3-D system reach sets; divergence events are reported inline
/// (the paper's "NAN occurs for the DDPG controller after 3 steps").
#[must_use]
pub fn fig8() -> String {
    nn_figure(NnSetup::ThreeDim)
}

fn nn_figure(setup: NnSetup) -> String {
    let problem = setup.problem();
    let mut csv = String::from("method,step,t0,t1,bounds...\n");
    csv.push_str(&regions_csv(&problem));
    for metric in [MetricKind::Geometric, MetricKind::Wasserstein] {
        let res = run_ours_nn(setup, metric, AbstractionKind::Polar { order: 2 }, 3);
        if let Some(fp) = &res.outcome.flowpipe {
            csv.push_str(&flowpipe_csv(&format!("ours-{metric}"), fp));
        }
        if let Some(cov) = res.xi_coverage {
            csv.push_str(&format!("ours-{metric}-XI,coverage,-,-,{cov}\n"));
        }
    }
    for (name, ctrl) in baseline_controllers(&problem) {
        let attempt = TaylorReach::new(
            &problem,
            TaylorAbstraction::default(),
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        )
        .reach(&ctrl);
        match attempt {
            Ok(fp) => csv.push_str(&flowpipe_csv(&name, &fp)),
            Err(e) => csv.push_str(&format!("{name},diverged,-,-,{e}\n")),
        }
    }
    csv
}

fn baseline_controllers(problem: &ReachAvoidProblem) -> Vec<(String, NnController)> {
    let (svg, _) = run_svg(problem, 3);
    let (ddpg, _) = run_ddpg(problem, 3);
    vec![("svg".to_string(), svg), ("ddpg".to_string(), ddpg)]
}

/// Fig. 6 needs ACC reach sets from the *linear* verifier for "Ours"; this
/// helper re-exports a flowpipe for a given gain (used by integration
/// tests).
#[must_use]
pub fn acc_flowpipe(gains: &[f64]) -> Flowpipe {
    let problem = dwv_dynamics::acc::reach_avoid_problem();
    let verifier = LinearReach::for_problem(&problem).expect("affine");
    verifier
        .reach(&dwv_dynamics::LinearController::new(2, 1, gains.to_vec()))
        .expect("stable gains")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowpipe_csv_row_count() {
        let fp = acc_flowpipe(&[0.5867, -2.0]);
        let csv = flowpipe_csv("m", &fp);
        assert_eq!(csv.lines().count(), fp.len());
        assert!(csv.starts_with("m,0,"));
    }

    #[test]
    fn regions_csv_lists_goal_and_unsafe() {
        let p = dwv_dynamics::acc::reach_avoid_problem();
        let csv = regions_csv(&p);
        assert!(csv.contains("goal"));
        assert!(csv.contains("unsafe"));
    }
}
