//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1-acc        Table 1, ACC rows
//! repro table1-oscillator Table 1, oscillator rows
//! repro table1-three-dim  Table 1, 3-D system rows
//! repro table2            Table 2 (runtime per learning iteration)
//! repro tightness         §4 tightness discussion
//! repro ablation          gradient-estimator ablation (beyond the paper)
//! repro fig4 … fig8       figure data series (CSV to target/repro/)
//! repro all               everything above
//! repro quick             a fast subset (ACC rows + fig4)
//! ```
//!
//! `DWV_TRACE=path` streams a JSONL span trace of the whole run, closed
//! with a metrics snapshot, ready for `dwv-trace <path>`.

use dwv_bench::tables::render_rows;
use dwv_bench::{
    ablation, fig4, fig5, fig6, fig7, fig8, table1_acc, table1_oscillator, table1_three_dim,
    table2, tightness,
};
use std::fs;
use std::path::Path;

fn main() {
    let tracing = dwv_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("quick");
    let out_dir = Path::new("target/repro");
    fs::create_dir_all(out_dir).expect("create output dir");

    match cmd {
        "table1-acc" => print!("{}", render_rows("Table 1 — ACC, Linear", &table1_acc())),
        "table1-oscillator" => print!(
            "{}",
            render_rows("Table 1 — Oscillator, NN", &table1_oscillator())
        ),
        "table1-three-dim" => print!(
            "{}",
            render_rows("Table 1 — 3D systems, NN", &table1_three_dim())
        ),
        "table2" => {
            println!("== Table 2 — average runtime per learning iteration ==");
            for (name, secs) in table2() {
                println!("{name:<14} {secs:.3}s");
            }
        }
        "tightness" => {
            println!("== Tightness (oscillator, POLAR abstraction) ==");
            println!("{:<45} {:>12} {:>6}", "setting", "per-call", "CI");
            for (name, per_call, ci) in tightness() {
                println!(
                    "{name:<45} {per_call:>11.3}s {:>6}",
                    ci.map_or("n/c".to_string(), |v| v.to_string())
                );
            }
        }
        "ablation" => {
            println!("== Ablation — gradient estimator x metric (ACC) ==");
            println!("{:<22} {:>14} {:>16}", "variant", "CI", "verifier calls");
            for (name, cis, calls) in ablation() {
                let mean_calls = calls.iter().sum::<usize>() / calls.len().max(1);
                println!(
                    "{name:<22} {:>14} {mean_calls:>16}",
                    dwv_bench::fmt_ci(&cis)
                );
            }
        }
        "fig4" | "fig5" | "fig6" | "fig7" | "fig8" => {
            let csv = match cmd {
                "fig4" => fig4(),
                "fig5" => fig5(),
                "fig6" => fig6(),
                "fig7" => fig7(),
                _ => fig8(),
            };
            let path = out_dir.join(format!("{cmd}.csv"));
            fs::write(&path, &csv).expect("write figure CSV");
            println!("wrote {} ({} lines)", path.display(), csv.lines().count());
        }
        "all" => {
            print!("{}", render_rows("Table 1 — ACC, Linear", &table1_acc()));
            print!(
                "{}",
                render_rows("Table 1 — Oscillator, NN", &table1_oscillator())
            );
            print!(
                "{}",
                render_rows("Table 1 — 3D systems, NN", &table1_three_dim())
            );
            println!("== Table 2 — average runtime per learning iteration ==");
            for (name, secs) in table2() {
                println!("{name:<14} {secs:.3}s");
            }
            println!("== Tightness ==");
            for (name, per_call, ci) in tightness() {
                println!("{name:<45} {per_call:>11.3}s CI={ci:?}");
            }
            println!("== Ablation — gradient estimator x metric (ACC) ==");
            for (name, cis, calls) in ablation() {
                let mean_calls = calls.iter().sum::<usize>() / calls.len().max(1);
                println!(
                    "{name:<22} {:>14} {mean_calls:>8} calls",
                    dwv_bench::fmt_ci(&cis)
                );
            }
            for (name, csv) in [
                ("fig4", fig4()),
                ("fig5", fig5()),
                ("fig6", fig6()),
                ("fig7", fig7()),
                ("fig8", fig8()),
            ] {
                let path = out_dir.join(format!("{name}.csv"));
                fs::write(&path, &csv).expect("write figure CSV");
                println!("wrote {}", path.display());
            }
        }
        "quick" => {
            print!(
                "{}",
                render_rows("Table 1 — ACC, Linear (quick)", &table1_acc())
            );
            let csv = fig4();
            let path = out_dir.join("fig4.csv");
            fs::write(&path, &csv).expect("write figure CSV");
            println!("wrote {}", path.display());
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "commands: table1-acc table1-oscillator table1-three-dim table2 tightness ablation fig4..fig8 all quick"
            );
            std::process::exit(2);
        }
    }

    if tracing {
        // Close the JSONL stream with a metrics snapshot so dwv-trace can
        // reconcile the per-tier verifier bill from the counters.
        dwv_obs::emit_snapshot();
        dwv_obs::flush();
    }
}
