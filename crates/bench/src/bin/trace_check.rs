//! CI validator for `DWV_TRACE` JSONL traces.
//!
//! ```sh
//! DWV_TRACE=trace.jsonl cargo run --release --example profile_acc
//! cargo run --release -p dwv-bench --bin trace_check trace.jsonl
//! ```
//!
//! Checks that every line is a standalone JSON object carrying the reserved
//! fields (`t_us`, `tid`, `kind`, `name`), that timestamps are monotone
//! non-decreasing per thread, that span lines carry valid `span_id` /
//! `parent_id` fields whose links resolve same-thread with child intervals
//! nested inside their parents (via `dwv_trace::validate_nesting`), and
//! that the trace contains the signals the observability layer promises
//! for a full design-while-verify run: span timings for the `train` /
//! `verify` / `simulate` phases, reach-cache hit/miss counters, and
//! remainder-width metrics. Exits 1 with a diagnostic on any violation.

use dwv_obs::json::{parse, JsonValue};
use std::collections::HashMap;
use std::process::ExitCode;

/// Span names the trace of a full pipeline run must contain.
const REQUIRED_SPANS: &[&str] = &["train", "verify", "simulate"];

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace check: FAIL — {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };

    let mut lines = 0usize;
    let mut span_durations: HashMap<String, f64> = HashMap::new();
    let mut event_names: Vec<String> = Vec::new();
    let mut last_t_per_tid: HashMap<u64, f64> = HashMap::new();
    let mut snapshot: Option<JsonValue> = None;

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let v = match parse(line) {
            Ok(v) => v,
            Err(e) => return fail(&format!("line {}: invalid JSON: {e}", lineno + 1)),
        };
        let Some(t_us) = v.get("t_us").and_then(JsonValue::as_number) else {
            return fail(&format!("line {}: missing numeric t_us", lineno + 1));
        };
        let Some(tid) = v.get("tid").and_then(JsonValue::as_number) else {
            return fail(&format!("line {}: missing numeric tid", lineno + 1));
        };
        let Some(kind) = v.get("kind").and_then(JsonValue::as_str) else {
            return fail(&format!("line {}: missing kind", lineno + 1));
        };
        let Some(name) = v.get("name").and_then(JsonValue::as_str) else {
            return fail(&format!("line {}: missing name", lineno + 1));
        };
        let prev = last_t_per_tid.entry(tid as u64).or_insert(0.0);
        if t_us < *prev {
            return fail(&format!(
                "line {}: t_us {} goes backwards on tid {} (prev {})",
                lineno + 1,
                t_us,
                tid,
                prev
            ));
        }
        *prev = t_us;
        match kind {
            "span" => {
                let Some(dur) = v.get("dur_us").and_then(JsonValue::as_number) else {
                    return fail(&format!("line {}: span without dur_us", lineno + 1));
                };
                if dur < 0.0 {
                    return fail(&format!("line {}: negative span duration", lineno + 1));
                }
                *span_durations.entry(name.to_string()).or_insert(0.0) += dur;
            }
            "event" => event_names.push(name.to_string()),
            "snapshot" => {
                if v.get("metrics").is_none() {
                    return fail(&format!("line {}: snapshot without metrics", lineno + 1));
                }
                snapshot = Some(v.clone());
            }
            other => return fail(&format!("line {}: unknown kind '{other}'", lineno + 1)),
        }
    }

    if lines == 0 {
        return fail("trace is empty");
    }
    // Strict span identity and nesting, via the analyzer crate: every span
    // line must carry span_id / parent_id (the parser rejects lines
    // without them), ids must be unique, parents must resolve on the same
    // thread, and child intervals must sit inside their parents'.
    let data = match dwv_trace::parse_trace(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("span identity: {e}")),
    };
    if let Err(e) = dwv_trace::validate_nesting(&data.spans, dwv_trace::NESTING_SLACK_US) {
        return fail(&format!("span nesting: {e}"));
    }
    for required in REQUIRED_SPANS {
        if !span_durations.contains_key(*required) {
            return fail(&format!("no '{required}' span in trace"));
        }
    }
    let Some(snap) = snapshot else {
        return fail("no metrics snapshot line (emit_snapshot was not called)");
    };
    let metrics = snap.get("metrics").expect("checked above");
    let counters = metrics.get("counters");
    let has_counter = |name: &str| {
        counters
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_number)
            .is_some()
    };
    for required in ["reach.cache.hits", "reach.cache.misses"] {
        if !has_counter(required) {
            return fail(&format!("snapshot missing counter '{required}'"));
        }
    }
    let width_hist = metrics.get("histograms").and_then(|h| {
        h.get("alg1.remainder_width")
            .or_else(|| h.get("reach.remainder_width"))
    });
    if width_hist.is_none() {
        return fail("snapshot missing remainder-width histogram");
    }

    println!(
        "trace check: OK — {lines} lines, {} span names, {} events, {} threads",
        span_durations.len(),
        event_names.len(),
        last_t_per_tid.len(),
    );
    let mut phases: Vec<_> = span_durations
        .iter()
        .filter(|(n, _)| REQUIRED_SPANS.contains(&n.as_str()))
        .collect();
    phases.sort_by(|a, b| b.1.total_cmp(a.1));
    for (name, total) in phases {
        println!("  {name:<9} {:.1} ms total", total / 1e3);
    }
    ExitCode::SUCCESS
}
