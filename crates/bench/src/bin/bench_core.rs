//! Core-substrate wall-clock benchmarks with a JSON perf trajectory.
//!
//! Measures the hot paths of the design-while-verify loop — polynomial
//! `mul`/`compose`, one validated Taylor-model flow step, one full ACC
//! Algorithm-1 learning iteration, and an Algorithm-2 style verification
//! sweep (serial vs. parallel) — and writes `BENCH_core.json` at the repo
//! root so future PRs have numbers to regress against.
//!
//! The `baseline` section is the measurement taken at the pre-optimization
//! tree (BTreeMap-keyed `Polynomial`, per-call `binomial`, serial sweep,
//! no reach cache) on this same machine; `current` is measured now.
//!
//! Run with `cargo run --release -p dwv-bench --bin bench_core`.

use dwv_core::parallel::WorkerPool;
use dwv_core::{
    Algorithm1, Algorithm2, GradientEstimator, LearnConfig, MetricKind, SearchStrategy,
};
use dwv_dynamics::{acc, oscillator, LinearController, NnController};
use dwv_nn::{Activation, Network};
use dwv_poly::Polynomial;
use dwv_reach::{TaylorAbstraction, TaylorReach, TaylorReachConfig};
use dwv_taylor::{unit_domain, OdeIntegrator, OdeRhs, TmVector};
use std::hint::black_box;
use std::time::Instant;

/// Baseline medians (seconds/iteration), measured at the pre-optimization
/// tree on the machine that produced the committed `BENCH_core.json`.
/// `f64::NAN` means "not measurable at baseline" (the parallel sweep did not
/// exist before this change).
const BASELINE: &[(&str, f64)] = &[
    ("poly_mul_deg4", 2.4565e-06),
    ("poly_compose_deg4", 2.4994e-05),
    ("taylor_flow_step_vdp", 3.8244e-04),
    ("acc_algorithm1_iteration", 1.3625e-01),
    ("sweep_serial_oscillator", 1.0155e-01),
    ("sweep_parallel_oscillator", f64::NAN),
];

/// Median seconds per call of `f` over `samples` timed samples of
/// `iters` calls each, after one warmup sample.
fn median_time<R>(samples: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for s in 0..=samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let t = start.elapsed().as_secs_f64() / iters as f64;
        if s > 0 {
            times.push(t);
        }
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_poly_mul() -> f64 {
    let x = Polynomial::var(3, 0);
    let y = Polynomial::var(3, 1);
    let z = Polynomial::var(3, 2);
    let p = x.clone() * y.clone() + z.clone() * z.clone() - x.clone() + y.clone() * z;
    let q = p.clone() * p.clone();
    median_time(9, 200, || p.clone() * q.clone())
}

fn bench_poly_compose() -> f64 {
    let x = Polynomial::var(2, 0);
    let y = Polynomial::var(2, 1);
    let p = {
        let b = x.clone() * x.clone() + y.clone() * y.clone() - x.clone() * y.clone();
        b.clone() * b.clone() + b + Polynomial::constant(2, 1.0)
    };
    let s0 = x.clone() * y.clone() + x.clone() - Polynomial::constant(2, 0.5);
    let s1 = y.clone() * y.clone() - x.clone().scale(2.0) + Polynomial::constant(2, 0.25);
    median_time(9, 50, || p.compose(&[s0.clone(), s1.clone()]))
}

fn vdp_rhs() -> OdeRhs {
    let x1 = Polynomial::var(3, 0);
    let x2 = Polynomial::var(3, 1);
    let u = Polynomial::var(3, 2);
    OdeRhs::new(
        2,
        1,
        vec![
            x2.clone(),
            x2.clone() - x1.clone() * x1.clone() * x2 - x1 + u,
        ],
    )
}

fn bench_flow_step() -> f64 {
    let rhs = vdp_rhs();
    let x0 = TmVector::from_box(&dwv_interval::IntervalBox::from_bounds(&[
        (-0.51, -0.49),
        (0.49, 0.51),
    ]));
    let u = TmVector::new(vec![dwv_taylor::TaylorModel::constant(2, 0.1)]);
    let integ = OdeIntegrator::with_order(3);
    median_time(9, 20, || {
        integ.flow_step(&x0, &u, &rhs, 0.1, &unit_domain(2))
    })
}

fn bench_acc_algorithm1_iteration() -> f64 {
    // One update iteration of Algorithm 1 on ACC from a fixed (non-verifying)
    // start: initial evaluation + coordinate-difference gradient (2·dim
    // verifier calls) + candidate evaluation + final judgement. Runs with
    // the reach-result memo cache attached (as the optimized loop does); the
    // cache is fresh per timed call, so only genuine within-run repeats —
    // the next iteration's re-evaluation and the final judgement — hit.
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .estimator(GradientEstimator::Coordinate)
        .max_updates(1)
        .seed(7)
        .build();
    let init = LinearController::new(2, 1, vec![0.2, -0.5]);
    median_time(5, 3, || {
        let alg = Algorithm1::new(acc::reach_avoid_problem(), config.clone())
            .with_cache(std::sync::Arc::new(dwv_reach::ReachCache::new()));
        alg.learn_linear_from(init.clone()).expect("affine problem")
    })
}

fn sweep_setup() -> (
    dwv_dynamics::ReachAvoidProblem,
    TaylorReach<TaylorAbstraction>,
    NnController,
) {
    let mut problem = oscillator::reach_avoid_problem();
    problem.horizon_steps = 6;
    let verifier = TaylorReach::new(
        &problem,
        TaylorAbstraction::default(),
        TaylorReachConfig::default(),
    );
    let ctrl = NnController::new(Network::new(
        &[2, 8, 1],
        Activation::ReLU,
        Activation::Tanh,
        3,
    ));
    (problem, verifier, ctrl)
}

fn sweep_algorithm(problem: &dwv_dynamics::ReachAvoidProblem) -> Algorithm2 {
    // Uniform refinement: rounds of 1, 4 and 16 cells in 2-D — wide enough
    // batches for the pool to bite.
    Algorithm2::new(problem)
        .with_strategy(SearchStrategy::UniformRefinement)
        .with_max_rounds(2)
}

fn bench_sweep_serial() -> f64 {
    let (problem, verifier, ctrl) = sweep_setup();
    median_time(3, 1, || {
        sweep_algorithm(&problem)
            .search(|cell| verifier.clone().with_initial_set(cell.clone()).reach(&ctrl))
    })
}

fn bench_sweep_parallel() -> f64 {
    let (problem, verifier, ctrl) = sweep_setup();
    let pool = WorkerPool::with_default_threads();
    median_time(3, 1, || {
        sweep_algorithm(&problem).search_parallel(
            |cell| verifier.clone().with_initial_set(cell.clone()).reach(&ctrl),
            &pool,
        )
    })
}

fn fmt_secs(t: f64) -> String {
    if t.is_nan() {
        "null".to_string()
    } else {
        format!("{t:.4e}")
    }
}

fn main() {
    let measurements: Vec<(&str, f64)> = vec![
        ("poly_mul_deg4", bench_poly_mul()),
        ("poly_compose_deg4", bench_poly_compose()),
        ("taylor_flow_step_vdp", bench_flow_step()),
        ("acc_algorithm1_iteration", bench_acc_algorithm1_iteration()),
        ("sweep_serial_oscillator", bench_sweep_serial()),
        ("sweep_parallel_oscillator", bench_sweep_parallel()),
    ];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"_comment\": \"seconds per call (median); baseline = pre-optimization tree (BTreeMap Polynomial, per-call binomial, serial sweep); on a 1-CPU host the parallel sweep degenerates to serial by design\",\n");
    out.push_str("  \"units\": \"seconds_per_iteration\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        WorkerPool::with_default_threads().threads()
    ));
    out.push_str("  \"baseline\": {\n");
    for (i, (name, t)) in BASELINE.iter().enumerate() {
        let sep = if i + 1 == BASELINE.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {}{sep}\n", fmt_secs(*t)));
    }
    out.push_str("  },\n  \"current\": {\n");
    for (i, (name, t)) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {}{sep}\n", fmt_secs(*t)));
    }
    out.push_str("  },\n  \"speedup\": {\n");
    for (i, (name, t)) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        let base = BASELINE
            .iter()
            .find(|(n, _)| n == name)
            .map_or(f64::NAN, |(_, b)| *b);
        let ratio = base / t;
        let rendered = if ratio.is_nan() {
            "null".to_string()
        } else {
            format!("{ratio:.2}")
        };
        out.push_str(&format!("    \"{name}\": {rendered}{sep}\n"));
    }
    out.push_str("  }\n}\n");

    print!("{out}");
    std::fs::write("BENCH_core.json", &out).expect("write BENCH_core.json");
    eprintln!("wrote BENCH_core.json");
}
