//! Core-substrate wall-clock benchmarks with a JSON perf trajectory.
//!
//! Measures the hot paths of the design-while-verify loop — polynomial
//! `mul`/`compose`, one validated Taylor-model flow step, one full ACC
//! Algorithm-1 learning iteration, an NN-abstraction layer propagation, a
//! Bernstein range enclosure, and an Algorithm-2 style verification sweep
//! (serial vs. parallel) — and writes `BENCH_core.json` at the repo root so
//! future PRs have numbers to regress against.
//!
//! The `baseline` section is the measurement taken at the pre-zero-copy
//! tree (functional Taylor-model ops allocating per call, no workspace
//! arena, uncached Bernstein ranges, allocating RK4 simulation) on this
//! same machine; `current` is measured now.
//!
//! The `scaling` section re-runs the parallel sweep at 1/2/4/8 pool threads
//! so speedup is visible next to `host_cpus` (on a 1-CPU host every row is
//! serial plus scheduling overhead by design).
//!
//! Run with `cargo run --release -p dwv-bench --bin bench_core`.
//! Run with `--check` to re-measure only `acc_algorithm1_iteration`, the
//! 1-thread scaling row, `portfolio_algorithm1_iteration`,
//! `lint_workspace` and `serve_roundtrip_acc` and fail
//! (exit 1) if any regressed more than 10% against the committed
//! `BENCH_core.json`, if the default-on flight recorder costs more than
//! 10% on either iteration bench, or if the portfolio's tier economy
//! collapses — this is the CI bench-regression guard.

use dwv_core::parallel::WorkerPool;
use dwv_core::{
    Algorithm1, Algorithm2, GradientEstimator, LearnConfig, MetricKind, PortfolioMode,
    SearchStrategy,
};
use dwv_dynamics::{acc, oscillator, LinearController, NnController};
use dwv_interval::IntervalBox;
use dwv_nn::{Activation, Network};
use dwv_poly::bernstein::RangeCache;
use dwv_poly::Polynomial;
use dwv_reach::{
    IntervalReach, NnAbstraction, PortfolioStats, TaylorAbstraction, TaylorReach, TaylorReachConfig,
};
use dwv_taylor::{unit_domain, OdeIntegrator, OdeRhs, TmVector, TmWorkspace};
use std::hint::black_box;
use std::time::Instant;

/// Baseline medians (seconds/iteration), measured at the pre-zero-copy tree
/// (the state of the repo after the packed-monomial PR, before workspace
/// arenas / in-place kernels / Bernstein caching / allocation-free RK4) on
/// the machine that produced the committed `BENCH_core.json`.
const BASELINE: &[(&str, f64)] = &[
    ("poly_mul_deg4", 7.5216e-07),
    ("poly_compose_deg4", 7.8219e-06),
    ("taylor_flow_step_vdp", 1.3696e-04),
    ("acc_algorithm1_iteration", 1.2090e-01),
    ("nn_abstraction_acc", 7.5871e-06),
    ("bernstein_range_deg4", 4.3110e-06),
    ("sweep_serial_oscillator", 3.2560e-02),
    ("sweep_parallel_oscillator", 3.2064e-02),
];

/// Median seconds per call of `f` over `samples` timed samples of
/// `iters` calls each, after one warmup sample.
fn median_time<R>(samples: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for s in 0..=samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let t = start.elapsed().as_secs_f64() / iters as f64;
        if s > 0 {
            times.push(t);
        }
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_poly_mul() -> f64 {
    let x = Polynomial::var(3, 0);
    let y = Polynomial::var(3, 1);
    let z = Polynomial::var(3, 2);
    let p = x.clone() * y.clone() + z.clone() * z.clone() - x.clone() + y.clone() * z;
    let q = p.clone() * p.clone();
    median_time(9, 200, || p.clone() * q.clone())
}

fn bench_poly_compose() -> f64 {
    let x = Polynomial::var(2, 0);
    let y = Polynomial::var(2, 1);
    let p = {
        let b = x.clone() * x.clone() + y.clone() * y.clone() - x.clone() * y.clone();
        b.clone() * b.clone() + b + Polynomial::constant(2, 1.0)
    };
    let s0 = x.clone() * y.clone() + x.clone() - Polynomial::constant(2, 0.5);
    let s1 = y.clone() * y.clone() - x.clone().scale(2.0) + Polynomial::constant(2, 0.25);
    median_time(9, 50, || p.compose(&[s0.clone(), s1.clone()]))
}

fn vdp_rhs() -> OdeRhs {
    let x1 = Polynomial::var(3, 0);
    let x2 = Polynomial::var(3, 1);
    let u = Polynomial::var(3, 2);
    OdeRhs::new(
        2,
        1,
        vec![
            x2.clone(),
            x2.clone() - x1.clone() * x1.clone() * x2 - x1 + u,
        ],
    )
}

fn bench_flow_step() -> f64 {
    let rhs = vdp_rhs();
    let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]));
    let u = TmVector::new(vec![dwv_taylor::TaylorModel::constant(2, 0.1)]);
    let integ = OdeIntegrator::with_order(3);
    // Reuse one workspace across timed calls, as the verification loop does.
    let mut ws = TmWorkspace::new();
    median_time(9, 20, move || {
        integ.flow_step_ws(&x0, &u, &rhs, 0.1, &unit_domain(2), &mut ws)
    })
}

fn bench_acc_algorithm1_iteration() -> f64 {
    // One update iteration of Algorithm 1 on ACC from a fixed (non-verifying)
    // start: initial evaluation + coordinate-difference gradient (2·dim
    // verifier calls) + candidate evaluation + final judgement. Runs with
    // the reach-result memo cache attached (as the optimized loop does); the
    // cache is fresh per timed call, so only genuine within-run repeats —
    // the next iteration's re-evaluation and the final judgement — hit.
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .estimator(GradientEstimator::Coordinate)
        .max_updates(1)
        .seed(7)
        .build();
    let init = LinearController::new(2, 1, vec![0.2, -0.5]);
    median_time(5, 3, || {
        let alg = Algorithm1::new(acc::reach_avoid_problem(), config.clone())
            .with_cache(std::sync::Arc::new(dwv_reach::ReachCache::new()));
        alg.learn_linear_from(init.clone()).expect("affine problem")
    })
}

fn bench_interval_reach_acc() -> f64 {
    // One interval-tier flowpipe of the full ACC horizon — the unit cost of
    // the portfolio's fast path, to be read against
    // `acc_algorithm1_iteration`'s exact-tier bill.
    let v = IntervalReach::for_problem(&acc::reach_avoid_problem());
    let k = LinearController::new(2, 1, vec![0.5867, -2.0]);
    median_time(9, 200, move || v.reach(&k))
}

fn bench_portfolio_algorithm1_iteration() -> f64 {
    // The same single Algorithm-1 update as `acc_algorithm1_iteration`, but
    // with the tiered portfolio answering the gradient probes (surrogate
    // mode): the interval/zonotope fast path carries the exploratory
    // queries and the exact tier is consulted only to confirm acceptance.
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .estimator(GradientEstimator::Coordinate)
        .max_updates(1)
        .seed(7)
        .portfolio(PortfolioMode::Surrogate { confirm_every: 5 })
        .build();
    let init = LinearController::new(2, 1, vec![0.2, -0.5]);
    median_time(5, 3, || {
        let alg = Algorithm1::new(acc::reach_avoid_problem(), config.clone());
        alg.learn_linear_from(init.clone()).expect("affine problem")
    })
}

fn bench_nn_abstraction() -> f64 {
    // One Taylor-model abstraction of a [2, 8, 1] ReLU/Tanh controller over
    // an ACC-sized state box — the per-step cost of the POLAR-style layer
    // propagation inside the NN verification loop. Reuses one workspace
    // across calls, as `TaylorReach::reach_from` does.
    let ctrl = NnController::with_output_scale(
        Network::new(&[2, 8, 1], Activation::ReLU, Activation::Tanh, 5),
        10.0,
    );
    let state = TmVector::from_box(&IntervalBox::from_bounds(&[(122.0, 124.0), (48.0, 52.0)]));
    let dom = unit_domain(2);
    let abs = TaylorAbstraction::with_order(3);
    let mut ws = TmWorkspace::new();
    median_time(9, 50, move || {
        abs.abstract_network_ws(&ctrl, &state, &dom, &mut ws)
    })
}

fn bench_bernstein_range() -> f64 {
    // A degree-4 two-variable Bernstein range enclosure through the range
    // cache — the Picard-iteration access pattern, where the same
    // (polynomial, domain) pair recurs across validation attempts.
    let x = Polynomial::var(2, 0);
    let y = Polynomial::var(2, 1);
    let b = x.clone() * x.clone() + y.clone() * y.clone() - x * y;
    let p = b.clone() * b.clone() + b + Polynomial::constant(2, 1.0);
    let bx = IntervalBox::from_bounds(&[(-0.5, 0.5), (0.25, 0.75)]);
    let mut cache = RangeCache::new();
    median_time(9, 500, move || cache.range_enclosure(&p, bx.intervals()))
}

fn bench_lint_workspace() -> f64 {
    // One full interprocedural lint of this workspace on the default pool —
    // the unit cost of the CI lint gate. Sources are read once outside the
    // timer so only lex/parse/analyze/assemble is measured.
    let root =
        dwv_lint::walk::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    let sources = dwv_lint::read_workspace(&root).expect("read workspace sources");
    let zones = dwv_lint::ZoneConfig::default();
    let opts = dwv_lint::EngineOptions::default();
    median_time(5, 1, move || {
        dwv_lint::lint_sources(&sources, &zones, &opts)
    })
}

fn bench_serve_roundtrip() -> f64 {
    // One full wire roundtrip of an ACC verify job against a loopback
    // dwv-serve server: submit, stream to the terminal event, reassemble.
    // The server and connection are set up once outside the timer, so the
    // number is the per-job serving cost (framing + admission + worker
    // dispatch + event streaming) on top of the verification itself —
    // read it against `interval_reach_acc` to see the protocol tax.
    use dwv_serve::{Client, JobKind, JobSpec, ProblemId, ServeConfig, Server};
    let server = Server::start(ServeConfig::default()).expect("loopback server");
    let mut client = Client::connect(server.addr()).expect("connect to loopback server");
    let spec = JobSpec {
        problem: ProblemId::Acc,
        kind: JobKind::VerifyLinear {
            gains: vec![0.5867, -2.0],
            grid: 1,
            samples: 10,
        },
    };
    let mut job_id = 0u64;
    let t = median_time(5, 5, move || {
        job_id += 1;
        client
            .submit(1, job_id, 0, spec.clone())
            .expect("submit verify job");
        client.stream_result(1, job_id).expect("stream verify job")
    });
    server.shutdown();
    t
}

fn sweep_setup() -> (
    dwv_dynamics::ReachAvoidProblem,
    TaylorReach<TaylorAbstraction>,
    NnController,
) {
    let mut problem = oscillator::reach_avoid_problem();
    problem.horizon_steps = 6;
    let verifier = TaylorReach::new(
        &problem,
        TaylorAbstraction::default(),
        TaylorReachConfig::default(),
    );
    let ctrl = NnController::new(Network::new(
        &[2, 8, 1],
        Activation::ReLU,
        Activation::Tanh,
        3,
    ));
    (problem, verifier, ctrl)
}

fn sweep_algorithm(problem: &dwv_dynamics::ReachAvoidProblem) -> Algorithm2 {
    // Uniform refinement: rounds of 1, 4 and 16 cells in 2-D — wide enough
    // batches for the pool to bite.
    Algorithm2::new(problem)
        .with_strategy(SearchStrategy::UniformRefinement)
        .with_max_rounds(2)
}

fn bench_sweep_serial() -> f64 {
    let (problem, verifier, ctrl) = sweep_setup();
    median_time(3, 1, || {
        sweep_algorithm(&problem).search(|cell| verifier.reach_from(cell, &ctrl))
    })
}

fn bench_sweep_parallel() -> f64 {
    let (problem, verifier, ctrl) = sweep_setup();
    let pool = WorkerPool::with_default_threads();
    median_time(3, 1, || {
        sweep_algorithm(&problem).search_parallel(|cell| verifier.reach_from(cell, &ctrl), &pool)
    })
}

/// The thread counts of the scaling matrix.
const SCALING_THREADS: &[usize] = &[1, 2, 4, 8];

/// One parallel-sweep measurement at an explicit pool width.
fn bench_sweep_parallel_at(threads: usize) -> f64 {
    let (problem, verifier, ctrl) = sweep_setup();
    let pool = WorkerPool::new(threads);
    median_time(3, 1, || {
        sweep_algorithm(&problem).search_parallel(|cell| verifier.reach_from(cell, &ctrl), &pool)
    })
}

/// The verification-sweep scaling matrix: the same guided-chunk pool at
/// 1/2/4/8 threads. On a multi-core host the 4-thread row should sit at
/// roughly the core count's speedup over the 1-thread row; on a 1-CPU host
/// every row degenerates to serial (plus scheduling overhead) by design.
fn bench_sweep_scaling() -> Vec<(usize, f64)> {
    SCALING_THREADS
        .iter()
        .map(|&t| (t, bench_sweep_parallel_at(t)))
        .collect()
}

fn fmt_secs(t: f64) -> String {
    if t.is_nan() {
        "null".to_string()
    } else {
        format!("{t:.4e}")
    }
}

/// Reads the recorded value of `key` inside the `section` object of a
/// committed `BENCH_core.json` (naive scan — the file is machine-written,
/// so the first `key` occurrence after `section` is the wanted one).
fn recorded_value(json: &str, section: &str, key: &str) -> Option<f64> {
    let body = json.split(&format!("\"{section}\"")).nth(1)?;
    let after_key = body.split(&format!("\"{key}\":")).nth(1)?;
    after_key
        .split([',', '\n', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// `--check`: re-measure the headline timer and the 1-thread scaling row and
/// fail on a >10% regression against the committed JSON. Returns the process
/// exit code.
fn check_mode() -> i32 {
    // The regression guard measures the tracing-off path: the observability
    // layer must cost nothing here (one relaxed load per instrumentation
    // point), and the 10% threshold enforces that.
    dwv_obs::set_enabled(false);
    assert!(!dwv_obs::enabled(), "bench --check must run tracing-off");
    let json = match std::fs::read_to_string("BENCH_core.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench check: cannot read BENCH_core.json: {e}");
            return 1;
        }
    };
    // Minimum of repeated medians: wall-time noise on a shared host is
    // strictly additive, so the min is the low-variance estimator and keeps
    // the 10% threshold meaningful.
    type Guard = (&'static str, &'static str, &'static str, fn() -> f64);
    let guards: &[Guard] = &[
        (
            "acc_algorithm1_iteration",
            "current",
            "acc_algorithm1_iteration",
            bench_acc_algorithm1_iteration,
        ),
        ("sweep_parallel threads_1", "scaling", "threads_1", || {
            bench_sweep_parallel_at(1)
        }),
        (
            "portfolio_algorithm1_iteration",
            "current",
            "portfolio_algorithm1_iteration",
            bench_portfolio_algorithm1_iteration,
        ),
        (
            "lint_workspace",
            "current",
            "lint_workspace",
            bench_lint_workspace,
        ),
        (
            "serve_roundtrip_acc",
            "current",
            "serve_roundtrip_acc",
            bench_serve_roundtrip,
        ),
    ];
    for (label, section, key, bench) in guards {
        let Some(recorded) = recorded_value(&json, section, key) else {
            eprintln!("bench check: no {section}.{key} in BENCH_core.json");
            return 1;
        };
        let measured = (0..3).map(|_| bench()).fold(f64::INFINITY, f64::min);
        let ratio = measured / recorded;
        eprintln!(
            "bench check: {label} measured {measured:.4e} s, \
             recorded {recorded:.4e} s (x{ratio:.2})"
        );
        if ratio > 1.10 {
            eprintln!("bench check: FAIL — {label} regressed more than 10% vs the recorded number");
            return 1;
        }
    }
    // Flight-recorder overhead: the ring is on by default in every binary,
    // so its cost on the hot loop must stay within the same 10% envelope
    // (tracing stays off in both arms; only the recorder toggles).
    type FlightGuard = (&'static str, fn() -> f64);
    let flight_guards: &[FlightGuard] = &[
        ("acc_algorithm1_iteration", bench_acc_algorithm1_iteration),
        (
            "portfolio_algorithm1_iteration",
            bench_portfolio_algorithm1_iteration,
        ),
    ];
    for (label, bench) in flight_guards {
        dwv_obs::set_flight_enabled(false);
        let off = (0..3).map(|_| bench()).fold(f64::INFINITY, f64::min);
        dwv_obs::set_flight_enabled(true);
        let on = (0..3).map(|_| bench()).fold(f64::INFINITY, f64::min);
        let ratio = on / off;
        eprintln!(
            "bench check: flight recorder on {label}: on {on:.4e} s, \
             off {off:.4e} s (x{ratio:.2})"
        );
        if ratio > 1.10 {
            eprintln!("bench check: FAIL — the flight recorder costs more than 10% on {label}");
            return 1;
        }
    }
    // Tier economy: the whole point of the portfolio is a smaller rigorous
    // bill. A certified ACC run whose cheap tiers stop carrying at least
    // 5x the rigorous tier's call count has lost the optimization.
    let bill = portfolio_bill();
    let (cheap, rigorous) = (bill.cheap_calls(), bill.rigorous_calls());
    eprintln!(
        "bench check: portfolio bill cheap {cheap}, rigorous {rigorous} \
         (rigorous-only baseline {})",
        bill.rigorous_only_learn_calls
    );
    if rigorous == 0 || cheap < 5 * rigorous {
        eprintln!("bench check: FAIL — cheap tiers must carry >= 5x the rigorous call count");
        return 1;
    }
    eprintln!("bench check: OK");
    0
}

/// One short ACC learning run with the reach-result memo attached — the
/// workload behind both untimed reporting passes below.
fn acc_learn_with_cache() -> std::sync::Arc<dwv_reach::ReachCache> {
    let config = LearnConfig::builder()
        .metric(MetricKind::Geometric)
        .estimator(GradientEstimator::Coordinate)
        .max_updates(3)
        .seed(7)
        .build();
    let cache = std::sync::Arc::new(dwv_reach::ReachCache::new());
    let alg = Algorithm1::new(acc::reach_avoid_problem(), config)
        .with_cache(std::sync::Arc::clone(&cache));
    black_box(
        alg.learn_linear_from(LinearController::new(2, 1, vec![0.2, -0.5]))
            .expect("affine problem"),
    );
    cache
}

/// Cache hit/miss/eviction counters from real (untimed) runs. These use
/// the caches' intrinsic counters, so the numbers are available — and
/// reported — even with tracing disabled.
fn cache_stats_section() -> String {
    let reach = acc_learn_with_cache().stats();
    // The Bernstein range memo under the Picard access pattern: one
    // workspace threaded through repeated flow steps of the same problem.
    let rhs = vdp_rhs();
    let x0 = TmVector::from_box(&IntervalBox::from_bounds(&[(-0.51, -0.49), (0.49, 0.51)]));
    let u = TmVector::new(vec![dwv_taylor::TaylorModel::constant(2, 0.1)]);
    let integ = OdeIntegrator {
        bernstein_ranges: true,
        ..OdeIntegrator::with_order(3)
    };
    let mut ws = TmWorkspace::new();
    for _ in 0..10 {
        black_box(integ.flow_step_ws(&x0, &u, &rhs, 0.1, &unit_domain(2), &mut ws)).ok();
    }
    let range = ws.bern.stats();
    let mut out = String::from("  \"cache_stats\": {\n");
    out.push_str(&format!(
        "    \"reach_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.3}}},\n",
        reach.hits,
        reach.misses,
        reach.evictions,
        reach.hit_rate(),
    ));
    out.push_str(&format!(
        "    \"range_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.3}}}\n",
        range.hits,
        range.misses,
        range.evictions,
        range.hit_rate(),
    ));
    out.push_str("  }");
    out
}

/// The per-tier verifier bill of one full ACC design-while-verify run in
/// surrogate mode, next to the rigorous-only baseline's call count.
struct PortfolioBill {
    tiers: Vec<&'static str>,
    learn: PortfolioStats,
    sweep: PortfolioStats,
    rigorous_only_learn_calls: usize,
}

impl PortfolioBill {
    /// Rigorous-tier executions across learning and the certification sweep.
    fn rigorous_calls(&self) -> u64 {
        self.learn.calls_by_tier.last().copied().unwrap_or(0)
            + self.sweep.calls_by_tier.last().copied().unwrap_or(0)
    }

    /// Cheap-tier executions across learning and the certification sweep.
    fn cheap_calls(&self) -> u64 {
        let cheap = |s: &PortfolioStats| -> u64 { s.calls_by_tier.iter().rev().skip(1).sum() };
        cheap(&self.learn) + cheap(&self.sweep)
    }
}

/// Runs the ACC pipeline twice — tiered and rigorous-only — and collects
/// the call accounting the `verifier_calls_by_tier` section and the
/// `--check` tier-economy guard both read.
fn portfolio_bill() -> PortfolioBill {
    let cfg = |mode| {
        LearnConfig::builder()
            .metric(MetricKind::Geometric)
            .max_updates(200)
            .seed(7)
            .portfolio(mode)
            .build()
    };
    let tiered = dwv_core::design_while_verify_linear(
        acc::reach_avoid_problem(),
        cfg(PortfolioMode::Surrogate { confirm_every: 5 }),
    )
    .expect("affine problem");
    let baseline =
        dwv_core::design_while_verify_linear(acc::reach_avoid_problem(), cfg(PortfolioMode::Off))
            .expect("affine problem");
    let tiers = Algorithm1::new(acc::reach_avoid_problem(), cfg(PortfolioMode::Off))
        .linear_portfolio()
        .expect("affine problem")
        .tier_names();
    PortfolioBill {
        tiers,
        learn: tiered.learning.portfolio.unwrap_or_default(),
        sweep: tiered.sweep_portfolio.unwrap_or_default(),
        rigorous_only_learn_calls: baseline.learning.trace.total_verifier_calls(),
    }
}

/// The `verifier_calls_by_tier` section: where the verifier bill of one
/// certified ACC run actually lands, tier by tier, against the rigorous-only
/// baseline's bill for the same seed.
fn verifier_calls_section() -> String {
    let bill = portfolio_bill();
    let stats = |s: &PortfolioStats| {
        format!(
            "{{\"calls\": {:?}, \"escalations\": {}, \"decided_cheap\": {}}}",
            s.calls_by_tier, s.escalations, s.decided_cheap
        )
    };
    let tiers = bill
        .tiers
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let rigorous = bill.rigorous_calls();
    let reduction = if rigorous == 0 {
        "null".to_string()
    } else {
        format!(
            "{:.2}",
            bill.rigorous_only_learn_calls as f64 / rigorous as f64
        )
    };
    let mut out = String::from("  \"verifier_calls_by_tier\": {\n");
    out.push_str(&format!("    \"tiers\": [{tiers}],\n"));
    out.push_str(&format!("    \"learn\": {},\n", stats(&bill.learn)));
    out.push_str(&format!("    \"sweep\": {},\n", stats(&bill.sweep)));
    out.push_str(&format!("    \"cheap_calls\": {},\n", bill.cheap_calls()));
    out.push_str(&format!("    \"rigorous_calls\": {rigorous},\n"));
    out.push_str(&format!(
        "    \"rigorous_only_baseline_calls\": {},\n",
        bill.rigorous_only_learn_calls
    ));
    out.push_str(&format!("    \"rigorous_call_reduction\": {reduction}\n"));
    out.push_str("  }");
    out
}

/// An untimed pass with tracing enabled: the full metrics snapshot of one
/// ACC learning run, embedded as the `metrics` section. Runs after every
/// timed measurement so the enabled flag never overlaps a timer.
fn metrics_section() -> String {
    dwv_obs::reset();
    dwv_obs::set_enabled(true);
    let _ = acc_learn_with_cache();
    dwv_obs::set_enabled(false);
    format!("  \"metrics\": {}", dwv_obs::snapshot().to_json())
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(check_mode());
    }
    dwv_obs::set_enabled(false);
    let measurements: Vec<(&str, f64)> = vec![
        ("poly_mul_deg4", bench_poly_mul()),
        ("poly_compose_deg4", bench_poly_compose()),
        ("taylor_flow_step_vdp", bench_flow_step()),
        ("acc_algorithm1_iteration", bench_acc_algorithm1_iteration()),
        ("interval_reach_acc", bench_interval_reach_acc()),
        (
            "portfolio_algorithm1_iteration",
            bench_portfolio_algorithm1_iteration(),
        ),
        ("nn_abstraction_acc", bench_nn_abstraction()),
        ("bernstein_range_deg4", bench_bernstein_range()),
        ("sweep_serial_oscillator", bench_sweep_serial()),
        ("sweep_parallel_oscillator", bench_sweep_parallel()),
        ("lint_workspace", bench_lint_workspace()),
        ("serve_roundtrip_acc", bench_serve_roundtrip()),
    ];
    let scaling = bench_sweep_scaling();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"_comment\": \"seconds per call (median); baseline = pre-zero-copy tree (functional TM ops, no workspace arena, uncached Bernstein ranges, allocating RK4); on a 1-CPU host the parallel sweep degenerates to serial by design\",\n");
    out.push_str("  \"units\": \"seconds_per_iteration\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        WorkerPool::with_default_threads().threads()
    ));
    out.push_str("  \"baseline\": {\n");
    for (i, (name, t)) in BASELINE.iter().enumerate() {
        let sep = if i + 1 == BASELINE.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {}{sep}\n", fmt_secs(*t)));
    }
    out.push_str("  },\n  \"current\": {\n");
    for (i, (name, t)) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {}{sep}\n", fmt_secs(*t)));
    }
    out.push_str("  },\n  \"speedup\": {\n");
    for (i, (name, t)) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        let base = BASELINE
            .iter()
            .find(|(n, _)| n == name)
            .map_or(f64::NAN, |(_, b)| *b);
        let ratio = base / t;
        let rendered = if ratio.is_nan() {
            "null".to_string()
        } else {
            format!("{ratio:.2}")
        };
        out.push_str(&format!("    \"{name}\": {rendered}{sep}\n"));
    }
    out.push_str("  },\n");
    out.push_str("  \"scaling\": {\n    \"sweep_parallel_oscillator\": {\n");
    for (t, secs) in &scaling {
        out.push_str(&format!("      \"threads_{t}\": {},\n", fmt_secs(*secs)));
    }
    let t1 = scaling
        .iter()
        .find(|(t, _)| *t == 1)
        .map_or(f64::NAN, |(_, s)| *s);
    let t4 = scaling
        .iter()
        .find(|(t, _)| *t == 4)
        .map_or(f64::NAN, |(_, s)| *s);
    let speedup = t1 / t4;
    let rendered = if speedup.is_nan() {
        "null".to_string()
    } else {
        format!("{speedup:.2}")
    };
    out.push_str(&format!("      \"speedup_4_over_1\": {rendered}\n"));
    out.push_str("    }\n  },\n");
    out.push_str(&verifier_calls_section());
    out.push_str(",\n");
    out.push_str(&cache_stats_section());
    out.push_str(",\n");
    out.push_str(&metrics_section());
    out.push_str("\n}\n");

    print!("{out}");
    std::fs::write("BENCH_core.json", &out).expect("write BENCH_core.json");
    eprintln!("wrote BENCH_core.json");
}
