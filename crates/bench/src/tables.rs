//! Table 1 (method comparison), Table 2 (runtime per iteration) and the
//! §4 tightness comparison.

use crate::experiments::{
    default_nn_config, row_from_runs, run_ddpg, run_ours_linear, run_ours_nn, run_svg,
    verify_nn_posthoc, NnSetup,
};
use crate::report::{header, RowResult};
use dwv_core::{AbstractionKind, Algorithm1, MetricKind};
use dwv_dynamics::NnController;
use dwv_reach::{DependencyTracking, TaylorAbstraction, TaylorReach, TaylorReachConfig};
use std::time::Instant;

/// Seeds used for the CI mean(±std) columns.
const SEEDS: [u64; 3] = [3, 5, 7];

/// Table 1, ACC rows: SVG, DDPG, Ours(W, Flow\*), Ours(G, Flow\*).
#[must_use]
pub fn table1_acc() -> Vec<RowResult> {
    let problem = dwv_dynamics::acc::reach_avoid_problem();
    let mut rows = Vec::new();

    // SVG.
    let mut ci = Vec::new();
    let mut trained: Vec<NnController> = Vec::new();
    for &s in &SEEDS {
        let (c, conv) = run_svg(&problem, s);
        ci.push(conv);
        trained.push(c);
    }
    let verdict = verify_nn_posthoc(&problem, trained.last().expect("ran"));
    let refs: Vec<&dyn dwv_dynamics::Controller> = trained
        .iter()
        .map(|c| c as &dyn dwv_dynamics::Controller)
        .collect();
    rows.push(row_from_runs(
        "SVG",
        &problem,
        &refs,
        ci,
        &verdict.to_string(),
        0.0,
    ));

    // DDPG.
    let mut ci = Vec::new();
    let mut trained: Vec<NnController> = Vec::new();
    for &s in &SEEDS[..1] {
        let (c, conv) = run_ddpg(&problem, s);
        ci.push(conv);
        trained.push(c);
    }
    let verdict = verify_nn_posthoc(&problem, trained.last().expect("ran"));
    let refs: Vec<&dyn dwv_dynamics::Controller> = trained
        .iter()
        .map(|c| c as &dyn dwv_dynamics::Controller)
        .collect();
    rows.push(row_from_runs(
        "DDPG",
        &problem,
        &refs,
        ci,
        &verdict.to_string(),
        0.0,
    ));

    // Ours.
    for metric in [MetricKind::Wasserstein, MetricKind::Geometric] {
        let mut ci = Vec::new();
        let mut learned: Vec<dwv_dynamics::LinearController> = Vec::new();
        let mut verdict = String::new();
        let mut secs = 0.0;
        for &s in &SEEDS {
            let res = run_ours_linear(metric, s);
            ci.push(
                res.verdict
                    .is_reach_avoid()
                    .then_some(res.outcome.iterations),
            );
            secs = res.outcome.trace.mean_iteration_time().as_secs_f64();
            if res.verdict.is_reach_avoid() || learned.is_empty() {
                if res.verdict.is_reach_avoid() && !verdict.starts_with("reach") {
                    learned.clear();
                }
                verdict = res.verdict.to_string();
                learned.push(res.outcome.controller);
            }
        }
        let refs: Vec<&dyn dwv_dynamics::Controller> = learned
            .iter()
            .map(|c| c as &dyn dwv_dynamics::Controller)
            .collect();
        rows.push(row_from_runs(
            &format!("Ours({metric}, Flow*)"),
            &problem,
            &refs,
            ci,
            &verdict,
            secs,
        ));
    }
    rows
}

/// Table 1, oscillator or 3-D rows: SVG, DDPG and Ours × {W, G} ×
/// {ReachNN, POLAR}.
#[must_use]
pub fn table1_nn(setup: NnSetup) -> Vec<RowResult> {
    let problem = setup.problem();
    let mut rows = Vec::new();

    let mut ci = Vec::new();
    let mut trained: Vec<NnController> = Vec::new();
    for &s in &SEEDS {
        let (c, conv) = run_svg(&problem, s);
        ci.push(conv);
        trained.push(c);
    }
    let verdict = verify_nn_posthoc(&problem, trained.last().expect("ran"));
    let refs: Vec<&dyn dwv_dynamics::Controller> = trained
        .iter()
        .map(|c| c as &dyn dwv_dynamics::Controller)
        .collect();
    rows.push(row_from_runs(
        "SVG",
        &problem,
        &refs,
        ci,
        &verdict.to_string(),
        0.0,
    ));

    let mut ci = Vec::new();
    let mut trained: Vec<NnController> = Vec::new();
    for &s in &SEEDS[..1] {
        let (c, conv) = run_ddpg(&problem, s);
        ci.push(conv);
        trained.push(c);
    }
    let verdict = verify_nn_posthoc(&problem, trained.last().expect("ran"));
    let refs: Vec<&dyn dwv_dynamics::Controller> = trained
        .iter()
        .map(|c| c as &dyn dwv_dynamics::Controller)
        .collect();
    rows.push(row_from_runs(
        "DDPG",
        &problem,
        &refs,
        ci,
        &verdict.to_string(),
        0.0,
    ));

    // The oscillator's wider state swings need a degree-3 Bernstein fit for
    // usable remainders; degree 2 suffices on the tiny 3-D reach boxes.
    let bern_degree = match setup {
        NnSetup::Oscillator => 3,
        NnSetup::ThreeDim => 2,
    };
    for metric in [MetricKind::Wasserstein, MetricKind::Geometric] {
        for (abs, tool) in [
            (
                AbstractionKind::Bernstein {
                    degree: bern_degree,
                },
                "ReachNN",
            ),
            (AbstractionKind::Polar { order: 2 }, "POLAR"),
        ] {
            let mut ci = Vec::new();
            let mut learned: Vec<NnController> = Vec::new();
            let mut verdict = String::new();
            let mut secs = 0.0;
            for &s in &SEEDS {
                let res = run_ours_nn(setup, metric, abs, s);
                ci.push(
                    res.verdict
                        .is_reach_avoid()
                        .then_some(res.outcome.iterations),
                );
                secs = res.outcome.trace.mean_iteration_time().as_secs_f64();
                // Rates/verdict describe the learned (converged) controllers.
                if res.verdict.is_reach_avoid() || learned.is_empty() {
                    if res.verdict.is_reach_avoid() && !verdict.starts_with("reach") {
                        learned.clear();
                    }
                    verdict = res.verdict.to_string();
                    learned.push(res.outcome.controller);
                }
            }
            let refs: Vec<&dyn dwv_dynamics::Controller> = learned
                .iter()
                .map(|c| c as &dyn dwv_dynamics::Controller)
                .collect();
            rows.push(row_from_runs(
                &format!("Ours({metric}, {tool})"),
                &problem,
                &refs,
                ci,
                &verdict,
                secs,
            ));
        }
    }
    rows
}

/// Table 1, oscillator rows.
#[must_use]
pub fn table1_oscillator() -> Vec<RowResult> {
    table1_nn(NnSetup::Oscillator)
}

/// Table 1, 3-D system rows.
#[must_use]
pub fn table1_three_dim() -> Vec<RowResult> {
    table1_nn(NnSetup::ThreeDim)
}

/// Renders rows under the Table-1 header.
#[must_use]
pub fn render_rows(title: &str, rows: &[RowResult]) -> String {
    let mut out = format!("== {title} ==\n{}\n", header());
    for r in rows {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

/// Table 2: average wall-clock per learning iteration for the five
/// system/verifier pairings.
///
/// Each entry times one representative Algorithm-1 run's mean iteration
/// (one verifier call for the candidate plus the difference-method calls,
/// exactly what the paper's Table 2 measures).
#[must_use]
pub fn table2() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let acc = run_ours_linear(MetricKind::Geometric, 7);
    out.push((
        "ACC(Flow*)".to_string(),
        acc.outcome.trace.mean_iteration_time().as_secs_f64(),
    ));
    for (setup, label) in [(NnSetup::Oscillator, "Os"), (NnSetup::ThreeDim, "3D")] {
        for (abs, tool) in [
            (AbstractionKind::Bernstein { degree: 2 }, "ReachNN"),
            (AbstractionKind::Polar { order: 2 }, "POLAR"),
        ] {
            let res = run_ours_nn(setup, MetricKind::Geometric, abs, 3);
            out.push((
                format!("{label}({tool})"),
                res.outcome.trace.mean_iteration_time().as_secs_f64(),
            ));
        }
    }
    out
}

/// The §4 tightness comparison: tight vs loose verifier settings on the
/// oscillator — per-call time and iterations to converge.
#[must_use]
pub fn tightness() -> Vec<(String, f64, Option<usize>)> {
    let setup = NnSetup::Oscillator;
    let problem = setup.problem();
    let mut out = Vec::new();
    for (name, cfg) in [
        ("loose (order 2)", TaylorReachConfig::loose()),
        (
            "default (order 3)",
            TaylorReachConfig {
                dependency: DependencyTracking::BoxReinit,
                ..TaylorReachConfig::default()
            },
        ),
        (
            "tight (order 4, Bernstein ranges)",
            TaylorReachConfig {
                integrator: dwv_taylor::OdeIntegrator {
                    bernstein_ranges: true,
                    ..dwv_taylor::OdeIntegrator::with_order(4)
                },
                dependency: DependencyTracking::BoxReinit,
                bernstein_ranges: true,
            },
        ),
    ] {
        // Per-call time on a fixed controller.
        let mut learn_cfg = default_nn_config(
            setup,
            MetricKind::Geometric,
            AbstractionKind::Polar { order: 2 },
            3,
        );
        learn_cfg.verifier = cfg.clone();
        let probe = dwv_dynamics::NnController::new(dwv_nn::Network::new(
            &[2, 8, 1],
            dwv_nn::Activation::ReLU,
            dwv_nn::Activation::Tanh,
            3,
        ));
        let verifier = TaylorReach::new(&problem, TaylorAbstraction::with_order(2), cfg);
        let t0 = Instant::now();
        let _ = verifier.reach(&probe);
        let per_call = t0.elapsed().as_secs_f64();
        // Iterations to converge with this tightness.
        let outcome = Algorithm1::new(problem.clone(), learn_cfg).learn_nn();
        let ci = outcome
            .verified
            .is_reach_avoid()
            .then_some(outcome.iterations);
        out.push((name.to_string(), per_call, ci));
    }
    out
}

/// Ablation of Algorithm 1's design choices on the ACC benchmark: gradient
/// estimator (per-coordinate differences vs SPSA with 1 or 4 directions) ×
/// metric. Reports per-seed CI and total verifier calls — the cost axis the
/// difference method trades against gradient quality.
#[must_use]
pub fn ablation() -> Vec<(String, Vec<Option<usize>>, Vec<usize>)> {
    use dwv_core::{Algorithm1, GradientEstimator, LearnConfig};
    let problem = dwv_dynamics::acc::reach_avoid_problem();
    let mut out = Vec::new();
    for (ename, estimator) in [
        ("coordinate", GradientEstimator::Coordinate),
        ("spsa-1", GradientEstimator::Spsa { samples: 1 }),
        ("spsa-4", GradientEstimator::Spsa { samples: 4 }),
    ] {
        for metric in [MetricKind::Geometric, MetricKind::Wasserstein] {
            let mut cis = Vec::new();
            let mut calls = Vec::new();
            for seed in SEEDS {
                let cfg = LearnConfig::builder()
                    .metric(metric)
                    .max_updates(200)
                    .perturbation(0.01)
                    .estimator(estimator)
                    .seed(seed)
                    .build();
                let outcome = Algorithm1::new(problem.clone(), cfg)
                    .learn_linear()
                    .expect("affine");
                cis.push(
                    outcome
                        .verified
                        .is_reach_avoid()
                        .then_some(outcome.iterations),
                );
                calls.push(outcome.trace.total_verifier_calls());
            }
            out.push((format!("{ename}/{metric}"), cis, calls));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![RowResult {
            method: "X".into(),
            ci: vec![Some(1)],
            sc: 1.0,
            gr: 0.5,
            verdict: "Unsafe".into(),
            secs_per_iteration: 0.0,
        }];
        let s = render_rows("t", &rows);
        assert!(s.contains("== t =="));
        assert!(s.contains("Unsafe"));
        assert_eq!(s.lines().count(), 3);
    }
}
