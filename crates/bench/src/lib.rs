//! Experiment harness reproducing the paper's tables and figures.
//!
//! Every table and figure of the evaluation section maps to a function
//! here; the `repro` binary drives them and prints the same rows/series the
//! paper reports:
//!
//! | Paper artifact | Function |
//! |----------------|----------|
//! | Table 1 (ACC rows) | [`table1_acc`] |
//! | Table 1 (oscillator rows) | [`table1_oscillator`] |
//! | Table 1 (3-D rows) | [`table1_three_dim`] |
//! | Table 2 (runtime / iteration) | [`table2`] |
//! | Fig. 4 (geometric learning curves, ACC) | [`fig4`] |
//! | Fig. 5 (Wasserstein learning curves, oscillator) | [`fig5`] |
//! | Fig. 6 (ACC reach sets) | [`fig6`] |
//! | Fig. 7 (oscillator reach sets + X_I) | [`fig7`] |
//! | Fig. 8 (3-D reach sets, divergence detection) | [`fig8`] |
//! | §4 tightness discussion | [`tightness`] |
//!
//! Absolute numbers differ from the paper (different hardware, Rust
//! reimplementations of the verifiers); the *shape* — which method wins,
//! by what order of magnitude, which verdicts appear — is the reproduction
//! target. `EXPERIMENTS.md` records paper-vs-measured for every row.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod figures;
pub mod report;
pub mod tables;

pub use experiments::{
    ddpg_budget, default_nn_config, run_ddpg, run_ours_linear, run_ours_nn, run_svg,
    verify_nn_posthoc, NnSetup, OursResult,
};
pub use report::{fmt_ci, RowResult};
pub use tables::{ablation, table1_acc, table1_oscillator, table1_three_dim, table2, tightness};

pub use figures::{fig4, fig5, fig6, fig7, fig8};
