//! Individual experiment runners shared by the tables, figures and benches.

use crate::report::RowResult;
use dwv_baselines::{Ddpg, DdpgConfig, Svg, SvgConfig};
use dwv_core::{
    AbstractionKind, Algorithm1, Algorithm2, GradientEstimator, LearnConfig, LearnOutcome,
    MetricKind, Verdict,
};
use dwv_dynamics::{eval::rates, Controller, LinearController, NnController, ReachAvoidProblem};
use dwv_reach::{
    BernsteinAbstraction, DependencyTracking, Flowpipe, LinearReach, ReachError, TaylorAbstraction,
    TaylorReach, TaylorReachConfig,
};

/// Which benchmark system an NN experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnSetup {
    /// Van der Pol oscillator (output scale 1).
    Oscillator,
    /// 3-D numerical system (output scale 2).
    ThreeDim,
}

impl NnSetup {
    /// The problem instance.
    #[must_use]
    pub fn problem(self) -> ReachAvoidProblem {
        match self {
            NnSetup::Oscillator => dwv_dynamics::oscillator::reach_avoid_problem(),
            NnSetup::ThreeDim => dwv_dynamics::three_dim::reach_avoid_problem(),
        }
    }

    /// The controller output scale used in all experiments.
    #[must_use]
    pub fn output_scale(self) -> f64 {
        match self {
            NnSetup::Oscillator => 1.0,
            NnSetup::ThreeDim => 2.0,
        }
    }
}

/// The tuned learning configuration for NN experiments (shared so Table 1,
/// Table 2 and the figures agree).
#[must_use]
pub fn default_nn_config(
    setup: NnSetup,
    metric: MetricKind,
    abstraction: AbstractionKind,
    seed: u64,
) -> LearnConfig {
    LearnConfig::builder()
        .metric(metric)
        .max_updates(300)
        .perturbation(0.02)
        .estimator(GradientEstimator::Spsa { samples: 2 })
        .seed(seed)
        .nn_hidden(vec![8])
        .nn_output_scale(setup.output_scale())
        .abstraction(abstraction)
        .verifier(TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        })
        .build()
}

/// The tuned configuration for the ACC linear experiments.
#[must_use]
pub fn default_linear_config(metric: MetricKind, seed: u64) -> LearnConfig {
    LearnConfig::builder()
        .metric(metric)
        .max_updates(200)
        .perturbation(0.01)
        .estimator(GradientEstimator::Coordinate)
        .seed(seed)
        .build()
}

/// The outcome of one "Ours" run: learned controller, learning stats and
/// the initial-set search result.
pub struct OursResult<C> {
    /// The learning outcome (controller, CI, trace).
    pub outcome: LearnOutcome<C>,
    /// `X_I` coverage fraction from Algorithm 2 (`None` when learning did
    /// not produce a reach-avoid candidate).
    pub xi_coverage: Option<f64>,
    /// The final verdict after Algorithm 2: `reach-avoid` only when safety
    /// holds for all of `X₀` *and* `X_I` is non-empty.
    pub verdict: Verdict,
}

/// Runs Ours(metric, Flow\*) on the ACC system: Algorithm 1 with the exact
/// linear verifier, then Algorithm 2.
///
/// # Panics
///
/// Panics if the ACC problem loses its affine parts (cannot happen).
#[must_use]
pub fn run_ours_linear(metric: MetricKind, seed: u64) -> OursResult<LinearController> {
    let problem = dwv_dynamics::acc::reach_avoid_problem();
    let config = default_linear_config(metric, seed);
    let outcome = Algorithm1::new(problem.clone(), config)
        .learn_linear()
        .expect("ACC is affine");
    let (xi_coverage, verdict) = finish_linear(&problem, &outcome);
    OursResult {
        outcome,
        xi_coverage,
        verdict,
    }
}

fn finish_linear(
    problem: &ReachAvoidProblem,
    outcome: &LearnOutcome<LinearController>,
) -> (Option<f64>, Verdict) {
    if !outcome.verified.is_reach_avoid() {
        return (None, outcome.verified);
    }
    let (a, b, c) = problem.dynamics.linear_parts().expect("affine");
    let controller = outcome.controller.clone();
    let search = Algorithm2::new(problem).with_max_rounds(4).search(|cell| {
        LinearReach::new(
            &a,
            &b,
            &c,
            cell.clone(),
            problem.delta,
            problem.horizon_steps,
        )
        .reach(&controller)
    });
    let verdict = if search.is_empty() {
        Verdict::Unknown
    } else {
        Verdict::ReachAvoid
    };
    (Some(search.coverage), verdict)
}

/// Runs Ours(metric, abstraction) on an NN benchmark: Algorithm 1 with the
/// Taylor-model verifier, then Algorithm 2 with the same abstraction.
#[must_use]
pub fn run_ours_nn(
    setup: NnSetup,
    metric: MetricKind,
    abstraction: AbstractionKind,
    seed: u64,
) -> OursResult<NnController> {
    let problem = setup.problem();
    let config = default_nn_config(setup, metric, abstraction, seed);
    let verifier_cfg = config.verifier.clone();
    let outcome = Algorithm1::new(problem.clone(), config).learn_nn();
    if !outcome.verified.is_reach_avoid() {
        let verdict = outcome.verified;
        return OursResult {
            outcome,
            xi_coverage: None,
            verdict,
        };
    }
    let controller = outcome.controller.clone();
    let search = Algorithm2::new(&problem).with_max_rounds(4).search(|cell| {
        nn_reach(
            &problem,
            abstraction,
            &verifier_cfg,
            cell.clone(),
            &controller,
        )
    });
    let verdict = if search.is_empty() {
        Verdict::Unknown
    } else {
        Verdict::ReachAvoid
    };
    OursResult {
        outcome,
        xi_coverage: Some(search.coverage),
        verdict,
    }
}

fn nn_reach(
    problem: &ReachAvoidProblem,
    abstraction: AbstractionKind,
    cfg: &TaylorReachConfig,
    cell: dwv_interval::IntervalBox,
    controller: &NnController,
) -> Result<Flowpipe, ReachError> {
    match abstraction {
        AbstractionKind::Polar { order } => {
            TaylorReach::new(problem, TaylorAbstraction::with_order(order), cfg.clone())
                .with_initial_set(cell)
                .reach(controller)
        }
        AbstractionKind::Bernstein { degree } => TaylorReach::new(
            problem,
            BernsteinAbstraction::with_degree(degree),
            cfg.clone(),
        )
        .with_initial_set(cell)
        .reach(controller),
    }
}

/// Post-hoc verification of an externally trained NN controller (the
/// *design-then-verify* step applied to the baselines), using the POLAR
/// abstraction.
#[must_use]
pub fn verify_nn_posthoc(problem: &ReachAvoidProblem, controller: &NnController) -> Verdict {
    let attempt = TaylorReach::new(
        problem,
        TaylorAbstraction::default(),
        TaylorReachConfig {
            dependency: DependencyTracking::BoxReinit,
            ..TaylorReachConfig::default()
        },
    )
    .reach(controller);
    dwv_core::judge(problem, controller, &attempt, 500, 0xBEEF)
}

/// The DDPG training budget used for Table 1 (episodes).
#[must_use]
pub fn ddpg_budget() -> usize {
    2_000
}

/// Trains DDPG and assembles its Table-1 row inputs.
#[must_use]
pub fn run_ddpg(problem: &ReachAvoidProblem, seed: u64) -> (NnController, Option<usize>) {
    let cfg = DdpgConfig {
        // Matching control authority with the learned controllers.
        action_scale: action_scale_for(problem),
        ..DdpgConfig::default()
    };
    let mut agent = Ddpg::new(problem, cfg, seed);
    let out = agent.train(ddpg_budget());
    (out.controller, out.convergence_episode)
}

/// Trains SVG and assembles its Table-1 row inputs.
#[must_use]
pub fn run_svg(problem: &ReachAvoidProblem, seed: u64) -> (NnController, Option<usize>) {
    let cfg = SvgConfig {
        action_scale: action_scale_for(problem),
        ..SvgConfig::default()
    };
    let mut agent = Svg::new(problem, cfg, seed);
    let out = agent.train(600);
    (out.controller, out.convergence_episode)
}

fn action_scale_for(problem: &ReachAvoidProblem) -> f64 {
    match problem.dynamics.name() {
        "acc" => 12.0,
        "three-dim" => 2.0,
        _ => 1.0,
    }
}

/// Builds a Table-1 row from per-seed runs of a method; SC/GR are the mean
/// empirical rates over the provided controllers (500 rollouts each).
#[must_use]
pub fn row_from_runs(
    method: &str,
    problem: &ReachAvoidProblem,
    controllers: &[&dyn Controller],
    ci: Vec<Option<usize>>,
    verdict: &str,
    secs_per_iteration: f64,
) -> RowResult {
    assert!(!controllers.is_empty(), "need at least one controller");
    let mut sc = 0.0;
    let mut gr = 0.0;
    for c in controllers {
        let r = rates(problem, *c, 500, 0x5C);
        sc += r.safe_rate;
        gr += r.goal_rate;
    }
    RowResult {
        method: method.to_string(),
        ci,
        sc: sc / controllers.len() as f64,
        gr: gr / controllers.len() as f64,
        verdict: verdict.to_string(),
        secs_per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_geometric_pipeline_end_to_end() {
        let res = run_ours_linear(MetricKind::Geometric, 7);
        assert!(res.verdict.is_reach_avoid(), "got {}", res.verdict);
        let cov = res.xi_coverage.expect("coverage computed");
        assert!(cov > 0.5, "X_I coverage too small: {cov}");
    }

    #[test]
    fn three_dim_polar_pipeline_end_to_end() {
        let res = run_ours_nn(
            NnSetup::ThreeDim,
            MetricKind::Geometric,
            AbstractionKind::Polar { order: 2 },
            3,
        );
        assert!(res.verdict.is_reach_avoid(), "got {}", res.verdict);
    }

    #[test]
    fn svg_runs_and_reports() {
        let p = dwv_dynamics::oscillator::reach_avoid_problem();
        let (ctrl, _conv) = run_svg(&p, 1);
        // The trained policy must at least be evaluable.
        let r = rates(&p, &ctrl, 20, 1);
        assert!((0.0..=1.0).contains(&r.goal_rate));
    }
}
