//! Result-row formatting shared by the tables.

/// One row of a Table-1-style comparison.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Method label ("SVG", "DDPG", "Ours(W, Flow*)", …).
    pub method: String,
    /// Convergence iterations across seeds (`None` entries = not converged
    /// within budget).
    pub ci: Vec<Option<usize>>,
    /// Safe-control rate over 500 simulated rollouts.
    pub sc: f64,
    /// Goal-reaching rate over 500 simulated rollouts.
    pub gr: f64,
    /// Verified result label ("reach-avoid", "Unsafe", "Unknown").
    pub verdict: String,
    /// Mean wall-clock seconds per learning iteration (Table 2 input).
    pub secs_per_iteration: f64,
}

impl RowResult {
    /// Renders the row in Table 1's format.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<22} {:>14} {:>7.1}% {:>7.1}% {:>12}",
            self.method,
            fmt_ci(&self.ci),
            self.sc * 100.0,
            self.gr * 100.0,
            self.verdict
        )
    }
}

/// Formats a CI sample as `mean(±std)` with `K` suffixes, or `>cap` when no
/// run converged.
#[must_use]
pub fn fmt_ci(ci: &[Option<usize>]) -> String {
    let converged: Vec<f64> = ci.iter().flatten().map(|&v| v as f64).collect();
    if converged.is_empty() {
        return "n/c".to_string();
    }
    let mean = converged.iter().sum::<f64>() / converged.len() as f64;
    let var = converged
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / converged.len() as f64;
    let std = var.sqrt();
    let fmt_v = |v: f64| {
        if v >= 1000.0 {
            format!("{:.1}K", v / 1000.0)
        } else {
            format!("{v:.0}")
        }
    };
    if ci.len() > converged.len() {
        format!("{}(±{})*", fmt_v(mean), fmt_v(std))
    } else {
        format!("{}(±{})", fmt_v(mean), fmt_v(std))
    }
}

/// Table header matching Table 1's columns.
#[must_use]
pub fn header() -> String {
    format!(
        "{:<22} {:>14} {:>8} {:>8} {:>12}",
        "method", "CI", "SC", "GR", "Verified"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ci_cases() {
        assert_eq!(fmt_ci(&[Some(10), Some(12), Some(14)]), "12(±2)");
        assert_eq!(fmt_ci(&[None, None]), "n/c");
        assert!(fmt_ci(&[Some(13_600), Some(13_600)]).starts_with("13.6K"));
        // Partial convergence is flagged with an asterisk.
        assert!(fmt_ci(&[Some(10), None]).ends_with('*'));
    }

    #[test]
    fn row_renders_all_fields() {
        let r = RowResult {
            method: "Ours(G, Flow*)".into(),
            ci: vec![Some(60), Some(64)],
            sc: 1.0,
            gr: 1.0,
            verdict: "reach-avoid".into(),
            secs_per_iteration: 0.01,
        };
        let s = r.render();
        assert!(s.contains("Ours(G, Flow*)"));
        assert!(s.contains("100.0%"));
        assert!(s.contains("reach-avoid"));
    }
}
