//! R3 fixture: nondeterminism sources in a determinism zone (linted as a
//! `crates/core/src/parallel.rs` stand-in).

use std::collections::HashMap; // line 4: HashMap
use std::time::Instant; // line 5: Instant

pub fn order_dependent(m: &HashMap<u64, f64>) -> f64 {
    // line 7: HashMap in signature
    let mut acc = 0.0;
    for (_, v) in m {
        acc += v;
    }
    acc
}

pub fn timed() -> u128 {
    Instant::now().elapsed().as_nanos() // line 17: Instant
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id()) // line 21: thread identity
}
