//! R5 fixture: undocumented public items.

/// Documented function: passes.
pub fn documented() {}

pub fn undocumented() {} // line 6: no doc comment

#[derive(Debug)]
pub struct Undocumented; // pub on line 9, attr walks back to line 8

pub(crate) fn internal() {} // not public API: passes
