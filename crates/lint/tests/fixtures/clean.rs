//! Clean fixture: every rule passes even when linted as a zone file.

/// Sound midpoint via directed endpoints (no raw float ops at all).
pub fn lo_of(pair: (f64, f64)) -> f64 {
    pair.0.min(pair.1)
}

/// Result-carrying accessor: no panic paths.
pub fn first(v: &[f64]) -> Option<f64> {
    v.first().copied()
}

/// Deterministic accumulation over a sorted map.
pub fn total(m: &std::collections::BTreeMap<u64, u64>) -> u64 {
    let mut acc = 0u64;
    for v in m.values() {
        acc = acc.saturating_add(*v);
    }
    acc
}

#[cfg(test)]
mod tests {
    // Test code may do what it likes: only the unsafe audit applies here.
    #[test]
    fn looks_fine() {
        let v = [1.0, 2.0];
        assert!((v[0] + v[1]).sqrt() > 0.0);
    }
}
