//! Helpers for the panic-reachability fixture.

/// Seeded: the bare `unwrap` is a panic-frontier seed.
fn risky_first(v: &[f64]) -> f64 {
    v.first().copied().unwrap()
}

/// Proved: no seed, no panicking callee.
fn midpoint_of(x: f64) -> f64 {
    x
}

/// Audited: the fn-level annotation cuts it from the panic frontier.
// dwv-lint: allow(panic-freedom#reach) -- caller contract guarantees a non-empty slice
fn audited_first(v: &[f64]) -> f64 {
    // dwv-lint: allow(panic-freedom) -- non-empty by the audited contract above
    v.first().copied().unwrap()
}
