//! Float-zone consumers for the cross-function taint fixture.

/// Zone fn consuming the raw helper directly: a taint finding.
pub fn eval_cell(a: f64, b: f64) -> f64 {
    lerp_raw(a, b, 0.5)
}

/// Zone fn consuming the forwarder: the propagated taint still lands.
pub fn eval_mid(a: f64, b: f64) -> f64 {
    lerp_mid(a, b)
}

/// Audited sink: the annotation routes the value to the audit trail.
pub fn eval_audited(a: f64, b: f64) -> f64 {
    // dwv-lint: allow(float-hygiene#taint) -- display-only interpolation; never feeds an enclosure
    lerp_raw(a, b, 0.5)
}

/// An integer consumer is fine: the bucket index is exact.
pub fn eval_bucket(a: f64, b: f64) -> usize {
    lerp_bucket(a, b)
}
