//! Public surface for the panic-reachability fixture: one public fn
//! reaches the seeded helper through an intermediate hop, one is proved,
//! and one leans on an audited callee.

/// Reaches the seeded helper through one hop.
pub fn enclose(v: &[f64]) -> f64 {
    step(v)
}

/// Intermediate hop between the public surface and the seed.
fn step(v: &[f64]) -> f64 {
    risky_first(v)
}

/// Proved transitively panic-free.
pub fn width_of(x: f64) -> f64 {
    midpoint_of(x)
}

/// An audited callee does not taint its caller.
pub fn first_or_default(v: &[f64]) -> f64 {
    audited_first(v)
}
