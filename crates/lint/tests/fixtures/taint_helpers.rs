//! Raw-float helpers for the cross-function taint fixture.

/// Producer: raw arithmetic and a raw `f64` return — tainted at the source.
pub fn lerp_raw(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Forwarder: returns the tainted value unrounded — the taint propagates.
pub fn lerp_mid(a: f64, b: f64) -> f64 {
    lerp_raw(a, b, 0.5)
}

/// Rounded consumer: returns an integer — the taint stops here.
pub fn lerp_bucket(a: f64, b: f64) -> usize {
    lerp_mid(a, b) as usize
}
