//! Trait-bound `+` tokens must never be judged float arithmetic: the
//! parser's type-position map — not a token-skip hack — excludes them.

use core::ops::{Add, Mul};

/// Inline bounds with nested generics.
pub fn sum_pairs<T: Add<Output = T> + Mul<Output = T> + Copy + Default>(xs: &[(T, T)]) -> T {
    let mut acc = T::default();
    for (a, b) in xs {
        acc = combine(acc, *a, *b);
    }
    acc
}

/// `where` clauses carry the same `+` tokens.
pub fn fold_with<T, F>(xs: &[T], f: F) -> Option<T>
where
    T: Copy + PartialOrd,
    F: Fn(T, T) -> T + Copy,
{
    let mut it = xs.iter().copied();
    let first = it.next()?;
    Some(it.fold(first, f))
}

/// An `impl Trait + Copy` bound in argument position.
pub fn apply_twice(x: f64, f: impl Fn(f64) -> f64 + Copy) -> f64 {
    f(f(x))
}

fn combine<T: Add<Output = T> + Mul<Output = T>>(a: T, x: T, y: T) -> T {
    let _ = (x, y);
    a
}
