//! R4 fixture: `unsafe` with and without safety-contract comments.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } // line 4: no SAFETY comment
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller contract guarantees `p` is valid and aligned.
    unsafe { *p }
}
