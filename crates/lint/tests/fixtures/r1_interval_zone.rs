//! R1 fixture for the verifier-portfolio float zones: linted as if at
//! `crates/reach/src/interval_reach.rs`, where the float-hygiene zone, the
//! rounding containment check, and the reach crate's panic-freedom
//! contract all apply at once.

/// Trait-bound `+` is type syntax, not float arithmetic.
pub fn bounded<C: Clone + ?Sized + Sync>(_c: &C) {}

/// Raw float arithmetic inside the zone.
pub fn raw(a: f64, b: f64) -> f64 {
    a * b + 0.5
}

/// Denylisted libm-backed method inside the zone.
pub fn dist(x: f64) -> f64 {
    x.sqrt()
}

/// Directed endpoint math outside the rounding primitives.
pub fn nudge(x: f64) -> f64 {
    next_up(x)
}

/// An audited exemption: the reason lands in the suppression trail.
pub fn timestamp(t0: f64, delta: f64) -> f64 {
    t0 + delta // dwv-lint: allow(float-hygiene) -- step timestamps are display metadata
}

/// Indexing inside the reach crate's panic-freedom contract.
pub fn first(v: &[f64]) -> f64 {
    v[0]
}
