//! R2 fixture: panicking patterns in library code of a verified crate
//! (linted as a `crates/reach/src/...` stand-in).

pub fn first(v: &[f64]) -> f64 {
    *v.first().unwrap() // line 5: `.unwrap()`
}

pub fn pick(v: &[f64], i: usize) -> f64 {
    v[i] // line 9: indexing
}

pub fn boom(flag: bool) -> u32 {
    if flag {
        panic!("boom"); // line 14: `panic!`
    }
    0
}

pub fn guarded(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    // dwv-lint: allow(panic-freedom#index) -- emptiness checked above
    v[0]
}
