//! R1 fixture: raw float arithmetic and a non-directed method in a
//! soundness zone (linted as a float-zone stand-in).

/// Raw midpoint: `+` and `*` flagged on line 6.
pub fn midpoint(lo: f64, hi: f64) -> f64 {
    (lo + hi) * 0.5
}

/// Norm: `*` on line 11, then `+`, `*`, and `.sqrt()` on line 12.
pub fn norm(x: f64, y: f64) -> f64 {
    let s = x * x;
    (s + y * y).sqrt()
}

/// Annotated use: suppressed, lands in the audit trail instead.
pub fn annotated(c: f64, r: f64) -> f64 {
    // dwv-lint: allow(float-hygiene) -- plotting helper, not a verified bound
    c + r
}
