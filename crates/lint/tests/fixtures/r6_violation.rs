//! No-alloc zone fixture: steady-state allocations are findings; the
//! amortized-reuse idiom and reasoned annotations discharge the rest.

/// Hot kernel: allocates five different ways.
pub fn axpy_fresh(n: usize) -> Vec<f64> {
    let mut out = Vec::new();
    let tmp = vec![0.0f64; n];
    out.push(1.0);
    let copy = tmp.clone();
    copy.iter().copied().collect()
}

/// Amortized kernel: retained capacity via the workspace idiom — clean.
pub fn axpy_amortized(ws: &mut Vec<f64>, xs: &[f64]) {
    ws.clear();
    ws.reserve(xs.len());
    for x in xs {
        ws.push(*x);
    }
}

/// Suffix-zone kernel: in the zone only under the `_into` suffix map.
pub fn scale_into(dst: &mut Vec<f64>, s: f64) {
    dst.push(s);
}

/// Cold-start fallback: the reasoned allow lands in the audit trail.
pub fn cold_start() -> Vec<f64> {
    // dwv-lint: allow(no-alloc) -- cold-start construction off the steady-state path
    Vec::new()
}
