//! SIMD-zone fixture: linted as a designated kernel module.

/// Raw elementwise kernel loop — the designation waives the operator check.
pub fn kernel_ok(dst: &mut [f64], a: f64, src: &[f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d += a * x;
    }
}

/// Denylisted libm-backed method: still banned inside a kernel module.
pub fn bad_method(x: f64) -> f64 {
    x.sqrt()
}

/// Rounding-sensitive endpoint math outside the rounding primitives.
pub fn bad_rounding(x: f64) -> f64 {
    x.next_up()
}

pub use std::arch::x86_64::_mm256_add_pd;

// SAFETY: dispatch wrappers verify AVX2 before any intrinsic runs.
pub use std::arch::x86_64::_mm256_mul_pd;
