//! Annotation-hygiene fixture: malformed `dwv-lint:` comments are findings.

/// Reason clause missing: flagged on line 4 (the annotation's line).
// dwv-lint: allow(panic-freedom)
pub fn no_reason(v: &[f64]) -> f64 {
    v[0]
}

/// Unknown rule id: flagged on line 10 (the annotation's line).
// dwv-lint: allow(made-up-rule) -- sounds official
pub fn unknown_rule() {}
