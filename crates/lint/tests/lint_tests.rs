//! Fixture-driven integration tests: each rule's fixture must produce
//! exactly the documented findings (rule, file, line), the clean fixture
//! must produce none, and the JSON report must parse and carry the schema.

use std::fs;
use std::path::Path;
use std::process::Command;

use dwv_lint::{lint_source, lint_sources, EngineOptions, Report, Rule, ZoneConfig};

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs a set of fixtures through the full interprocedural engine, each as
/// if it lived at the paired repo path, serially for determinism.
fn lint_fixtures_engine(pairs: &[(&str, &str)]) -> Report {
    let sources: Vec<(String, String)> = pairs
        .iter()
        .map(|(name, as_path)| {
            let src = fs::read_to_string(fixture_path(name)).expect("read fixture");
            ((*as_path).to_string(), src)
        })
        .collect();
    let opts = EngineOptions {
        serial: true,
        ..EngineOptions::default()
    };
    lint_sources(&sources, &ZoneConfig::default(), &opts)
}

/// Lints a fixture file as if it lived at `as_path` in the repo, so the
/// default zone map applies the rules under test.
fn lint_fixture(name: &str, as_path: &str) -> Report {
    let src = fs::read_to_string(fixture_path(name)).expect("read fixture");
    let mut report = Report::default();
    lint_source(as_path, &src, &ZoneConfig::default(), &mut report);
    report
}

fn lines_of(report: &Report, rule: Rule) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn r1_float_hygiene_fixture() {
    let r = lint_fixture("r1_violation.rs", "crates/poly/src/bernstein.rs");
    // Line 6 carries two raw ops, line 11 one, line 12 two ops plus `.sqrt()`.
    assert_eq!(
        lines_of(&r, Rule::FloatHygiene),
        vec![6, 6, 11, 12, 12, 12],
        "{:#?}",
        r.findings
    );
    assert!(r
        .findings
        .iter()
        .all(|f| f.file == "crates/poly/src/bernstein.rs"));
    // The annotated `c + r` on line 18 lands in the audit trail instead.
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].rule, Rule::FloatHygiene);
    assert_eq!(r.suppressed[0].line, 18);
    assert!(r.suppressed[0].reason.contains("plotting helper"));
}

#[test]
fn r1_portfolio_zone_fixture() {
    // The portfolio's fast-path backends joined the float zone; linted under
    // the interval backend's path the fixture must produce exactly these
    // findings — and none for the trait-bound `+` tokens on line 7.
    let r = lint_fixture("r1_interval_zone.rs", "crates/reach/src/interval_reach.rs");
    let got: Vec<(Rule, Option<&str>, u32)> = r
        .findings
        .iter()
        .map(|f| (f.rule, f.sub.as_deref(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            (Rule::FloatHygiene, None, 11),             // `a * b`
            (Rule::FloatHygiene, None, 11),             // `+ 0.5`
            (Rule::FloatHygiene, None, 16),             // `.sqrt()`
            (Rule::FloatHygiene, Some("rounding"), 21), // `next_up` outside the primitives
            (Rule::PanicFreedom, Some("index"), 31),    // `v[0]` in the reach crate
        ],
        "{:#?}",
        r.findings
    );
    // The annotated timestamp sum is audited, not silently dropped.
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].rule, Rule::FloatHygiene);
    assert_eq!(r.suppressed[0].line, 26);
    assert!(r.suppressed[0].reason.contains("display metadata"));
    // The same source under the portfolio's path: the escalation logic does
    // no enclosure arithmetic itself, but the zone still applies.
    let p = lint_fixture("r1_interval_zone.rs", "crates/reach/src/portfolio.rs");
    assert_eq!(
        lines_of(&p, Rule::FloatHygiene),
        vec![11, 11, 16, 21],
        "{:#?}",
        p.findings
    );
}

#[test]
fn r2_panic_freedom_fixture() {
    let r = lint_fixture("r2_violation.rs", "crates/reach/src/fixture.rs");
    let pf: Vec<(u32, Option<&str>)> = r
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PanicFreedom)
        .map(|f| (f.line, f.sub.as_deref()))
        .collect();
    assert_eq!(
        pf,
        vec![(5, None), (9, Some("index")), (14, None)],
        "{:#?}",
        r.findings
    );
    // `v[0]` behind the emptiness guard is annotated with the index sub-rule.
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].line, 24);
}

#[test]
fn r6_no_alloc_fixture() {
    // Linted as the designated kernel module the whole file is in the
    // no-alloc zone: every steady-state allocation is a finding, the
    // cleared-and-reserved workspace push is prover-discharged, and the
    // cold-start allow lands in the audit trail.
    let r = lint_fixture("r6_violation.rs", "crates/poly/src/kernels.rs");
    assert_eq!(
        lines_of(&r, Rule::NoAlloc),
        vec![6, 7, 8, 9, 10, 24],
        "{:#?}",
        r.findings
    );
    assert!(r.findings.iter().all(|f| f.rule == Rule::NoAlloc));
    assert_eq!(r.suppressed.len(), 1, "{:#?}", r.suppressed);
    assert_eq!(r.suppressed[0].rule, Rule::NoAlloc);
    assert_eq!(r.suppressed[0].line, 30);
    assert!(r.suppressed[0].reason.contains("cold-start"));

    // Under the suffix map only `*_into` / `*_in_place` functions are in
    // the zone: the same source produces exactly the `scale_into` finding.
    let s = lint_fixture("r6_violation.rs", "crates/poly/src/polynomial.rs");
    assert_eq!(lines_of(&s, Rule::NoAlloc), vec![24], "{:#?}", s.findings);
}

#[test]
fn r2v2_panic_reachability_fixture() {
    let r = lint_fixtures_engine(&[
        ("reach_api.rs", "crates/reach/src/fixture_api.rs"),
        ("reach_helpers.rs", "crates/reach/src/fixture_helpers.rs"),
    ]);
    let got: Vec<(Rule, Option<&str>, &str, u32)> = r
        .findings
        .iter()
        .map(|f| (f.rule, f.sub.as_deref(), f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            // The public API reaches the seed through the intermediate hop…
            (
                Rule::PanicFreedom,
                Some("reach"),
                "crates/reach/src/fixture_api.rs",
                6,
            ),
            // …and the seed site itself is a per-file finding.
            (
                Rule::PanicFreedom,
                None,
                "crates/reach/src/fixture_helpers.rs",
                5,
            ),
        ],
        "{:#?}",
        r.findings
    );
    // The chain names every hop and the seed location.
    let chain = &r.findings[0].message;
    assert!(chain.contains("reach::enclose"), "{chain}");
    assert!(chain.contains("reach::step"), "{chain}");
    assert!(chain.contains("reach::risky_first"), "{chain}");
    assert!(
        chain.contains("`.unwrap()` at crates/reach/src/fixture_helpers.rs:5"),
        "{chain}"
    );
    // The audited helper's excused seed is in the audit trail, and both
    // annotations count as used (no annotation#unused findings above).
    assert_eq!(r.suppressed.len(), 1, "{:#?}", r.suppressed);
    assert_eq!(r.suppressed[0].line, 17);
    // `width_of` and `first_or_default` are proved transitively panic-free.
    let audit = r.audit.as_ref().expect("engine report carries the audit");
    assert_eq!(audit.pub_fns_proved, 2, "{audit:#?}");
}

#[test]
fn r1v2_float_taint_fixture() {
    let r = lint_fixtures_engine(&[
        ("taint_zone.rs", "crates/poly/src/bernstein.rs"),
        ("taint_helpers.rs", "crates/poly/src/tables.rs"),
    ]);
    let got: Vec<(Rule, Option<&str>, &str, u32)> = r
        .findings
        .iter()
        .map(|f| (f.rule, f.sub.as_deref(), f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            // Direct consumption of the raw producer…
            (
                Rule::FloatHygiene,
                Some("taint"),
                "crates/poly/src/bernstein.rs",
                5,
            ),
            // …and of the raw-returning forwarder one hop away.
            (
                Rule::FloatHygiene,
                Some("taint"),
                "crates/poly/src/bernstein.rs",
                10,
            ),
        ],
        "{:#?}",
        r.findings
    );
    assert!(r.findings[0].message.contains("poly::lerp_raw"));
    assert!(r.findings[1].message.contains("poly::lerp_mid"));
    // The audited sink is suppressed, not silently dropped; the integer
    // consumer (`lerp_bucket`) produced nothing.
    assert_eq!(r.suppressed.len(), 1, "{:#?}", r.suppressed);
    assert_eq!(r.suppressed[0].rule, Rule::FloatHygiene);
    assert_eq!(r.suppressed[0].line, 16);
    assert!(r.suppressed[0].reason.contains("display-only"));
}

#[test]
fn trait_bound_plus_tokens_are_not_arithmetic() {
    // Regression for the structural fix that replaced the old token-skip
    // hack: `+` in inline bounds, `where` clauses, and `impl Trait`
    // argument bounds must produce nothing even in the strictest zone.
    let r = lint_fixture("trait_bounds.rs", "crates/poly/src/bernstein.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
    assert!(r.suppressed.is_empty());
}

#[test]
fn engine_parallel_report_matches_serial() {
    // The whole fixture corpus through the engine at widths 2/4/8 must be
    // byte-identical to the serial report.
    let pairs = [
        ("reach_api.rs", "crates/reach/src/fixture_api.rs"),
        ("reach_helpers.rs", "crates/reach/src/fixture_helpers.rs"),
        ("taint_zone.rs", "crates/poly/src/bernstein.rs"),
        ("taint_helpers.rs", "crates/poly/src/tables.rs"),
        ("r6_violation.rs", "crates/poly/src/kernels.rs"),
        ("trait_bounds.rs", "crates/poly/src/workspace.rs"),
    ];
    let sources: Vec<(String, String)> = pairs
        .iter()
        .map(|(name, as_path)| {
            let src = fs::read_to_string(fixture_path(name)).expect("read fixture");
            ((*as_path).to_string(), src)
        })
        .collect();
    let zones = ZoneConfig::default();
    let serial = lint_sources(
        &sources,
        &zones,
        &EngineOptions {
            serial: true,
            ..EngineOptions::default()
        },
    )
    .to_json(Rule::all());
    for width in [2, 4, 8] {
        let parallel = lint_sources(
            &sources,
            &zones,
            &EngineOptions {
                threads: Some(width),
                ..EngineOptions::default()
            },
        )
        .to_json(Rule::all());
        assert_eq!(serial, parallel, "report differs at width {width}");
    }
}

#[test]
fn r3_determinism_fixture() {
    let r = lint_fixture("r3_violation.rs", "crates/core/src/parallel.rs");
    assert_eq!(
        lines_of(&r, Rule::Determinism),
        vec![4, 5, 7, 17, 21],
        "{:#?}",
        r.findings
    );
}

#[test]
fn r4_unsafe_audit_fixture() {
    let r = lint_fixture("r4_violation.rs", "crates/obs/src/fixture.rs");
    assert_eq!(
        lines_of(&r, Rule::UnsafeAudit),
        vec![4],
        "{:#?}",
        r.findings
    );
    // The census counts both sites, documented or not.
    assert_eq!(r.unsafe_census.get("obs"), Some(&2));
}

#[test]
fn r5_doc_coverage_fixture() {
    let r = lint_fixture("r5_violation.rs", "crates/obs/src/fixture.rs");
    assert_eq!(
        lines_of(&r, Rule::DocCoverage),
        vec![6, 9],
        "{:#?}",
        r.findings
    );
}

#[test]
fn simd_zone_fixture() {
    // Linted as the designated kernel module: raw float ops are waived, but
    // the libm method denylist, rounding containment, and the `core::arch`
    // SAFETY audit all still apply.
    let r = lint_fixture("simd_zone.rs", "crates/poly/src/kernels.rs");
    let got: Vec<(Rule, Option<&str>, u32)> = r
        .findings
        .iter()
        .map(|f| (f.rule, f.sub.as_deref(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            (Rule::FloatHygiene, None, 12), // `.sqrt()` despite the zone
            (Rule::FloatHygiene, Some("rounding"), 17), // `next_up` outside the primitives
            (Rule::UnsafeAudit, Some("simd"), 20), // undocumented `std::arch` import
        ],
        "{:#?}",
        r.findings
    );
    assert!(r
        .findings
        .iter()
        .all(|f| f.file == "crates/poly/src/kernels.rs"));
    // The raw `*d += a * x` loop on line 6 produced nothing, and the
    // SAFETY-documented import on line 23 passed the audit.
    assert!(r.suppressed.is_empty(), "{:#?}", r.suppressed);
}

#[test]
fn rounding_containment_waived_inside_primitives() {
    // The same endpoint math linted as the interval kernel itself is fine:
    // that file *is* the designated home of directed rounding.
    let zones = ZoneConfig::default();
    let primitive = zones
        .float_primitive_files
        .first()
        .expect("default zones designate a rounding primitive")
        .clone();
    let src = fs::read_to_string(fixture_path("simd_zone.rs")).expect("read fixture");
    let mut r = Report::default();
    lint_source(&primitive, &src, &zones, &mut r);
    assert!(
        !r.findings
            .iter()
            .any(|f| f.sub.as_deref() == Some("rounding")),
        "{:#?}",
        r.findings
    );
}

#[test]
fn clean_fixture_has_no_findings_even_in_every_zone() {
    // bernstein.rs sits in both the float and determinism zones and in a
    // panic-free crate — the strictest possible location.
    let r = lint_fixture("clean.rs", "crates/poly/src/bernstein.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
    assert!(r.suppressed.is_empty());
    assert_eq!(r.exit_code(Rule::all()), 0);
}

#[test]
fn bad_annotations_always_fail() {
    let r = lint_fixture("bad_annotation.rs", "crates/obs/src/fixture.rs");
    assert_eq!(
        lines_of(&r, Rule::Annotation),
        vec![4, 10],
        "{:#?}",
        r.findings
    );
    // Denied-rule list is empty, yet the exit code still carries bit 32.
    assert_eq!(r.exit_code(&[]), 32);
}

#[test]
fn json_report_parses_and_carries_schema() {
    let r = lint_fixture("r1_violation.rs", "crates/poly/src/bernstein.rs");
    let json = r.to_json(Rule::all());
    let v = dwv_obs::json::parse(&json).expect("report JSON parses");
    assert_eq!(v.get("version").and_then(|x| x.as_number()), Some(1.0));
    assert_eq!(
        v.get("files_scanned").and_then(|x| x.as_number()),
        Some(1.0)
    );
    let exit = v.get("exit_code").and_then(|x| x.as_number()).unwrap();
    assert_eq!(exit as i32 & Rule::FloatHygiene.exit_bit(), 1);
    let findings = match v.get("findings") {
        Some(dwv_obs::json::JsonValue::Array(items)) => items,
        other => panic!("findings not an array: {other:?}"),
    };
    assert_eq!(findings.len(), 6);
    for f in findings {
        assert_eq!(
            f.get("rule").and_then(|x| x.as_str()),
            Some("float-hygiene")
        );
        assert_eq!(
            f.get("file").and_then(|x| x.as_str()),
            Some("crates/poly/src/bernstein.rs")
        );
        assert!(f.get("line").and_then(|x| x.as_number()).is_some());
        assert!(f.get("message").and_then(|x| x.as_str()).is_some());
    }
    let suppressed = match v.get("suppressed") {
        Some(dwv_obs::json::JsonValue::Array(items)) => items,
        other => panic!("suppressed not an array: {other:?}"),
    };
    assert_eq!(suppressed.len(), 1);
    assert!(suppressed[0]
        .get("reason")
        .and_then(|x| x.as_str())
        .is_some());
    assert!(v.get("unsafe_census").and_then(|x| x.as_object()).is_some());
}

#[test]
fn cli_reports_bad_annotation_exit_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_dwv-lint"))
        .arg(fixture_path("bad_annotation.rs"))
        .arg("--json")
        .output()
        .expect("run dwv-lint");
    assert_eq!(out.status.code(), Some(32), "{out:?}");
    let v = dwv_obs::json::parse(&String::from_utf8_lossy(&out.stdout)).expect("CLI JSON parses");
    assert_eq!(v.get("exit_code").and_then(|x| x.as_number()), Some(32.0));
}

#[test]
fn workspace_lint_is_clean() {
    // The acceptance gate: the shipped tree carries zero findings under
    // `--deny all`. Every exemption must be a reasoned annotation.
    let root = dwv_lint::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let r = dwv_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        r.findings.is_empty(),
        "workspace has lint findings:\n{}",
        r.to_text(Rule::all())
    );
    assert!(r.files_scanned > 40, "suspiciously few files scanned");
    // The debt ceiling: the paydown must never regress past 30% below the
    // recorded baseline.
    let audit = r
        .audit
        .as_ref()
        .expect("workspace report carries the audit");
    let ceiling = audit.suppression_baseline * 7 / 10;
    assert!(
        r.suppressed.len() <= ceiling,
        "suppression debt regressed: {} > ceiling {ceiling}",
        r.suppressed.len()
    );
    // The interprocedural passes actually ran: the proof crates' public
    // surface is predominantly proved panic-free.
    assert!(
        audit.pub_fns_proved > 100,
        "suspiciously few proved public fns: {}",
        audit.pub_fns_proved
    );
}
