//! The two-phase parallel lint engine.
//!
//! Phase 0 lexes and parses every file in parallel on a
//! [`dwv_core::parallel::WorkerPool`]; the signature index is then built
//! serially in sorted file order. Phase 1 runs the per-file rule passes in
//! parallel, producing one [`FileFacts`] per file (optionally served from
//! a content-hash cache). Phase 2 is serial: the call graph, the
//! panic-reachability and float-taint passes, unused-annotation
//! detection, and the audit roll-up.
//!
//! Determinism contract: every merge is keyed by the sorted file index and
//! every aggregate is re-sorted before the report is assembled, so the
//! report is **byte-identical** at any thread count — `ci.sh` diffs a
//! parallel run against `--serial` to enforce this.

use crate::callgraph::{self, CallGraph};
use crate::config::{FileClass, ZoneConfig};
use crate::report::{Audit, Finding, Report, Rule, Suppression};
use crate::rules::{self, AllowFact, CallFact, FileFacts, FnFact, Seed, SigIndex};
use crate::{lexer, parser, walk};
use dwv_core::parallel::WorkerPool;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Suppression count recorded when the interprocedural engine landed: the
/// debt-paydown baseline every report is measured against.
pub const SUPPRESSION_BASELINE: usize = 376;

/// Bump to invalidate every cached [`FileFacts`] after a rule change.
const CACHE_VERSION: u32 = 1;

/// Engine configuration (CLI flags map onto this).
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads for the parallel phases (`None`: machine default).
    pub threads: Option<usize>,
    /// Run every phase serially on the calling thread.
    pub serial: bool,
    /// Directory for the content-hash facts cache (`None`: no cache).
    pub cache_dir: Option<PathBuf>,
}

impl EngineOptions {
    fn pool(&self) -> Option<WorkerPool> {
        if self.serial {
            return None;
        }
        Some(match self.threads {
            Some(n) => WorkerPool::new(n),
            None => WorkerPool::with_default_threads(),
        })
    }
}

/// Maps `f` over `items` — on the pool when one is configured, serially
/// otherwise. Results are in item order either way.
fn run_map<T: Sync, R: Send>(
    pool: Option<&WorkerPool>,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    match pool {
        Some(p) => p.map(items, f),
        None => items.iter().map(f).collect(),
    }
}

/// Lints a set of in-memory sources (`(rel_path, contents)` pairs) and
/// assembles the full interprocedural report. The workspace CLI, the
/// fixture tests, and the `lintcheck` family all funnel through here.
#[must_use]
pub fn lint_sources(
    sources: &[(String, String)],
    zones: &ZoneConfig,
    opts: &EngineOptions,
) -> Report {
    let mut order: Vec<usize> = (0..sources.len()).collect();
    order.sort_by(|a, b| sources[*a].0.cmp(&sources[*b].0));
    let sorted: Vec<(String, String)> = order
        .into_iter()
        .map(|i| (sources[i].0.clone(), sources[i].1.clone()))
        .collect();
    let pool = opts.pool();

    // Phase 0: lex + parse in parallel.
    let lexed_parsed: Vec<(lexer::Lexed, parser::Parsed)> =
        run_map(pool.as_ref(), &sorted, |(_, src)| {
            let l = lexer::lex(src);
            let p = parser::parse(&l);
            (l, p)
        });

    // Signature index: serial, in sorted file order (order-insensitive by
    // construction — conflicting signatures collapse to Unknown).
    let sigs = SigIndex::build(lexed_parsed.iter().map(|(_, p)| p), zones);

    // Phase 1: per-file rule passes in parallel (cache-served when a
    // cache directory is configured).
    let cache = opts
        .cache_dir
        .as_deref()
        .map(|d| CacheKeys::new(d, &sorted, zones));
    let inputs: Vec<(usize, &(String, String))> = sorted.iter().enumerate().collect();
    let files: Vec<FileFacts> = run_map(pool.as_ref(), &inputs, |(i, (rel, _src))| {
        if let Some(c) = &cache {
            if let Some(hit) = c.load(*i) {
                return hit;
            }
        }
        let (lexed, parsed) = &lexed_parsed[*i];
        let facts = rules::analyze_file(rel, lexed, parsed, zones, &sigs);
        if let Some(c) = &cache {
            c.store(*i, &facts);
        }
        facts
    });

    // Phase 2: serial interprocedural passes and report assembly.
    assemble(files, zones)
}

/// Phase 2: call graph, reachability, taint, unused-annotation detection,
/// audit roll-up, and deterministic sorting.
fn assemble(files: Vec<FileFacts>, zones: &ZoneConfig) -> Report {
    let graph = CallGraph::build(&files);
    let reach = callgraph::panic_reachability(&files, &graph, zones);
    let taint = callgraph::float_taint(&files, &graph, zones);

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut soft_seeds: BTreeMap<String, usize> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        report.findings.extend(file.findings.iter().cloned());
        report.suppressed.extend(file.suppressed.iter().cloned());
        if file.unsafe_count > 0 {
            *report.unsafe_census.entry(file.krate.clone()).or_insert(0) += file.unsafe_count;
        }
        if file.soft_seeds > 0 {
            *soft_seeds.entry(file.krate.clone()).or_insert(0) += file.soft_seeds;
        }
        // Unused-annotation detection: every allow comment must have been
        // consumed by a per-file or interprocedural pass.
        let mut used: BTreeSet<u32> = file.used_allow_lines.iter().copied().collect();
        for pass_used in [&reach.used_allow_lines, &taint.used_allow_lines] {
            if let Some(lines) = pass_used.get(&fi) {
                used.extend(lines.iter().copied());
            }
        }
        let mut reported: BTreeSet<u32> = BTreeSet::new();
        for a in &file.allows {
            if used.contains(&a.comment_line) || !reported.insert(a.comment_line) {
                continue;
            }
            let sub = a.sub.as_ref().map_or(String::new(), |s| format!("#{s}"));
            report.findings.push(Finding {
                rule: Rule::Annotation,
                sub: Some("unused".to_string()),
                file: file.rel_path.clone(),
                line: a.comment_line,
                message: format!(
                    "unused suppression `allow{}({}{})`: no finding matches — delete the \
                     annotation",
                    if a.file_scope { "-file" } else { "" },
                    a.rule,
                    sub
                ),
            });
        }
    }
    report.findings.extend(reach.findings);
    report.findings.extend(taint.findings);
    report.suppressed.extend(reach.suppressed);
    report.suppressed.extend(taint.suppressed);

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule.id(), &a.sub, &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule.id(),
            &b.sub,
            &b.message,
        ))
    });
    report.suppressed.sort_by(|a, b| {
        (&a.file, a.line, a.rule.id(), &a.reason).cmp(&(&b.file, b.line, b.rule.id(), &b.reason))
    });

    let mut by_rule: BTreeMap<String, usize> = BTreeMap::new();
    for s in &report.suppressed {
        *by_rule.entry(s.rule.id().to_string()).or_insert(0) += 1;
    }
    report.audit = Some(Audit {
        suppression_baseline: SUPPRESSION_BASELINE,
        suppressed_by_rule: by_rule,
        pub_fns_proved: reach.proved,
        pub_fns_audited: reach.audited,
        soft_seeds,
    });
    report
}

/// Lints the workspace rooted at `root` through the parallel engine.
pub fn lint_workspace(root: &Path, opts: &EngineOptions) -> io::Result<Report> {
    let zones = ZoneConfig::default();
    let sources = read_workspace(root)?;
    Ok(lint_sources(&sources, &zones, opts))
}

/// Answers `--why <fn>` for the workspace: the panic-reachability status
/// of every workspace function with that name, with call chains.
pub fn why_workspace(root: &Path, name: &str) -> io::Result<Vec<String>> {
    let zones = ZoneConfig::default();
    let sources = read_workspace(root)?;
    let lexed_parsed: Vec<(lexer::Lexed, parser::Parsed)> = sources
        .iter()
        .map(|(_, src)| {
            let l = lexer::lex(src);
            let p = parser::parse(&l);
            (l, p)
        })
        .collect();
    let sigs = SigIndex::build(lexed_parsed.iter().map(|(_, p)| p), &zones);
    let files: Vec<FileFacts> = sources
        .iter()
        .zip(lexed_parsed.iter())
        .map(|((rel, _), (l, p))| rules::analyze_file(rel, l, p, &zones, &sigs))
        .collect();
    let graph = CallGraph::build(&files);
    Ok(callgraph::why(&files, &graph, name))
}

/// Reads every lintable source file under `root` as `(rel_path, contents)`
/// pairs — the input shape [`lint_sources`] consumes. Public so benchmark
/// harnesses can read once and time the engine alone.
pub fn read_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for rel in walk::collect_rs_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        out.push((rel, src));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Content-hash facts cache
// ---------------------------------------------------------------------------

/// Per-run cache keying: one 64-bit FNV-1a key per file over
/// `(CACHE_VERSION, zone map, whole-workspace content, file path, file
/// content)`. The whole-workspace component is deliberate — the signature
/// index (and thus any file's judgments) can depend on every other file,
/// so any edit invalidates the lot; the common case served is the
/// unchanged re-run (CI, pre-commit).
struct CacheKeys {
    dir: PathBuf,
    keys: Vec<u64>,
}

impl CacheKeys {
    fn new(dir: &Path, sorted: &[(String, String)], zones: &ZoneConfig) -> Self {
        let mut ws = Fnv::new();
        ws.write(&CACHE_VERSION.to_le_bytes());
        ws.write_str(&format!("{zones:?}"));
        for (rel, src) in sorted {
            ws.write_str(rel);
            ws.write_str(src);
        }
        let ws_hash = ws.finish();
        let keys = sorted
            .iter()
            .map(|(rel, src)| {
                let mut h = Fnv::new();
                h.write(&ws_hash.to_le_bytes());
                h.write_str(rel);
                h.write_str(src);
                h.finish()
            })
            .collect();
        let _ = fs::create_dir_all(dir);
        Self {
            dir: dir.to_path_buf(),
            keys,
        }
    }

    fn path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("{:016x}.facts", self.keys[i]))
    }

    fn load(&self, i: usize) -> Option<FileFacts> {
        let text = fs::read_to_string(self.path(i)).ok()?;
        deserialize_facts(&text)
    }

    fn store(&self, i: usize, facts: &FileFacts) {
        let _ = fs::write(self.path(i), serialize_facts(facts));
    }
}

/// 64-bit FNV-1a.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

// Facts serialization: one record per line, tab-separated fields with
// `\\`/`\t`/`\n` escapes. Any malformed line fails the whole
// deserialization (treated as a cache miss), so format drift is safe.

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

fn rule_to_id(r: Rule) -> &'static str {
    r.id()
}

fn rule_from_id(id: &str) -> Option<Rule> {
    if id == "annotation" {
        return Some(Rule::Annotation);
    }
    Rule::from_id(id)
}

fn class_to_str(c: FileClass) -> &'static str {
    match c {
        FileClass::Lib => "lib",
        FileClass::Bin => "bin",
        FileClass::TestLike => "test",
    }
}

fn class_from_str(s: &str) -> Option<FileClass> {
    match s {
        "lib" => Some(FileClass::Lib),
        "bin" => Some(FileClass::Bin),
        "test" => Some(FileClass::TestLike),
        _ => None,
    }
}

/// Serializes [`FileFacts`] to the line-record cache format.
#[must_use]
pub fn serialize_facts(f: &FileFacts) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F\t{}\t{}\t{}\t{}\t{}",
        esc(&f.rel_path),
        class_to_str(f.class),
        esc(&f.krate),
        f.unsafe_count,
        f.soft_seeds
    );
    for d in &f.findings {
        let _ = writeln!(
            s,
            "d\t{}\t{}\t{}\t{}\t{}",
            rule_to_id(d.rule),
            esc(d.sub.as_deref().unwrap_or("")),
            esc(&d.file),
            d.line,
            esc(&d.message)
        );
    }
    for p in &f.suppressed {
        let _ = writeln!(
            s,
            "s\t{}\t{}\t{}\t{}",
            rule_to_id(p.rule),
            esc(&p.file),
            p.line,
            esc(&p.reason)
        );
    }
    for func in &f.fns {
        let _ = writeln!(
            s,
            "n\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&func.name),
            esc(func.owner.as_deref().unwrap_or("")),
            u8::from(func.is_pub),
            func.line,
            u8::from(func.ret_float),
            u8::from(func.raw_float)
        );
        for seed in &func.seeds {
            let _ = writeln!(s, "e\t{}\t{}", seed.line, esc(&seed.what));
        }
        for c in &func.calls {
            let _ = writeln!(
                s,
                "c\t{}\t{}\t{}\t{}",
                esc(&c.name),
                esc(c.qual.as_deref().unwrap_or("")),
                u8::from(c.is_method),
                c.line
            );
        }
    }
    for a in &f.allows {
        let _ = writeln!(
            s,
            "a\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&a.rule),
            esc(a.sub.as_deref().unwrap_or("")),
            esc(&a.reason),
            a.target_line,
            a.comment_line,
            u8::from(a.file_scope)
        );
    }
    for u in &f.used_allow_lines {
        let _ = writeln!(s, "u\t{u}");
    }
    s
}

/// Deserializes the cache format; `None` on any malformed record.
#[must_use]
pub fn deserialize_facts(text: &str) -> Option<FileFacts> {
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split('\t').collect();
    if header.len() != 6 || header[0] != "F" {
        return None;
    }
    let mut f = FileFacts {
        rel_path: unesc(header[1])?,
        class: class_from_str(header[2])?,
        krate: unesc(header[3])?,
        findings: Vec::new(),
        suppressed: Vec::new(),
        unsafe_count: header[4].parse().ok()?,
        fns: Vec::new(),
        allows: Vec::new(),
        used_allow_lines: Vec::new(),
        soft_seeds: header[5].parse().ok()?,
    };
    let opt = |s: String| if s.is_empty() { None } else { Some(s) };
    for line in lines {
        let parts: Vec<&str> = line.split('\t').collect();
        match (parts[0], parts.len()) {
            ("d", 6) => f.findings.push(Finding {
                rule: rule_from_id(parts[1])?,
                sub: opt(unesc(parts[2])?),
                file: unesc(parts[3])?,
                line: parts[4].parse().ok()?,
                message: unesc(parts[5])?,
            }),
            ("s", 5) => f.suppressed.push(Suppression {
                rule: rule_from_id(parts[1])?,
                file: unesc(parts[2])?,
                line: parts[3].parse().ok()?,
                reason: unesc(parts[4])?,
            }),
            ("n", 7) => f.fns.push(FnFact {
                name: unesc(parts[1])?,
                owner: opt(unesc(parts[2])?),
                is_pub: parts[3] == "1",
                line: parts[4].parse().ok()?,
                ret_float: parts[5] == "1",
                raw_float: parts[6] == "1",
                seeds: Vec::new(),
                calls: Vec::new(),
            }),
            ("e", 3) => f.fns.last_mut()?.seeds.push(Seed {
                line: parts[1].parse().ok()?,
                what: unesc(parts[2])?,
            }),
            ("c", 5) => f.fns.last_mut()?.calls.push(CallFact {
                name: unesc(parts[1])?,
                qual: opt(unesc(parts[2])?),
                is_method: parts[3] == "1",
                line: parts[4].parse().ok()?,
            }),
            ("a", 7) => f.allows.push(AllowFact {
                rule: unesc(parts[1])?,
                sub: opt(unesc(parts[2])?),
                reason: unesc(parts[3])?,
                target_line: parts[4].parse().ok()?,
                comment_line: parts[5].parse().ok()?,
                file_scope: parts[6] == "1",
            }),
            ("u", 2) => f.used_allow_lines.push(parts[1].parse().ok()?),
            _ => return None,
        }
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_pair(path: &str, src: &str) -> (String, String) {
        (path.to_string(), src.to_string())
    }

    fn fixture_sources() -> Vec<(String, String)> {
        vec![
            src_pair(
                "crates/interval/src/zone.rs",
                "/// Entry.\npub fn entry(x: usize) -> usize { helper(x) }\nfn helper(x: usize) -> usize { x + 1 }\n",
            ),
            src_pair(
                "crates/interval/src/other.rs",
                "/// Other.\npub fn other(v: &[usize]) -> usize { v.len() }\n",
            ),
        ]
    }

    #[test]
    fn serial_and_parallel_reports_are_byte_identical() {
        let zones = ZoneConfig::default();
        let sources = fixture_sources();
        let serial = lint_sources(
            &sources,
            &zones,
            &EngineOptions {
                serial: true,
                ..EngineOptions::default()
            },
        );
        for threads in [2, 4, 8] {
            let par = lint_sources(
                &sources,
                &zones,
                &EngineOptions {
                    threads: Some(threads),
                    ..EngineOptions::default()
                },
            );
            assert_eq!(
                serial.to_text(Rule::all()),
                par.to_text(Rule::all()),
                "threads={threads}"
            );
            assert_eq!(
                serial.to_json(Rule::all()),
                par.to_json(Rule::all()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let zones = ZoneConfig::default();
        let sources = vec![src_pair(
            "crates/interval/src/zone.rs",
            "// dwv-lint: allow(determinism) -- nothing here needs it\n/// Doc.\npub fn f(x: usize) -> usize { x }\n",
        )];
        let report = lint_sources(&sources, &zones, &EngineOptions::default());
        let unused: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.sub.as_deref() == Some("unused"))
            .collect();
        assert_eq!(unused.len(), 1, "{:?}", report.findings);
        assert_eq!(unused[0].rule, Rule::Annotation);
        assert_eq!(unused[0].line, 1);
    }

    #[test]
    fn facts_roundtrip_through_cache_format() {
        let zones = ZoneConfig::default();
        let sources = fixture_sources();
        let report_dir = std::env::temp_dir().join("dwv-lint-cache-test");
        let _ = fs::remove_dir_all(&report_dir);
        let opts = EngineOptions {
            serial: true,
            cache_dir: Some(report_dir.clone()),
            ..EngineOptions::default()
        };
        let fresh = lint_sources(&sources, &zones, &opts);
        let cached = lint_sources(&sources, &zones, &opts);
        assert_eq!(fresh.to_text(Rule::all()), cached.to_text(Rule::all()));
        assert_eq!(fresh.to_json(Rule::all()), cached.to_json(Rule::all()));
        let entries = fs::read_dir(&report_dir).expect("cache dir").count();
        assert_eq!(entries, sources.len());
        let _ = fs::remove_dir_all(&report_dir);
    }

    #[test]
    fn serde_rejects_malformed_records() {
        assert!(deserialize_facts("").is_none());
        assert!(deserialize_facts("F\ta\tlib\tk\t0").is_none());
        assert!(deserialize_facts("F\ta\tlib\tk\t0\t0\nz\tx").is_none());
        let ok = deserialize_facts("F\ta\tlib\tk\t0\t0\n").expect("minimal facts");
        assert_eq!(ok.rel_path, "a");
    }

    #[test]
    fn audit_section_is_populated() {
        let zones = ZoneConfig::default();
        let report = lint_sources(&fixture_sources(), &zones, &EngineOptions::default());
        let audit = report.audit.as_ref().expect("audit");
        assert_eq!(audit.suppression_baseline, SUPPRESSION_BASELINE);
        assert_eq!(audit.pub_fns_proved, 2);
        assert_eq!(audit.pub_fns_audited, 0);
    }
}
