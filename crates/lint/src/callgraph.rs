//! The whole-workspace call graph and the two interprocedural passes that
//! run over it: panic-reachability (R2v2) and float-taint (R1v2).
//!
//! Nodes are the functions collected by the per-file passes
//! ([`crate::rules::FnFact`]); edges come from name-based resolution —
//! `Type::m()` and `self.m()` resolve to methods of the named/owning type
//! first, `x.m()` and free calls conservatively resolve to *every*
//! workspace function of that name (same-crate definitions preferred).
//! The over-approximation is sound for both passes: a spurious edge can
//! only add obligations, never hide one. The escape hatch for an
//! over-approximated chain is a reasoned `allow(panic-freedom#reach)` on
//! the function, which the report records as an *audited* (not proved)
//! API.
//!
//! Everything is keyed and ordered by `(file index, fn index)`, so graph
//! construction and both passes are bit-deterministic at any worker count.

use crate::config::ZoneConfig;
use crate::report::{Finding, Rule, Suppression};
use crate::rules::{AllowFact, FileFacts, FnFact};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One node of the call graph: `(file index, fn index within file)`.
pub type NodeId = (usize, usize);

/// Method names that collide with the std prelude: an unqualified
/// `x.m()` with one of these names almost always targets a std container
/// or iterator, so resolving it to a same-named workspace function would
/// flood the graph with false edges (`self.toks.get(i)` is not
/// `Family::get`). Calls still resolve through the owner when the
/// receiver is `self` or the type is named (`Family::get(...)`), and
/// operator sugar is invisible to the graph either way, so the denylist
/// costs no edges the collector could have attributed soundly.
const STD_COLLISION_METHODS: &[&str] = &[
    "abs",
    "add",
    "and_then",
    "bytes",
    "chars",
    "clear",
    "clone",
    "collect",
    "contains",
    "contains_key",
    "div",
    "ends_with",
    "entry",
    "expect",
    "extend",
    "filter",
    "first",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "min",
    "mul",
    "neg",
    "next",
    "or_insert",
    "parse",
    "peek",
    "pop",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "set",
    "sort",
    "sort_by",
    "split",
    "starts_with",
    "sub",
    "take",
    "to_string",
    "trim",
    "unwrap",
    "unwrap_or",
    "write",
];

/// The resolved whole-workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing resolved edges per node, sorted and deduplicated.
    pub edges: BTreeMap<NodeId, Vec<NodeId>>,
    /// Function name → all nodes defining that name.
    by_name: BTreeMap<String, Vec<NodeId>>,
    /// `(owner type, name)` → method nodes.
    by_owner: BTreeMap<(String, String), Vec<NodeId>>,
}

impl CallGraph {
    /// Builds the graph over the per-file facts.
    #[must_use]
    pub fn build(files: &[FileFacts]) -> Self {
        let mut g = Self::default();
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                let id = (fi, ni);
                g.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(owner) = &f.owner {
                    g.by_owner
                        .entry((owner.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                let mut out: Vec<NodeId> = Vec::new();
                for c in &f.calls {
                    g.resolve(
                        files,
                        (fi, ni),
                        &c.name,
                        c.qual.as_deref(),
                        c.is_method,
                        &mut out,
                    );
                }
                out.sort_unstable();
                out.dedup();
                g.edges.insert((fi, ni), out);
            }
        }
        g
    }

    /// Resolves one call to candidate callee nodes, appending to `out`.
    fn resolve(
        &self,
        files: &[FileFacts],
        from: NodeId,
        name: &str,
        qual: Option<&str>,
        is_method: bool,
        out: &mut Vec<NodeId>,
    ) {
        // `Self::m()` names the caller's own type: resolve through the
        // owner or not at all (a derived/trait-provided method is not a
        // workspace node, and by-name fallback would fan out to every
        // `new`/`default` in the repo).
        if let Some("Self" | "self") = qual {
            let (fi, ni) = from;
            if let Some(owner) = &files[fi].fns[ni].owner {
                if let Some(methods) = self.by_owner.get(&(owner.clone(), name.to_string())) {
                    out.extend(methods.iter().copied());
                }
            }
            return;
        }
        if let Some(q) = qual {
            // `Type::m()` / `module::f()`: methods of the named type win;
            // otherwise free fns in a file whose stem or owning crate
            // matches the module segment (`tables::binomial`,
            // `dwv_obs::counter`). A qualifier matching neither is an
            // external type (`String::new`, `f64::from_bits`) and
            // contributes no edges — falling back to every definition of
            // the name would flood the graph.
            if let Some(methods) = self.by_owner.get(&(q.to_string(), name.to_string())) {
                out.extend(methods.iter().copied());
                return;
            }
            let crate_name = q.strip_prefix("dwv_").unwrap_or(q);
            if let Some(all) = self.by_name.get(name) {
                out.extend(all.iter().copied().filter(|(fi, _)| {
                    let stem_match = files[*fi]
                        .rel_path
                        .rsplit('/')
                        .next()
                        .and_then(|f| f.strip_suffix(".rs"))
                        .is_some_and(|stem| stem == q);
                    stem_match || files[*fi].krate == crate_name
                }));
            }
            return;
        }
        // `self.m()` / `x.m()` / `f()`: same-owner methods first, then
        // same-crate definitions, then every workspace fn of the name.
        let (fi, ni) = from;
        let caller = &files[fi].fns[ni];
        if let Some(owner) = &caller.owner {
            if let Some(methods) = self.by_owner.get(&(owner.clone(), name.to_string())) {
                out.extend(methods.iter().copied());
                return;
            }
        }
        // Unqualified method calls on unknown receivers only resolve by
        // bare name when the name cannot be a std-prelude collision.
        if is_method && STD_COLLISION_METHODS.contains(&name) {
            return;
        }
        if let Some(all) = self.by_name.get(name) {
            let same_crate: Vec<NodeId> = all
                .iter()
                .copied()
                .filter(|(f2, _)| files[*f2].krate == files[fi].krate)
                .collect();
            if same_crate.is_empty() {
                out.extend(all.iter().copied());
            } else {
                out.extend(same_crate);
            }
        }
    }

    /// Public wrapper over call resolution (used by the taint pass and the
    /// `--why` trace); sorts and deduplicates the result.
    pub fn resolve_call(
        &self,
        files: &[FileFacts],
        from: NodeId,
        name: &str,
        qual: Option<&str>,
        is_method: bool,
        out: &mut Vec<NodeId>,
    ) {
        self.resolve(files, from, name, qual, is_method, out);
        out.sort_unstable();
        out.dedup();
    }

    /// All nodes whose fn name is `name` (entry points for `--why`).
    #[must_use]
    pub fn nodes_named(&self, name: &str) -> Vec<NodeId> {
        self.by_name.get(name).cloned().unwrap_or_default()
    }
}

/// Looks up a suppression among a file's [`AllowFact`]s with the same
/// semantics as the per-file passes: a plain `allow(rule)` covers every
/// sub-pattern, a sub-allow covers only its own; line scope wins over
/// file scope.
fn allow_for<'f>(
    allows: &'f [AllowFact],
    rule: &str,
    sub: Option<&str>,
    line: u32,
) -> Option<&'f AllowFact> {
    let matches = |a: &AllowFact| {
        a.rule == rule
            && match (&a.sub, sub) {
                (None, _) => true,
                (Some(have), Some(want)) => have == want,
                (Some(_), None) => false,
            }
    };
    allows
        .iter()
        .find(|a| !a.file_scope && a.target_line == line && matches(a))
        .or_else(|| allows.iter().find(|a| a.file_scope && matches(a)))
}

/// Renders `crate::Owner::name` (or `crate::name`) for messages.
fn qualified(file: &FileFacts, f: &FnFact) -> String {
    match &f.owner {
        Some(o) => format!("{}::{}::{}", file.krate, o, f.name),
        None => format!("{}::{}", file.krate, f.name),
    }
}

/// The result of the panic-reachability pass.
#[derive(Debug, Default)]
pub struct ReachResult {
    /// Findings: public proof-crate fns that reach a panic unaudited.
    pub findings: Vec<Finding>,
    /// Suppressions used (`panic-freedom#reach` audit annotations).
    pub suppressed: Vec<Suppression>,
    /// Annotation-comment lines this pass used, per file index.
    pub used_allow_lines: BTreeMap<usize, Vec<u32>>,
    /// Public proof-crate fns proved transitively panic-free.
    pub proved: usize,
    /// Public proof-crate fns carrying a `#reach` audit annotation.
    pub audited: usize,
}

/// Shared panic-set computation: audited nodes (fn-level `#reach` allows)
/// are cut out of the graph — the annotation asserts the fn's panics
/// cannot fire from its contract, so they must not taint callers either.
struct PanicSet {
    audited: BTreeSet<NodeId>,
    panicking: BTreeSet<NodeId>,
    /// Seeded node → human-readable seed description.
    seed_reason: BTreeMap<NodeId, String>,
}

fn panic_set(files: &[FileFacts], graph: &CallGraph) -> PanicSet {
    let mut audited: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if allow_for(&file.allows, "panic-freedom", Some("reach"), f.line).is_some() {
                audited.insert((fi, ni));
            }
        }
    }
    let mut panicking: BTreeSet<NodeId> = BTreeSet::new();
    let mut seed_reason: BTreeMap<NodeId, String> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if audited.contains(&(fi, ni)) {
                continue;
            }
            if let Some(seed) = f.seeds.first() {
                panicking.insert((fi, ni));
                seed_reason.insert(
                    (fi, ni),
                    format!("{} at {}:{}", seed.what, file.rel_path, seed.line),
                );
            }
        }
    }
    let mut reverse: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (from, outs) in &graph.edges {
        for to in outs {
            reverse.entry(*to).or_default().push(*from);
        }
    }
    let mut work: Vec<NodeId> = panicking.iter().copied().collect();
    while let Some(n) = work.pop() {
        if let Some(callers) = reverse.get(&n) {
            for c in callers {
                if audited.contains(c) || panicking.contains(c) {
                    continue;
                }
                panicking.insert(*c);
                work.push(*c);
            }
        }
    }
    PanicSet {
        audited,
        panicking,
        seed_reason,
    }
}

/// Runs the panic-reachability pass: computes the transitive panic set
/// from the seeded frontier and checks every public function of the
/// proof crates against it.
#[must_use]
pub fn panic_reachability(
    files: &[FileFacts],
    graph: &CallGraph,
    zones: &ZoneConfig,
) -> ReachResult {
    let ps = panic_set(files, graph);
    let mut res = ReachResult::default();
    for (fi, file) in files.iter().enumerate() {
        if !zones.in_proof_crate(&file.rel_path) || !file.rel_path.contains("/src/") {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            if !f.is_pub {
                continue;
            }
            let id = (fi, ni);
            if ps.audited.contains(&id) {
                if let Some(a) = allow_for(&file.allows, "panic-freedom", Some("reach"), f.line) {
                    res.suppressed.push(Suppression {
                        rule: Rule::PanicFreedom,
                        file: file.rel_path.clone(),
                        line: f.line,
                        reason: a.reason.clone(),
                    });
                }
                res.audited += 1;
                continue;
            }
            if ps.panicking.contains(&id) {
                let chain = shortest_chain(files, graph, id, &ps.panicking, &ps.seed_reason);
                res.findings.push(Finding {
                    rule: Rule::PanicFreedom,
                    sub: Some("reach".to_string()),
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "public fn `{}` can reach a panic: {chain}",
                        qualified(file, f)
                    ),
                });
            } else {
                res.proved += 1;
            }
        }
    }
    // Every fn-level `#reach` annotation is "used" — it shapes the panic
    // set even when no public finding names it.
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if ps.audited.contains(&(fi, ni)) {
                if let Some(a) = allow_for(&file.allows, "panic-freedom", Some("reach"), f.line) {
                    res.used_allow_lines
                        .entry(fi)
                        .or_default()
                        .push(a.comment_line);
                }
            }
        }
    }
    for lines in res.used_allow_lines.values_mut() {
        lines.sort_unstable();
        lines.dedup();
    }
    res
}

/// The shortest call chain from `start` to a seeded node, rendered as
/// `a -> b -> c (seed: …)`. BFS restricted to panicking nodes, breaking
/// ties by node order, so the chain is deterministic.
#[must_use]
pub fn shortest_chain(
    files: &[FileFacts],
    graph: &CallGraph,
    start: NodeId,
    panicking: &BTreeSet<NodeId>,
    seed_reason: &BTreeMap<NodeId, String>,
) -> String {
    let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(start);
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    seen.insert(start);
    let mut target = None;
    while let Some(n) = queue.pop_front() {
        if seed_reason.contains_key(&n) {
            target = Some(n);
            break;
        }
        if let Some(outs) = graph.edges.get(&n) {
            for o in outs {
                if panicking.contains(o) && seen.insert(*o) {
                    prev.insert(*o, n);
                    queue.push_back(*o);
                }
            }
        }
    }
    let Some(t) = target else {
        return "call chain not reconstructible (over-approximated edge)".to_string();
    };
    let mut path = vec![t];
    let mut cur = t;
    while cur != start {
        let Some(p) = prev.get(&cur) else { break };
        path.push(*p);
        cur = *p;
    }
    path.reverse();
    let names: Vec<String> = path
        .iter()
        .map(|(fi, ni)| qualified(&files[*fi], &files[*fi].fns[*ni]))
        .collect();
    let seed = seed_reason
        .get(&t)
        .cloned()
        .unwrap_or_else(|| "panic seed".to_string());
    format!("{} (seed: {seed})", names.join(" -> "))
}

/// `--why <fn>`: all panic chains (one per matching definition) for the
/// named function, or proof statements when none reach a panic.
#[must_use]
pub fn why(files: &[FileFacts], graph: &CallGraph, name: &str) -> Vec<String> {
    let ps = panic_set(files, graph);
    let nodes = graph.nodes_named(name);
    if nodes.is_empty() {
        return vec![format!("no workspace function named `{name}`")];
    }
    nodes
        .iter()
        .map(|id| {
            let (fi, ni) = *id;
            let f = &files[fi].fns[ni];
            let label = format!(
                "{} ({}:{})",
                qualified(&files[fi], f),
                files[fi].rel_path,
                f.line
            );
            if ps.audited.contains(id) {
                format!("{label}: audited (`allow(panic-freedom#reach)` on the fn)")
            } else if ps.panicking.contains(id) {
                format!(
                    "{label}: reaches a panic via {}",
                    shortest_chain(files, graph, *id, &ps.panicking, &ps.seed_reason)
                )
            } else {
                format!("{label}: proved transitively panic-free")
            }
        })
        .collect()
}

/// The result of the float-taint pass.
#[derive(Debug, Default)]
pub struct TaintResult {
    /// Findings: zone functions consuming a tainted raw-float helper.
    pub findings: Vec<Finding>,
    /// Suppressions used (`float-hygiene#taint` audited sinks).
    pub suppressed: Vec<Suppression>,
    /// Annotation-comment lines this pass used, per file index.
    pub used_allow_lines: BTreeMap<usize, Vec<u32>>,
}

/// Runs the float-taint pass (R1v2). A function outside the float zone
/// whose body performs raw float arithmetic *and* returns a raw float is
/// a taint producer; taint propagates through raw-float-returning
/// callers. A float-zone function calling a tainted helper is a finding
/// unless the call line carries an `allow(float-hygiene#taint)`
/// audited-sink annotation.
#[must_use]
pub fn float_taint(files: &[FileFacts], graph: &CallGraph, zones: &ZoneConfig) -> TaintResult {
    let mut tainted: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if f.ret_float && f.raw_float {
                tainted.insert((fi, ni));
            }
        }
    }
    // Propagate to raw-float-returning callers: calling a tainted fn and
    // returning f64 forwards the unrounded value across the boundary.
    let mut reverse: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (from, outs) in &graph.edges {
        for to in outs {
            reverse.entry(*to).or_default().push(*from);
        }
    }
    let mut work: Vec<NodeId> = tainted.iter().copied().collect();
    while let Some(n) = work.pop() {
        if let Some(callers) = reverse.get(&n) {
            for id in callers {
                if tainted.contains(id) {
                    continue;
                }
                let (fi, ni) = *id;
                if files[fi].fns[ni].ret_float {
                    tainted.insert(*id);
                    work.push(*id);
                }
            }
        }
    }

    let mut res = TaintResult::default();
    for (fi, file) in files.iter().enumerate() {
        if !zones.in_float_zone(&file.rel_path) && !zones.is_kernel_module(&file.rel_path) {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
            for c in &f.calls {
                let mut resolved: Vec<NodeId> = Vec::new();
                graph.resolve_call(
                    files,
                    (fi, ni),
                    &c.name,
                    c.qual.as_deref(),
                    c.is_method,
                    &mut resolved,
                );
                let Some((tfi, tni)) = resolved.iter().find(|id| tainted.contains(*id)) else {
                    continue;
                };
                if !flagged_lines.insert(c.line) {
                    continue;
                }
                let callee = &files[*tfi].fns[*tni];
                if let Some(a) = allow_for(&file.allows, "float-hygiene", Some("taint"), c.line) {
                    res.used_allow_lines
                        .entry(fi)
                        .or_default()
                        .push(a.comment_line);
                    res.suppressed.push(Suppression {
                        rule: Rule::FloatHygiene,
                        file: file.rel_path.clone(),
                        line: c.line,
                        reason: a.reason.clone(),
                    });
                } else {
                    res.findings.push(Finding {
                        rule: Rule::FloatHygiene,
                        sub: Some("taint".to_string()),
                        file: file.rel_path.clone(),
                        line: c.line,
                        message: format!(
                            "zone fn `{}` consumes raw-float helper `{}`: route the result \
                             through a directed-rounding primitive or audit the sink",
                            qualified(file, f),
                            qualified(&files[*tfi], callee),
                        ),
                    });
                }
            }
        }
    }
    for lines in res.used_allow_lines.values_mut() {
        lines.sort_unstable();
        lines.dedup();
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;
    use crate::rules::{analyze_file, SigIndex};

    fn facts_for(sources: &[(&str, &str)], zones: &ZoneConfig) -> Vec<FileFacts> {
        let lexed: Vec<(String, lexer::Lexed)> = sources
            .iter()
            .map(|(p, s)| ((*p).to_string(), lexer::lex(s)))
            .collect();
        let parsed: Vec<parser::Parsed> = lexed.iter().map(|(_, l)| parser::parse(l)).collect();
        let sigs = SigIndex::build(parsed.iter(), zones);
        lexed
            .iter()
            .zip(parsed.iter())
            .map(|((p, l), pr)| analyze_file(p, l, pr, zones, &sigs))
            .collect()
    }

    fn zones_for_fixture() -> ZoneConfig {
        ZoneConfig {
            float_zone_files: vec!["crates/interval/src/zone.rs".to_string()],
            float_primitive_files: vec![],
            kernel_module_files: vec![],
            panic_free_crates: vec![],
            panic_free_files: vec![],
            determinism_zone_files: vec![],
            no_alloc_files: vec![],
            no_alloc_fns: vec![],
            no_alloc_fn_suffixes: vec![],
            no_alloc_suffix_files: vec![],
            enclosure_types: vec!["Interval".to_string()],
            proof_crates: vec!["interval".to_string()],
        }
    }

    #[test]
    fn reach_finds_transitive_panic() {
        let zones = zones_for_fixture();
        let files = facts_for(
            &[
                (
                    "crates/interval/src/zone.rs",
                    "pub fn entry(x: usize) -> usize { helper(x) }\nfn helper(x: usize) -> usize { inner(x) }\nfn inner(x: usize) -> usize { grab(x).unwrap() }\nfn grab(x: usize) -> Option<usize> { Some(x) }\n",
                ),
            ],
            &zones,
        );
        let graph = CallGraph::build(&files);
        let res = panic_reachability(&files, &graph, &zones);
        assert_eq!(res.findings.len(), 1, "{:?}", res.findings);
        let f = &res.findings[0];
        assert_eq!(f.sub.as_deref(), Some("reach"));
        assert_eq!(f.line, 1);
        assert!(f
            .message
            .contains("interval::entry -> interval::helper -> interval::inner"));
        assert!(f.message.contains(".unwrap()"));
        assert_eq!(res.proved, 0);
    }

    #[test]
    fn reach_proves_clean_api_and_respects_audit() {
        let zones = zones_for_fixture();
        let files = facts_for(
            &[(
                "crates/interval/src/zone.rs",
                "pub fn safe(x: usize) -> usize { x + 1 }\n// dwv-lint: allow(panic-freedom#reach) -- caller guarantees nonempty input\npub fn audited(v: &[usize]) -> usize { v.iter().copied().max().unwrap() }\n",
            )],
            &zones,
        );
        let graph = CallGraph::build(&files);
        let res = panic_reachability(&files, &graph, &zones);
        assert!(res.findings.is_empty(), "{:?}", res.findings);
        assert_eq!(res.proved, 1);
        assert_eq!(res.audited, 1);
        assert_eq!(res.suppressed.len(), 1);
        assert_eq!(res.used_allow_lines.get(&0), Some(&vec![2]));
    }

    #[test]
    fn taint_flags_raw_float_helper_in_zone() {
        let zones = zones_for_fixture();
        let files = facts_for(
            &[
                (
                    "crates/interval/src/helpers.rs",
                    "pub fn blend(a: f64, b: f64) -> f64 { a * 0.5 + b * 0.5 }\n",
                ),
                (
                    "crates/interval/src/zone.rs",
                    "pub fn widen(a: f64, b: f64) -> f64 {\n    blend(a, b)\n}\n",
                ),
            ],
            &zones,
        );
        let graph = CallGraph::build(&files);
        let res = float_taint(&files, &graph, &zones);
        assert_eq!(res.findings.len(), 1, "{:?}", res.findings);
        let f = &res.findings[0];
        assert_eq!(f.sub.as_deref(), Some("taint"));
        assert_eq!(f.file, "crates/interval/src/zone.rs");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("interval::blend"));
    }

    #[test]
    fn taint_audited_sink_suppresses() {
        let zones = zones_for_fixture();
        let files = facts_for(
            &[
                (
                    "crates/interval/src/helpers.rs",
                    "pub fn blend(a: f64, b: f64) -> f64 { a * 0.5 + b * 0.5 }\n",
                ),
                (
                    "crates/interval/src/zone.rs",
                    "pub fn widen(a: f64, b: f64) -> f64 {\n    // dwv-lint: allow(float-hygiene#taint) -- display-only, not an endpoint\n    blend(a, b)\n}\n",
                ),
            ],
            &zones,
        );
        let graph = CallGraph::build(&files);
        let res = float_taint(&files, &graph, &zones);
        assert!(res.findings.is_empty(), "{:?}", res.findings);
        assert_eq!(res.suppressed.len(), 1);
        assert_eq!(res.used_allow_lines.get(&1), Some(&vec![2]));
    }

    #[test]
    fn why_reports_chain_or_proof() {
        let zones = zones_for_fixture();
        let files = facts_for(
            &[(
                "crates/interval/src/zone.rs",
                "pub fn risky(v: &[usize]) -> usize { v.iter().copied().max().unwrap() }\npub fn fine(x: usize) -> usize { x }\n",
            )],
            &zones,
        );
        let graph = CallGraph::build(&files);
        let lines = why(&files, &graph, "risky");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("reaches a panic"), "{}", lines[0]);
        let lines = why(&files, &graph, "fine");
        assert!(
            lines[0].contains("proved transitively panic-free"),
            "{}",
            lines[0]
        );
        let lines = why(&files, &graph, "absent");
        assert!(lines[0].contains("no workspace function"));
    }

    #[test]
    fn graph_build_is_deterministic() {
        let zones = zones_for_fixture();
        let files = facts_for(
            &[
                (
                    "crates/interval/src/a.rs",
                    "pub fn f(x: usize) -> usize { g(x) }\npub fn g(x: usize) -> usize { x }\n",
                ),
                (
                    "crates/interval/src/b.rs",
                    "pub fn h(x: usize) -> usize { g(x) }\n",
                ),
            ],
            &zones,
        );
        let g1 = CallGraph::build(&files);
        let g2 = CallGraph::build(&files);
        assert_eq!(format!("{:?}", g1.edges), format!("{:?}", g2.edges));
    }
}
