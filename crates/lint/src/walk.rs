//! Workspace discovery and source-file walking.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", "fixtures"];

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`; returns `start` itself if none is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

/// Collects every `.rs` file under `root` (sorted, repo-relative with `/`
/// separators), skipping build output, vendored code, and lint fixtures.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    visit(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here);
        assert!(root.join("Cargo.toml").exists());
        assert!(root.ends_with("repo") || root.join("crates").exists());
    }

    #[test]
    fn collects_own_sources_skipping_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect_rs_files(here).expect("walk lint crate");
        assert!(files.iter().any(|f| f == "src/lexer.rs"));
        assert!(!files.iter().any(|f| f.contains("fixtures/")));
    }
}
