//! The five rule passes (R1–R5) over a lexed + analyzed source file.
//!
//! Every pass is token-level and heuristic — precision is documented per
//! rule, and each exemption the heuristics cannot prove must be written as a
//! `// dwv-lint: allow(<rule>) -- <reason>` annotation so it stays greppable.

use crate::config::{classify, FileClass, ZoneConfig};
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::report::{Finding, Report, Rule, Suppression};
use crate::structure::{analyze, suppression, Structure};

/// Non-directed `std` float methods forbidden in soundness zones (R1). The
/// directed / exact operations (`min`, `max`, `abs`, `next_up`, `next_down`,
/// `to_bits`, comparisons) are not listed and remain allowed.
const FLOAT_METHOD_DENYLIST: &[&str] = &[
    "sqrt",
    "exp",
    "exp2",
    "exp_m1",
    "ln",
    "ln_1p",
    "log",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "asinh",
    "acosh",
    "atanh",
    "powf",
    "powi",
    "mul_add",
    "hypot",
    "cbrt",
    "recip",
    "rem_euclid",
    "div_euclid",
    "to_degrees",
    "to_radians",
    "round",
    "floor",
    "ceil",
    "trunc",
    "fract",
];

/// Binary arithmetic operators checked by R1.
const ARITH_OPS: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];

/// Integer-typed cast targets: `x as usize * y` is index math, not float math.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Panicking macros checked by R2.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Lints one file's source text, appending results to `report`.
///
/// `rel_path` must be repo-relative with `/` separators — the zone map and
/// the findings both use it verbatim.
pub fn lint_source(rel_path: &str, src: &str, zones: &ZoneConfig, report: &mut Report) {
    let lexed = lex(src);
    let structure = analyze(&lexed);
    let (class, krate) = classify(rel_path);
    report.files_scanned += 1;

    let mut ctx = Ctx {
        rel_path,
        lexed: &lexed,
        structure: &structure,
        report,
    };

    for (line, problem) in &structure.bad_annotations {
        ctx.report.findings.push(Finding {
            rule: Rule::Annotation,
            sub: None,
            file: rel_path.to_string(),
            line: *line,
            message: format!("malformed dwv-lint annotation: {problem}"),
        });
    }

    if class == FileClass::Lib {
        if zones.in_float_zone(rel_path) {
            ctx.float_hygiene(true);
        } else if zones.is_kernel_module(rel_path) {
            // Designated kernels own their raw f64 loops, but the denylisted
            // (non-directed, libm-backed) methods stay banned even there.
            ctx.float_hygiene(false);
        }
        if !zones.is_rounding_primitive(rel_path) {
            ctx.rounding_containment();
        }
        if zones.in_panic_free_crate(rel_path) {
            ctx.panic_freedom();
        }
        if zones.in_determinism_zone(rel_path) {
            ctx.determinism();
        }
        ctx.doc_coverage();
    }
    ctx.unsafe_audit(&krate);
    ctx.simd_safety();
}

struct Ctx<'a> {
    rel_path: &'a str,
    lexed: &'a Lexed,
    structure: &'a Structure,
    report: &'a mut Report,
}

impl Ctx<'_> {
    fn toks(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Emits a finding unless an annotation suppresses it.
    fn emit(&mut self, rule: Rule, sub: Option<&str>, line: u32, message: String) {
        if let Some(allow) = suppression(self.structure, rule.id(), sub, line) {
            self.report.suppressed.push(Suppression {
                rule,
                file: self.rel_path.to_string(),
                line,
                reason: allow.reason.clone(),
            });
        } else {
            self.report.findings.push(Finding {
                rule,
                sub: sub.map(str::to_string),
                file: self.rel_path.to_string(),
                line,
                message,
            });
        }
    }

    /// Whether token `i` is in code the rules skip (tests, attributes).
    fn skipped(&self, i: usize) -> bool {
        let f = self.structure.flags[i];
        f.in_test || f.in_attr
    }

    // R1 — float hygiene -----------------------------------------------------
    //
    // Heuristics (documented in DESIGN.md §4d): a binary arithmetic operator
    // is flagged unless (a) an adjacent operand token is an integer literal,
    // (b) it sits inside `[…]` (index arithmetic is usize-typed by
    // construction), or (c) the left operand is an integer cast
    // (`… as usize * stride`). Denylisted float methods are flagged at any
    // call site (`x.sqrt()`, `f64::sqrt(x)`).
    //
    // `check_ops = false` runs only the method denylist — the mode for
    // designated kernel modules, whose raw operator loops are the audited
    // compute core but which must still never call libm-backed methods.
    fn float_hygiene(&mut self, check_ops: bool) {
        let toks = self.toks();
        let n = toks.len();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..n {
            if self.skipped(i) {
                continue;
            }
            let t = &toks[i];
            if check_ops && t.kind == TokKind::Punct && ARITH_OPS.contains(&t.text.as_str()) {
                if self.structure.flags[i].bracket_depth > 0 {
                    continue;
                }
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                let binary = matches!(prev.kind, TokKind::Ident | TokKind::FloatLit)
                    || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]"))
                    || prev.kind == TokKind::IntLit;
                if !binary {
                    continue;
                }
                // Keywords ending an expression never do: `return -x`, etc.
                if prev.kind == TokKind::Ident
                    && matches!(
                        prev.text.as_str(),
                        "return" | "as" | "in" | "if" | "else" | "match" | "break" | "where"
                    )
                {
                    continue;
                }
                let next = toks.get(i + 1);
                // Trait-bound `+` is type syntax, not arithmetic:
                // `C: Enclosure + ?Sized`, `impl<C: Enclosure + Sync>`. A
                // `?` can never follow a binary operator in expression
                // position, and an upper-camel ident on *both* sides is a
                // bound list (float operands are lower-case by convention,
                // and associated consts read `Type::CONST`, never bare
                // CamelCase on both flanks of a sum).
                if t.text == "+" {
                    let camel = |s: &str| s.chars().next().is_some_and(char::is_uppercase);
                    if next.is_some_and(|t| t.text == "?")
                        || (prev.kind == TokKind::Ident
                            && camel(&prev.text)
                            && next.is_some_and(|t| t.kind == TokKind::Ident && camel(&t.text)))
                    {
                        continue;
                    }
                }
                let int_adjacent = prev.kind == TokKind::IntLit
                    || next.is_some_and(|t| t.kind == TokKind::IntLit)
                    || (prev.kind == TokKind::Ident
                        && INT_TYPES.contains(&prev.text.as_str())
                        && i >= 2
                        && toks[i - 2].text == "as");
                if int_adjacent {
                    continue;
                }
                hits.push((
                    t.line,
                    format!(
                        "raw float arithmetic `{}` in a soundness zone (route through \
                         Interval ops or the directed rounding primitives)",
                        t.text
                    ),
                ));
            }
            if t.kind == TokKind::Ident && FLOAT_METHOD_DENYLIST.contains(&t.text.as_str()) {
                let is_method = i >= 1
                    && matches!(toks[i - 1].text.as_str(), "." | "::")
                    && toks.get(i + 1).is_some_and(|t| t.text == "(");
                if is_method {
                    hits.push((
                        t.line,
                        format!(
                            "non-directed float method `.{}()` in a soundness zone \
                             (use the Interval enclosure or widen the result)",
                            t.text
                        ),
                    ));
                }
            }
        }
        // One finding per line keeps annotations 1:1 with flagged lines.
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::FloatHygiene, None, line, msg);
        }
    }

    // R1#rounding — rounding-primitive containment ---------------------------
    //
    // Directed endpoint math (`next_up`, `next_down`, `outward_lo`,
    // `outward_hi`) is only sound when every caller agrees on when it is
    // applied; a stray nudge outside the interval kernel silently changes
    // enclosure widths. Any call site outside the designated
    // rounding-primitive modules is a finding — kernel modules and ordinary
    // zone files alike.
    fn rounding_containment(&mut self) {
        const ROUNDING_FNS: &[&str] = &["next_up", "next_down", "outward_lo", "outward_hi"];
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && ROUNDING_FNS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
                && !(i >= 1 && toks[i - 1].text == "fn")
            {
                hits.push((
                    t.line,
                    format!(
                        "rounding-sensitive endpoint math `{}` outside the rounding \
                         primitives (route through the interval kernel)",
                        t.text
                    ),
                ));
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::FloatHygiene, Some("rounding"), line, msg);
        }
    }

    // R4#simd — `core::arch` site audit --------------------------------------
    //
    // Every textual `core::arch` / `std::arch` site (imports included) must
    // carry a `SAFETY:` comment within the 5 preceding lines stating the
    // dispatch contract — runtime feature detection and the scalar-path
    // equivalence the SIMD body must preserve.
    fn simd_safety(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<u32> = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && t.text == "arch"
                && i >= 2
                && toks[i - 1].text == "::"
                && matches!(toks[i - 2].text.as_str(), "core" | "std")
            {
                let documented = self.lexed.comments.iter().any(|c| {
                    c.text
                        .trim_start_matches(['/', '*', '!'])
                        .trim_start()
                        .starts_with("SAFETY:")
                        && c.line <= t.line
                        && t.line.saturating_sub(c.line) <= 5
                });
                if !documented {
                    hits.push(t.line);
                }
            }
        }
        hits.dedup();
        for line in hits {
            self.emit(
                Rule::UnsafeAudit,
                Some("simd"),
                line,
                "`core::arch` SIMD site without a `// SAFETY:` comment within the 5 \
                 preceding lines"
                    .to_string(),
            );
        }
    }

    // R2 — panic freedom -----------------------------------------------------
    fn panic_freedom(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, Option<&'static str>, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_unchecked")
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                hits.push((
                    t.line,
                    None,
                    format!(
                        "`.{}()` in library code of a verified crate (return a Result \
                         or rewrite infallibly)",
                        t.text
                    ),
                ));
            }
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "!")
            {
                hits.push((
                    t.line,
                    None,
                    format!("`{}!` in library code of a verified crate", t.text),
                ));
            }
            // Slice/array indexing: `expr[…]` panics on out-of-bounds.
            if t.text == "[" && !self.structure.flags[i].in_attr && i >= 1 {
                let prev = &toks[i - 1];
                let indexes = (prev.kind == TokKind::Ident
                    && !matches!(
                        prev.text.as_str(),
                        "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "as"
                    ))
                    || (prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ")" | "]"));
                if indexes {
                    hits.push((
                        t.line,
                        Some("index"),
                        "slice/array indexing can panic (prefer `get`, iterators, or a \
                         justified allow)"
                            .to_string(),
                    ));
                }
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, sub, msg) in hits {
            self.emit(Rule::PanicFreedom, sub, line, msg);
        }
    }

    // R3 — determinism -------------------------------------------------------
    fn determinism(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "HashMap" | "HashSet" => hits.push((
                    t.line,
                    format!(
                        "`{}` in a determinism zone: iteration order is randomized \
                         per process (justify lookup-only use or switch to BTreeMap)",
                        t.text
                    ),
                )),
                "SystemTime" | "Instant" => hits.push((
                    t.line,
                    format!(
                        "`{}` in a determinism zone: wall-clock values must not \
                         reach result-bearing code",
                        t.text
                    ),
                )),
                "current" | "ThreadId" => {
                    let thread_qualified = t.text == "ThreadId"
                        || (i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread");
                    if thread_qualified {
                        hits.push((
                            t.line,
                            "thread-identity value in a determinism zone: results must \
                             not depend on which worker computed them"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        for (line, msg) in hits {
            self.emit(Rule::Determinism, None, line, msg);
        }
    }

    // R4 — unsafe audit ------------------------------------------------------
    fn unsafe_audit(&mut self, krate: &str) {
        let toks = self.toks();
        let mut census = 0usize;
        let mut hits: Vec<u32> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "unsafe" || self.structure.flags[i].in_attr {
                continue;
            }
            census += 1;
            // The comment must *start* with `SAFETY:` (after the comment
            // markers) — prose mentioning the convention does not count.
            let documented = self.lexed.comments.iter().any(|c| {
                c.text
                    .trim_start_matches(['/', '*', '!'])
                    .trim_start()
                    .starts_with("SAFETY:")
                    && c.line <= t.line
                    && t.line.saturating_sub(c.line) <= 3
            });
            if !documented {
                hits.push(t.line);
            }
        }
        *self
            .report
            .unsafe_census
            .entry(krate.to_string())
            .or_insert(0) += census;
        for line in hits {
            self.emit(
                Rule::UnsafeAudit,
                None,
                line,
                "`unsafe` without a `// SAFETY:` comment within the 3 preceding lines".to_string(),
            );
        }
    }

    // R5 — doc coverage ------------------------------------------------------
    fn doc_coverage(&mut self) {
        let toks = self.toks();
        let mut hits: Vec<(u32, String)> = Vec::new();
        for i in 0..toks.len() {
            if self.skipped(i) || toks[i].text != "pub" {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API.
            if toks.get(i + 1).is_some_and(|t| t.text == "(") {
                continue;
            }
            // Find the item keyword, skipping modifiers.
            let mut j = i + 1;
            while toks.get(j).is_some_and(|t| {
                matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
                    || t.kind == TokKind::StrLit
            }) {
                // `pub const NAME` — `const` is the item keyword when the
                // next token is an identifier that is not `fn`.
                if toks[j].text == "const" && toks.get(j + 1).is_some_and(|t| t.text != "fn") {
                    break;
                }
                j += 1;
            }
            let Some(kw) = toks.get(j) else { continue };
            // `mod` is exempt: module docs conventionally live inside the
            // module file as `//!`, which a per-file scan cannot see.
            let item_kind = match kw.text.as_str() {
                "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" => kw.text.clone(),
                _ => continue, // `pub use`, `pub mod`, `pub impl`(n/a), …
            };
            let name = toks
                .get(j + 1)
                .map_or_else(|| "?".to_string(), |t| t.text.clone());
            // Attached attributes may sit between the docs and the item:
            // walk backwards over attribute spans.
            let mut first = i;
            while first > 0 && self.structure.flags[first - 1].in_attr {
                first -= 1;
            }
            let start_line = toks[first].line;
            let prev_line = if first == 0 { 0 } else { toks[first - 1].line };
            let documented = self
                .lexed
                .comments
                .iter()
                .any(|c| c.doc && c.line >= prev_line && c.line <= start_line)
                || toks[first..i].iter().any(|t| t.text == "doc");
            if !documented {
                hits.push((
                    toks[i].line,
                    format!("public {item_kind} `{name}` has no doc comment"),
                ));
            }
        }
        for (line, msg) in hits {
            self.emit(Rule::DocCoverage, None, line, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zones_for(path: &str) -> ZoneConfig {
        ZoneConfig {
            float_zone_files: vec![path.to_string()],
            float_primitive_files: vec![],
            kernel_module_files: vec![],
            panic_free_crates: vec!["design-while-verify".to_string()],
            determinism_zone_files: vec![path.to_string()],
        }
    }

    fn run(path: &str, src: &str) -> Report {
        let mut r = Report::default();
        lint_source(path, src, &zones_for(path), &mut r);
        r
    }

    fn rules_hit(r: &Report) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.rule.id()).collect()
    }

    #[test]
    fn float_literal_arithmetic_flagged() {
        let r = run(
            "src/zone.rs",
            "fn f(a: f64, b: f64) -> f64 { 0.5 * (a + b) }\n",
        );
        assert!(rules_hit(&r).contains(&"float-hygiene"));
    }

    #[test]
    fn integer_arithmetic_exempt() {
        // Literal-adjacent ops, index-bracket interiors, and int-cast
        // adjacency are all provably-integer and exempt.
        let r = run(
            "src/zone.rs",
            "fn f(i: usize, s: usize) -> usize { let j = i + 1; idx[j * s + 1] + 2 + i as usize * s }\n",
        );
        assert!(
            !rules_hit(&r).contains(&"float-hygiene"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn trait_bounds_are_not_arithmetic() {
        let r = run(
            "src/zone.rs",
            "fn f<C: Clone + ?Sized>(c: &C) {}\nimpl<C: Clone + Sync> Foo for C {}\n",
        );
        assert!(
            !rules_hit(&r).contains(&"float-hygiene"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn denied_method_flagged_and_annotation_suppresses() {
        let src = "\
fn f(x: f64) -> f64 { x.sqrt() }
// dwv-lint: allow(float-hygiene) -- distance heuristic, not a bound
fn g(x: f64) -> f64 { x.sqrt() }
";
        let r = run("src/zone.rs", src);
        let fh: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::FloatHygiene)
            .map(|f| f.line)
            .collect();
        assert_eq!(fh, vec![1]);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].line, 3);
    }

    #[test]
    fn panic_patterns_flagged_outside_tests_only() {
        let src = "\
pub fn f(v: &[f64]) -> f64 { v.first().unwrap() + v[1] }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"ok\"); }
}
";
        let r = run("src/lib.rs", src);
        let pf: Vec<(u32, Option<String>)> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicFreedom)
            .map(|f| (f.line, f.sub.clone()))
            .collect();
        assert_eq!(pf, vec![(1, None), (1, Some("index".into()))]);
    }

    #[test]
    fn determinism_zone_flags_hash_and_time() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let r = run("src/zone.rs", src);
        let d: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Determinism)
            .map(|f| f.line)
            .collect();
        assert_eq!(d, vec![1, 2]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "\
fn a() { unsafe { x() } }
// SAFETY: documented invariant
fn b() { unsafe { y() } }
";
        let r = run("crates/demo/src/lib.rs", src);
        let ua: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnsafeAudit)
            .map(|f| f.line)
            .collect();
        assert_eq!(ua, vec![1]);
        assert_eq!(r.unsafe_census.get("demo"), Some(&2));
    }

    #[test]
    fn doc_coverage_flags_undocumented_pub() {
        let src = "\
/// Documented.
pub fn ok() {}
pub fn bad() {}
#[derive(Debug)]
pub struct AlsoBad;
/// Documented struct.
#[derive(Debug)]
pub struct Fine;
pub(crate) fn internal() {}
";
        let r = run("crates/demo/src/lib.rs", src);
        let dc: Vec<String> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::DocCoverage)
            .map(|f| f.message.clone())
            .collect();
        assert_eq!(dc.len(), 2, "{dc:?}");
        assert!(dc[0].contains("`bad`"));
        assert!(dc[1].contains("`AlsoBad`"));
    }

    #[test]
    fn test_like_files_only_get_unsafe_audit() {
        let src = "pub fn undocumented() { v[0]; x.unwrap(); unsafe { y() } }\n";
        let mut r = Report::default();
        lint_source(
            "crates/demo/tests/t.rs",
            src,
            &ZoneConfig::default(),
            &mut r,
        );
        assert_eq!(rules_hit(&r), vec!["unsafe-audit"]);
    }
}
